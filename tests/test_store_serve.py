"""Durable serve: ``--data-dir`` recovery, shutdown drain, compaction.

Each test runs a real server (``ServerThread``) against a store in
``tmp_path``, stops it, and boots a *second* server over the same
directory — the restart must present streams, standing queries, and
hysteresis state exactly as the first server last acknowledged them.
"""

from __future__ import annotations

import pytest

from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.io.json_format import query_to_dict, sequence_to_dict
from repro.serve import ServeClient, ServeError, ServerThread
from repro.serve.protocol import encode_transition
from repro.transducers.library import accept_filter
from repro.transducers.sprojector import SProjector

from tests.conftest import make_fraction_sequence, make_fraction_timestep

ALPHABET = "ab"


def contains_ab_query():
    return accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", ALPHABET))


def occurrence_ab_query():
    alphabet = sigma_star(ALPHABET)
    return SProjector(alphabet, regex_to_dfa("ab", ALPHABET), alphabet)


def wire_timestep(rng) -> dict:
    return encode_transition(make_fraction_timestep(ALPHABET, rng))


def durable_server(tmp_path, **kwargs):
    return ServerThread(
        socket_path=str(tmp_path / "serve.sock"),
        shards=kwargs.pop("shards", 2),
        data_dir=str(tmp_path / "data"),
        fsync=False,  # tmpfs CI: the ordering guarantees are what we test
        **kwargs,
    )


def standing_snapshot(client) -> dict:
    return {
        entry["name"]: {
            "value": entry["value"],
            "armed": entry["armed"],
            "alerts_fired": entry["alerts_fired"],
            "threshold": entry["threshold"],
            "rearm": entry["rearm"],
        }
        for entry in client.call("stats")["standing"]
    }


def populate(client, rng, appends: int = 6) -> None:
    client.call(
        "register_stream",
        name="door",
        sequence=sequence_to_dict(make_fraction_sequence(ALPHABET, 2, rng)),
    )
    client.call(
        "register_query", name="saw-ab", query=query_to_dict(contains_ab_query())
    )
    client.call(
        "register_standing_query",
        name="watch",
        stream="door",
        query="saw-ab",
        kind="answer",
        output=[],
        threshold=0.25,
        rearm=0.125,
    )
    client.call(
        "register_standing_query",
        name="occ",
        stream="door",
        query=query_to_dict(occurrence_ab_query()),
        kind="monitor",
        threshold=0.125,
        rearm=0.0625,
    )
    for _ in range(appends):
        client.call("append", stream="door", transition=wire_timestep(rng))


def test_stop_start_is_bit_identical(tmp_path, rng) -> None:
    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            assert client.call("ping")["durable"] is True
            populate(client, rng)
            before = standing_snapshot(client)
            before_streams = client.call("ping")["streams"]

    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            stats = client.call("stats")
            assert stats["recovered"]["streams"] == 1
            assert stats["recovered"]["standing_queries"] == 2
            assert stats["recovered"]["truncated_bytes"] == 0
            assert client.call("ping")["streams"] == before_streams
            # values, armed flags, thresholds, re-arm levels, fired
            # counts: all exactly as acknowledged before the stop
            assert standing_snapshot(client) == before


def test_no_tail_loss_after_final_append(tmp_path, rng) -> None:
    """Satellite: the shutdown drain seals the store after the last
    acknowledged append — a stop/start loses nothing."""
    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            populate(client, rng, appends=0)
            # the last acknowledged call before stop is an append
            final = client.call(
                "append", stream="door", transition=wire_timestep(rng)
            )
            expected_length = final["length"]
            expected = standing_snapshot(client)

    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            assert standing_snapshot(client) == expected
            # the recovered stream includes the final acknowledged append
            grown = client.call(
                "append", stream="door", transition=wire_timestep(rng)
            )
            assert grown["length"] == expected_length + 1


def test_recovered_standing_queries_stay_live(tmp_path, rng) -> None:
    """Recovery rebuilds engines, not just numbers: appends after the
    restart keep advancing evaluators, monitors, and alerts."""
    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            populate(client, rng)
            restart_fired = standing_snapshot(client)["occ"]["alerts_fired"]

    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            for _ in range(8):
                client.call("append", stream="door", transition=wire_timestep(rng))
            after = standing_snapshot(client)
            assert after["occ"]["alerts_fired"] >= restart_fired
            # the answer evaluator still tracks the stream (value sane)
            from repro.store.codec import decode_value

            assert 0 <= decode_value(after["watch"]["value"]) <= 1
            # and the named query catalog survived
            client.call(
                "register_standing_query",
                name="watch2",
                stream="door",
                query="saw-ab",  # resolved from the recovered catalog
                kind="answer",
                output=[],
                threshold=0.9,
            )


def test_compaction_while_serving_and_after_restart(tmp_path, rng) -> None:
    with durable_server(tmp_path, compact_records=5) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            populate(client, rng, appends=12)
            before = standing_snapshot(client)
            store_stats = client.call("stats")["store"]
            assert store_stats["snapshots"] == 1
            assert store_stats["snapshot_lsn"] > 0
            assert store_stats["records_since_snapshot"] < 5

    with durable_server(tmp_path, compact_records=5) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            stats = client.call("stats")
            # the log suffix is short: recovery replayed < 5 records
            assert stats["recovered"]["records_replayed"] < 5
            assert standing_snapshot(client) == before


def test_drops_are_durable(tmp_path, rng) -> None:
    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            populate(client, rng, appends=2)
            client.call("drop_standing_query", name="occ")
            client.call(
                "register_stream",
                name="tmp",
                sequence=sequence_to_dict(make_fraction_sequence(ALPHABET, 2, rng)),
            )
            client.call("drop_stream", name="tmp")

    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            assert client.call("ping")["streams"] == 1
            assert [
                s["name"] for s in client.call("stats")["standing"]
            ] == ["watch"]
            client.call("append", stream="door", transition=wire_timestep(rng))
            with pytest.raises(ServeError, match="unknown stream"):
                client.call("append", stream="tmp", transition=wire_timestep(rng))


def test_stream_replacement_teardown_is_durable(tmp_path, rng) -> None:
    """Replacing a stream drops its standing queries implicitly; the
    replay must reproduce that teardown from the stream_created record
    alone."""
    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            populate(client, rng, appends=2)
            result = client.call(
                "register_stream",
                name="door",
                sequence=sequence_to_dict(make_fraction_sequence(ALPHABET, 3, rng)),
            )
            assert result["standing_dropped"] == ["occ", "watch"]

    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            stats = client.call("stats")
            assert stats["standing"] == []
            grown = client.call(
                "append", stream="door", transition=wire_timestep(rng)
            )
            assert grown["length"] == 4  # the replacement's 3 + this append


def test_failed_standing_registration_is_not_journaled(tmp_path, rng) -> None:
    """Validation precedes the journal record: a rejected registration
    must not reappear after a restart."""
    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            populate(client, rng, appends=0)
            with pytest.raises(ServeError, match="already exists"):
                client.call(
                    "register_standing_query",
                    name="watch",  # duplicate
                    stream="door",
                    query="saw-ab",
                    kind="answer",
                    output=[],
                    threshold=0.5,
                )
            with pytest.raises(ServeError, match="unknown standing"):
                client.call("drop_standing_query", name="nope")

    with durable_server(tmp_path) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            assert [
                s["name"] for s in client.call("stats")["standing"]
            ] == ["occ", "watch"]


def test_non_durable_server_reports_it(tmp_path) -> None:
    with ServerThread(socket_path=str(tmp_path / "plain.sock")) as harness:
        with ServeClient.connect_unix(harness.address["path"]) as client:
            assert client.call("ping")["durable"] is False
            stats = client.call("stats")
            assert stats["store"] is None
            assert stats["recovered"] is None
