"""The database/store hook: write-ahead ordering, rollback, recovery.

These are the contract tests for the ``store=`` integration: everything
a :class:`MarkovStreamDatabase` acknowledged is on disk, a journal
failure leaves memory untouched, and a recovered database is
bit-identical to the live one.
"""

from __future__ import annotations

import pytest

from repro.automata.regex import regex_to_dfa
from repro.errors import ReproError
from repro.io.json_format import sequence_to_dict
from repro.lahar.database import MarkovStreamDatabase
from repro.store import Store, recover_database, replay, scan_log, verify_recovery
from repro.transducers.library import accept_filter

from tests.conftest import make_fraction_sequence, make_fraction_timestep

ALPHABET = "ab"


def contains_ab_query():
    return accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", ALPHABET))


@pytest.fixture
def store(tmp_path):
    store = Store(tmp_path / "data", fsync=False)
    yield store
    store.close()


def populate(store, rng, appends: int = 5) -> MarkovStreamDatabase:
    database = MarkovStreamDatabase(store=store)
    database.register_stream("s", make_fraction_sequence(ALPHABET, 3, rng))
    database.register_query("q", contains_ab_query())
    for _ in range(appends):
        database.append("s", make_fraction_timestep(ALPHABET, rng))
    return database


def test_every_mutation_is_journaled(store, rng) -> None:
    database = populate(store, rng, appends=2)
    database.drop_stream("s")
    store.close()
    scan = scan_log(store.wal_dir)
    assert [record["type"] for record in scan.records] == [
        "stream_created",
        "query_registered",
        "append",
        "append",
        "stream_dropped",
    ]
    assert [record["lsn"] for record in scan.records] == [1, 2, 3, 4, 5]


def test_recovered_database_is_bit_identical(store, rng) -> None:
    database = populate(store, rng)
    evaluator = database.streaming_evaluator("s", "q")
    database.append("s", make_fraction_timestep(ALPHABET, rng))
    store.close()

    recovered = recover_database(store.data_dir)
    assert recovered.streams() == ["s"]
    assert recovered.queries() == ["q"]
    assert sequence_to_dict(recovered.stream("s")) == sequence_to_dict(
        database.stream("s")
    )
    # replayed evaluation agrees exactly with the live incremental one
    fresh = recovered.streaming_evaluator("s", "q")
    assert fresh.confidences() == evaluator.confidences()


def test_journal_failure_rolls_back_append(store, rng) -> None:
    database = populate(store, rng, appends=1)
    evaluator = database.streaming_evaluator("s", "q")
    before_seq = database.stream("s")
    before_conf = dict(evaluator.confidences())
    before_lsn = store.last_lsn

    # the journal is the commit point: if it cannot persist the record,
    # nothing may become visible in memory
    store.wal.close()
    with pytest.raises(ReproError, match="closed"):
        database.append("s", make_fraction_timestep(ALPHABET, rng))
    assert database.stream("s") is before_seq
    assert evaluator.confidences() == before_conf
    assert evaluator.length == before_seq.length
    assert store.last_lsn == before_lsn


def test_journaled_register_precedes_memory_commit(tmp_path, rng) -> None:
    class ExplodingStore:
        def log_stream_created(self, name, sequence):
            raise ReproError("disk full")

    database = MarkovStreamDatabase(store=ExplodingStore())
    with pytest.raises(ReproError, match="disk full"):
        database.register_stream("s", make_fraction_sequence(ALPHABET, 3, rng))
    assert database.streams() == []


def test_detached_store_stops_journaling(store, rng) -> None:
    database = populate(store, rng, appends=1)
    lsn = store.last_lsn
    database.attach_store(None)
    database.append("s", make_fraction_timestep(ALPHABET, rng))
    assert store.last_lsn == lsn


def test_compaction_preserves_recovery(store, rng) -> None:
    from repro.store import capture_state

    database = populate(store, rng)
    database.streaming_evaluator("s", "q")
    reference = replay(store.data_dir)
    state = capture_state(
        {name: database.stream(name) for name in database.streams()},
        {name: database._resolve_query(name) for name in database.queries()},
        database.attached_evaluators(),
        reference.alerts,  # empty engine: no standing queries here
    )
    store.compact(state)

    recovered = replay(store.data_dir)
    assert recovered.records_replayed == 0
    assert recovered.snapshot_lsn == store.last_lsn
    assert sequence_to_dict(recovered.database.stream("s")) == sequence_to_dict(
        database.stream("s")
    )
    # the restored evaluator is warm: same frontier, no DP re-run needed
    pairs = recovered.database.attached_evaluators()
    assert len(pairs) == 1
    live = database.attached_evaluators()[0][1]
    assert pairs[0][1].confidences() == live.confidences()

    # appends after compaction land in the fresh segment and replay
    database.append("s", make_fraction_timestep(ALPHABET, rng))
    store.close()
    again = replay(store.data_dir)
    assert again.records_replayed == 1
    assert sequence_to_dict(again.database.stream("s")) == sequence_to_dict(
        database.stream("s")
    )
    report = verify_recovery(store.data_dir)
    assert report["ok"], report["mismatches"]
    assert report["log_complete"] is False  # compaction dropped the prefix
