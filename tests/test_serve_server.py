"""The serve command vocabulary: lifecycle, alerts, teardown, backpressure.

The server runs for real on its own event loop (``ServerThread``) over a
unix socket in ``tmp_path``; the blocking ``ServeClient`` drives it the
way the CI smoke test does. Queue backpressure is unit-tested directly
against :class:`repro.serve.session.Session` with a fake transport.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.io.json_format import query_to_dict, sequence_to_dict
from repro.serve import ServeClient, ServeError, ServerThread, shard_of
from repro.serve.protocol import encode_transition
from repro.serve.session import Session
from repro.transducers.library import accept_filter
from repro.transducers.sprojector import SProjector

from tests.conftest import make_fraction_sequence, make_fraction_timestep

ALPHABET = "ab"


def contains_ab_query():
    """Confidence of () == Pr("ab" occurred) — deterministic, 0-uniform."""
    return accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", ALPHABET))


def occurrence_ab_query():
    """An s-projector whose pattern drives a monitor standing query."""
    alphabet = sigma_star(ALPHABET)
    return SProjector(alphabet, regex_to_dfa("ab", ALPHABET), alphabet)


def wire_timestep(rng) -> dict:
    return encode_transition(make_fraction_timestep(ALPHABET, rng))


@pytest.fixture
def service(tmp_path):
    path = str(tmp_path / "serve.sock")
    with ServerThread(socket_path=path, shards=3) as harness:
        with ServeClient.connect_unix(path) as client:
            yield harness, client, path


def register(client, name: str, rng, length: int = 2) -> None:
    sequence = make_fraction_sequence(ALPHABET, length, rng)
    client.call("register_stream", name=name, sequence=sequence_to_dict(sequence))


def test_ping_reports_protocol_and_shards(service) -> None:
    harness, client, _path = service
    result = client.call("ping")
    assert result["protocol"] == "repro-serve/1"
    assert result["shards"] == 3


def test_register_routes_by_stable_hash(service, rng) -> None:
    _harness, client, _path = service
    for name in ("s1", "s2", "s3"):
        register(client, name, rng)
        result = client.call("append", stream=name, transition=wire_timestep(rng))
        assert result["shard"] == shard_of(name, 3)


def test_standing_query_alert_fires_once_and_rearms(service, rng) -> None:
    _harness, client, _path = service
    register(client, "door", rng)
    client.call("register_query", name="saw-ab", query=query_to_dict(contains_ab_query()))
    result = client.call(
        "register_standing_query",
        name="watch",
        stream="door",
        query="saw-ab",
        kind="answer",
        output=[],
        threshold=0.4,
    )
    assert result["kind"] == "answer"
    client.call("subscribe", standing="watch")
    alerts = []
    # Pr("ab" occurred) is monotone in stream length: exactly one upward
    # crossing can exist no matter how many appends follow it.
    for _ in range(12):
        alerts += client.call(
            "append", stream="door", transition=wire_timestep(rng)
        )["alerts"]
    assert alerts == ["watch"] or alerts == []  # crossing may need more steps
    if alerts:
        event = client.next_event(timeout=5)
        assert event["event"] == "alert"
        assert event["data"]["standing"] == "watch"
        assert event["data"]["stream"] == "door"


def test_monitor_kind_standing_query(service, rng) -> None:
    _harness, client, _path = service
    register(client, "feed", rng)
    result = client.call(
        "register_standing_query",
        name="occ",
        stream="feed",
        query=query_to_dict(occurrence_ab_query()),
        kind="monitor",
        threshold=0.99,  # unreachable: we only exercise the advance path
    )
    assert result["kind"] == "monitor"
    for _ in range(3):
        client.call("append", stream="feed", transition=wire_timestep(rng))
    standing = {
        entry["name"]: entry for entry in client.call("stats")["standing"]
    }
    assert standing["occ"]["alerts_fired"] == 0
    assert standing["occ"]["armed"] is True


def test_drop_stream_tears_down_standing_queries(service, rng) -> None:
    """Satellite: the service-level counterpart of _drop_evaluators —
    no alert state or subscription survives its stream."""
    _harness, client, _path = service
    register(client, "victim", rng)
    register(client, "bystander", rng)
    for name, stream in (("w1", "victim"), ("w2", "victim"), ("keep", "bystander")):
        client.call(
            "register_standing_query",
            name=name,
            stream=stream,
            query=query_to_dict(contains_ab_query()),
            kind="answer",
            output=[],
            threshold=0.5,
        )
    client.call("subscribe", standing="w1")
    client.call("subscribe", standing="keep")
    result = client.call("drop_stream", name="victim")
    assert result["standing_dropped"] == ["w1", "w2"]
    event = client.next_event(timeout=5)
    assert event["event"] == "stream_dropped"
    assert event["data"] == {"stream": "victim", "standing": ["w1", "w2"]}
    stats = client.call("stats")
    assert [entry["name"] for entry in stats["standing"]] == ["keep"]
    # the dangling subscription is stripped too
    assert client.call("subscribe", standing="keep")["subscriptions"] == ["keep"]
    with pytest.raises(ServeError, match="unknown stream"):
        client.call("append", stream="victim", transition=wire_timestep(rng))


def test_register_stream_replacement_drops_standing_state(service, rng) -> None:
    _harness, client, _path = service
    register(client, "tag", rng)
    client.call(
        "register_standing_query",
        name="w",
        stream="tag",
        query=query_to_dict(contains_ab_query()),
        kind="answer",
        output=[],
        threshold=0.5,
    )
    result = client.call(
        "register_stream",
        name="tag",
        sequence=sequence_to_dict(make_fraction_sequence(ALPHABET, 4, rng)),
    )
    assert result["replaced"] is True
    assert result["standing_dropped"] == ["w"]
    assert client.call("stats")["standing"] == []


def test_drop_standing_query_only(service, rng) -> None:
    _harness, client, _path = service
    register(client, "s", rng)
    client.call(
        "register_standing_query",
        name="w",
        stream="s",
        query=query_to_dict(contains_ab_query()),
        kind="answer",
        output=[],
        threshold=0.5,
    )
    client.call("subscribe", standing="w")
    client.call("drop_standing_query", name="w")
    assert client.call("stats")["standing"] == []
    # stream survives its standing query
    client.call("append", stream="s", transition=wire_timestep(rng))
    with pytest.raises(ServeError, match="unknown standing"):
        client.call("subscribe", standing="w")


def test_duplicate_standing_query_rejected(service, rng) -> None:
    _harness, client, _path = service
    register(client, "s", rng)
    params = dict(
        name="w",
        stream="s",
        query=query_to_dict(contains_ab_query()),
        kind="answer",
        output=[],
        threshold=0.5,
    )
    client.call("register_standing_query", **params)
    with pytest.raises(ServeError, match="already exists"):
        client.call("register_standing_query", **params)


def test_protocol_errors_keep_the_connection_alive(service) -> None:
    _harness, client, _path = service
    with pytest.raises(ServeError, match="unknown command"):
        client.call("no_such_command")
    with pytest.raises(ServeError, match="must be a non-empty string"):
        client.call("append", stream=7, transition={})
    assert client.call("ping")["protocol"] == "repro-serve/1"


def test_atomic_append_through_the_service(service, rng) -> None:
    """A rejected timestep mutates nothing: same length, warm evaluator
    still bit-identical to offline evaluation."""
    _harness, client, _path = service
    register(client, "s", rng)
    client.call(
        "register_standing_query",
        name="w",
        stream="s",
        query=query_to_dict(contains_ab_query()),
        kind="answer",
        output=[],
        threshold=0.9,
    )
    before = client.call("append", stream="s", transition=wire_timestep(rng))
    bad = {"a": {"a": "1/2", "b": "1/3"}, "b": {"a": "1/2", "b": "1/2"}}  # sums 5/6
    with pytest.raises(ServeError):
        client.call("append", stream="s", transition=bad)
    after = client.call("append", stream="s", transition=wire_timestep(rng))
    assert after["length"] == before["length"] + 1


def test_shutdown_command_drains_gracefully(tmp_path, rng) -> None:
    path = str(tmp_path / "end.sock")
    harness = ServerThread(socket_path=path)
    harness.start()
    try:
        with ServeClient.connect_unix(path) as client:
            register(client, "s", rng)
            assert client.call("shutdown") == {"shutting_down": True}
            event = client.next_event(timeout=10)
            assert event == {"event": "shutdown", "data": {"draining": True}}
    finally:
        harness.stop()
    assert harness.server is not None and harness.server.appends == 0


def test_tcp_family_serves_too(rng) -> None:
    with ServerThread(host="127.0.0.1", port=0) as harness:
        assert harness.address["family"] == "tcp"
        with ServeClient.connect(harness.address) as client:
            register(client, "s", rng)
            result = client.call("append", stream="s", transition=wire_timestep(rng))
            assert result["length"] == 3


# ---------------------------------------------------------------------------
# The `repro serve` CLI entry point
# ---------------------------------------------------------------------------


def test_cli_serve_runs_and_drains(tmp_path, rng) -> None:
    import threading
    import time

    from repro import cli

    path = str(tmp_path / "cli.sock")
    codes: list[int] = []
    thread = threading.Thread(
        target=lambda: codes.append(
            cli.main(["serve", "--socket", path, "--shards", "2", "--max-seconds", "60"])
        ),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        try:
            client = ServeClient.connect_unix(path, timeout=2.0)
            break
        except OSError:
            time.sleep(0.05)
    else:
        pytest.fail("CLI server socket never came up")
    with client:
        assert client.call("ping")["shards"] == 2
        register(client, "s", rng)
        client.call("append", stream="s", transition=wire_timestep(rng))
        client.call("shutdown")
    thread.join(timeout=30)
    assert codes == [0]


def test_cli_serve_requires_an_address(capsys) -> None:
    from repro import cli

    assert cli.main(["serve"]) == 2
    assert "--socket" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Backpressure: the bounded per-connection queue
# ---------------------------------------------------------------------------


class FakeWriter:
    """A transport stub recording frames synchronously."""

    def __init__(self) -> None:
        self.written: list[bytes] = []
        self.closed = False

    def write(self, payload: bytes) -> None:
        self.written.append(payload)

    async def drain(self) -> None:
        pass

    def close(self) -> None:
        self.closed = True

    async def wait_closed(self) -> None:
        pass


def test_events_drop_when_queue_full_responses_never_do() -> None:
    async def scenario():
        writer = FakeWriter()
        session = Session(None, writer, queue_size=3)
        # writer task not started yet: the queue genuinely fills
        await session.send(b"response-1\n")
        assert session.push_event(b"event-1\n") is True
        assert session.push_event(b"event-2\n") is True
        assert session.backlog == 3
        # full queue: the *incoming* event is the one dropped
        assert session.push_event(b"event-3\n") is False
        assert session.dropped_events == 1
        # a drained queue accepts events again
        session.start()
        await session.close()
        assert writer.written == [b"response-1\n", b"event-1\n", b"event-2\n"]
        assert writer.closed

    asyncio.run(scenario())


def test_session_drain_flushes_backlog_in_order() -> None:
    async def scenario():
        writer = FakeWriter()
        session = Session(None, writer, queue_size=8)
        session.start()
        for i in range(5):
            await session.send(f"frame-{i}\n".encode())
        await session.drain()
        assert writer.written == [f"frame-{i}\n".encode() for i in range(5)]
        # post-drain sends and events are no-ops, not errors
        await session.send(b"late\n")
        assert session.push_event(b"late-event\n") is False

    asyncio.run(scenario())


def test_subscription_routing() -> None:
    async def scenario():
        session = Session(None, FakeWriter())
        assert not session.wants("w")
        session.subscriptions.add("w")
        assert session.wants("w") and not session.wants("other")
        session.subscribe_all = True
        assert session.wants("other")

    asyncio.run(scenario())
