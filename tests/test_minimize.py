"""Hopcroft minimization and language equivalence."""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA
from repro.automata.determinize import determinize
from repro.automata.minimize import equivalent, minimize
from repro.automata.regex import regex_to_dfa

from tests.conftest import make_random_dfa, make_random_nfa


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_minimize_preserves_language(seed: int) -> None:
    rng = random.Random(seed)
    dfa = make_random_dfa("ab", 6, rng)
    minimal = minimize(dfa)
    assert len(minimal.states) <= len(dfa.trim().states)
    for length in range(6):
        for string in itertools.product("ab", repeat=length):
            assert minimal.accepts(string) == dfa.accepts(string)


def test_minimize_collapses_redundant_states() -> None:
    # Two interchangeable accepting states.
    dfa = DFA(
        "a",
        {0, 1, 2},
        0,
        {1, 2},
        {(0, "a"): 1, (1, "a"): 2, (2, "a"): 1},
    )
    minimal = minimize(dfa)
    assert len(minimal.states) == 2  # {0} and {1,2} merge to a two-state loop


def test_minimize_is_canonical_size() -> None:
    # a*b over {a,b} has a 3-state minimal DFA (start, accept, dead).
    dfa = regex_to_dfa("a*b", "ab")
    assert len(minimize(dfa).states) == 3


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_equivalent_reflexive_and_respects_minimization(seed: int) -> None:
    rng = random.Random(seed)
    dfa = make_random_dfa("ab", 5, rng)
    assert equivalent(dfa, dfa)
    assert equivalent(dfa, minimize(dfa))


def test_equivalent_detects_difference() -> None:
    ends_b = regex_to_dfa(".*b", "ab")
    ends_a = regex_to_dfa(".*a", "ab")
    assert not equivalent(ends_b, ends_a)
    assert not equivalent(ends_b, regex_to_dfa(".*", "a" "b"))


def test_equivalent_alphabet_mismatch_is_false() -> None:
    one = regex_to_dfa("a", "a")
    two = regex_to_dfa("a", "ab")
    assert not equivalent(one, two)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_double_reversal_idempotence_via_minimize(seed: int) -> None:
    """minimize(determinize(nfa)) twice gives language-equal automata."""
    rng = random.Random(seed)
    nfa = make_random_nfa("ab", 4, rng)
    m1 = minimize(determinize(nfa))
    m2 = minimize(m1)
    assert equivalent(m1, m2)
    assert len(m1.states) == len(m2.states)
