"""Unit tests for the shrink pass, the CSR kernels, and plan dispatch."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro import telemetry
from repro.automata.nfa import NFA
from repro.confidence.brute_force import brute_force_answers
from repro.confidence.deterministic import confidence_deterministic
from repro.confidence.log_space import log_confidence_deterministic
from repro.confidence.sparse import SparseKernel, confidence_sparse, log_confidence_sparse
from repro.errors import InvalidTransducerError
from repro.oracle.generators import (
    make_failure_arc_transducer,
    make_fraction_sequence,
    make_random_deterministic_transducer,
    make_sparse_transducer,
)
from repro.runtime.executor import plan_confidence
from repro.runtime.incremental import StreamingEvaluator
from repro.runtime.plan import SPARSE_DENSITY_THRESHOLD, QueryPlan, fingerprint
from repro.runtime.shrink import measure_density, push_table, shrink_transducer
from repro.transducers.transducer import Transducer


def _chain_transducer() -> Transducer:
    """a-chain s0->s1->s2(accepting), plus an unreachable and a dead state.

    Every surviving path emits ``x`` then ``y``, so weight pushing must
    discover the guaranteed prefix ``("x", "y")`` at the initial state.
    """
    nfa = NFA(
        "ab",
        ["s0", "s1", "s2", "dead", "lost"],
        "s0",
        {"s2"},
        {
            ("s0", "a"): {"s1"},
            ("s0", "b"): {"dead"},
            ("s1", "a"): {"s2"},
            ("dead", "a"): {"dead"},
            ("lost", "a"): {"s2"},
        },
    )
    omega = {
        ("s0", "a", "s1"): ("x",),
        ("s0", "b", "dead"): ("x",),
        ("s1", "a", "s2"): ("y",),
        ("dead", "a", "dead"): (),
        ("lost", "a", "s2"): ("y",),
    }
    return Transducer(nfa, omega)


def test_shrink_prunes_unreachable_and_dead() -> None:
    shrunk, push, report = shrink_transducer(_chain_transducer())
    assert set(shrunk.nfa.states) == {"s0", "s1", "s2"}
    assert report.states_before == 5
    assert report.states_after == 3
    assert report.pruned_unreachable == 1  # "lost"
    assert report.pruned_dead == 1  # "dead"
    assert report.pruned() == 2
    # The b-move into the dead state is gone.
    assert shrunk.moves("s0", "b") == ()


def test_push_table_guaranteed_prefixes() -> None:
    shrunk, push, report = shrink_transducer(_chain_transducer())
    assert push["s0"] == ("x", "y")
    assert push["s1"] == ("y",)
    assert push["s2"] == ()
    assert report.push_symbols == 3


def test_push_table_empty_on_branching_emissions() -> None:
    # Two accepting continuations with different first symbols: no
    # guarantee survives the lcp.
    nfa = NFA(
        "ab",
        ["p", "q"],
        "p",
        {"q"},
        {("p", "a"): {"q"}, ("p", "b"): {"q"}},
    )
    push = push_table(Transducer(nfa, {("p", "a", "q"): ("x",), ("p", "b", "q"): ("y",)}))
    assert push["p"] == ()


def test_shrink_keeps_dead_initial_state() -> None:
    nfa = NFA("a", ["i", "t"], "i", {"t"}, {})
    shrunk, push, report = shrink_transducer(Transducer(nfa, {}))
    assert shrunk.nfa.initial == "i"
    assert "i" in shrunk.nfa.states
    assert shrunk.nfa.num_transitions == 0
    assert "i" not in push  # dead: no accepting continuation


def test_measure_density_exact_and_sampled() -> None:
    transducer = make_sparse_transducer(num_states=64)
    exact = measure_density(transducer)
    assert exact == Fraction(1, 64)
    # All rows have out-degree |alphabet|, so any sample agrees exactly.
    assert measure_density(transducer, sample_cap=8) == exact


def test_kernel_shares_failure_arc_rows() -> None:
    transducer = make_failure_arc_transducer(num_states=64)
    kernel = SparseKernel(transducer)
    assert kernel.num_rows == 32
    assert kernel.shared_rows == 32
    # Paired states dispatch identically.
    assert kernel.moves("q000", "a") == kernel.moves("q001", "a")
    assert kernel.moves("q000", "b") == kernel.moves("q001", "b")
    # ...and agree with the dict representation.
    for state in ("q000", "q001", "q033"):
        for symbol in "ab":
            assert kernel.moves(state, symbol) == transducer.moves(state, symbol)


def test_kernel_rejects_nondeterministic() -> None:
    nfa = NFA("a", ["p", "q"], "p", {"q"}, {("p", "a"): {"p", "q"}})
    omega = {("p", "a", "p"): ("x",), ("p", "a", "q"): ("x",)}
    with pytest.raises(InvalidTransducerError):
        SparseKernel(Transducer(nfa, omega))


def test_sparse_kernel_bit_identical_to_reference() -> None:
    rng = random.Random("sparse-kernel-vs-reference")
    for trial in range(10):
        transducer = make_random_deterministic_transducer("ab", 4, rng)
        sequence = make_fraction_sequence("ab", 3, rng)
        shrunk, push, _report = shrink_transducer(transducer)
        kernel = SparseKernel(shrunk, push=push)
        for answer in brute_force_answers(sequence, transducer):
            want = confidence_deterministic(sequence, transducer, answer)
            got = confidence_sparse(sequence, kernel, answer)
            assert isinstance(got, (int, Fraction))
            assert got == want
        # An impossible answer must come back exactly zero.
        assert confidence_sparse(sequence, kernel, ("x",) * 9) == 0


def test_log_kernel_matches_log_reference() -> None:
    rng = random.Random("sparse-log-kernel")
    transducer = make_sparse_transducer(num_states=16)
    sequence = make_fraction_sequence(("a", "b", "c"), 4, rng).as_float()
    shrunk, push, _report = shrink_transducer(transducer)
    kernel = SparseKernel(shrunk, push=push)
    answers = brute_force_answers(sequence, transducer)
    for answer in list(answers)[:5]:
        want = log_confidence_deterministic(sequence, transducer, answer)
        got = log_confidence_sparse(sequence, kernel, answer)
        assert got == pytest.approx(want, rel=1e-9)


def test_planner_picks_sparse_below_threshold() -> None:
    plan = QueryPlan.build(make_sparse_transducer(num_states=64))
    assert plan.density == Fraction(1, 64)
    assert plan.sparse_threshold == SPARSE_DENSITY_THRESHOLD
    assert plan.representation == "sparse"
    assert plan.sparse is not None
    assert plan.shrunk is not None
    assert "sparse" in plan.describe()
    assert "shrink" in plan.describe()


def test_planner_picks_dense_above_threshold() -> None:
    # A 2-state total machine has density 1/2 > 0.25.
    nfa = NFA(
        "ab",
        ["p", "q"],
        "p",
        {"p", "q"},
        {
            ("p", "a"): {"q"},
            ("p", "b"): {"p"},
            ("q", "a"): {"p"},
            ("q", "b"): {"q"},
        },
    )
    omega = {move: ("x",) for move in nfa.transitions()}
    plan = QueryPlan.build(Transducer(nfa, omega))
    assert plan.density == Fraction(1, 2)
    assert plan.representation == "dense"
    assert plan.sparse is None
    # Forcing the threshold flips the choice (and the fingerprint).
    forced = QueryPlan.build(Transducer(nfa, omega), sparse_threshold=1.0)
    assert forced.representation == "sparse"
    assert forced.sparse is not None
    assert forced.fingerprint != plan.fingerprint


def test_plan_confidence_routes_through_kernel() -> None:
    rng = random.Random("sparse-dispatch")
    transducer = make_sparse_transducer(num_states=64)
    sequence = make_fraction_sequence(("a", "b", "c"), 3, rng)
    sparse_plan = QueryPlan.build(transducer)
    dense_plan = QueryPlan.build(transducer, sparse_threshold=-1.0)
    assert sparse_plan.sparse is not None
    assert dense_plan.sparse is None
    for answer in list(brute_force_answers(sequence, transducer))[:4]:
        want = confidence_deterministic(sequence, transducer, answer)
        assert plan_confidence(sparse_plan, sequence, answer) == want
        assert plan_confidence(dense_plan, sequence, answer) == want


def test_shrink_off_plan_still_exact() -> None:
    rng = random.Random("sparse-noshrink")
    transducer = _chain_transducer()
    sequence = make_fraction_sequence("ab", 3, rng)
    plan = QueryPlan.build(transducer, sparse_threshold=1.0, shrink=False)
    assert plan.shrunk is None
    assert plan.shrink_report is None
    assert plan.execution is plan.compiled
    for answer, want in brute_force_answers(sequence, transducer).items():
        assert plan_confidence(plan, sequence, answer) == want


def test_streaming_restore_with_sparse_plan() -> None:
    rng = random.Random("sparse-streaming-restore")
    transducer = make_sparse_transducer(num_states=64)
    sequence = make_fraction_sequence(("a", "b", "c"), 3, rng)
    evaluator = StreamingEvaluator(transducer, sequence)
    assert evaluator.plan.sparse is not None
    restored = StreamingEvaluator.restore(transducer, sequence, evaluator.frontier)
    assert restored.confidences() == evaluator.confidences()
    step = {s: {"a": Fraction(1, 2), "b": Fraction(1, 2)} for s in ("a", "b", "c")}
    assert evaluator.append(step) == restored.append(step)


def test_sparse_metrics_emitted() -> None:
    telemetry.enable()
    try:
        QueryPlan.build(make_sparse_transducer(num_states=64))
        QueryPlan.build(make_failure_arc_transducer(num_states=64))
        rng = random.Random("sparse-metrics")
        sequence = make_fraction_sequence(("a", "b", "c"), 2, rng)
        plan = QueryPlan.build(make_sparse_transducer(num_states=64))
        plan_confidence(plan, sequence, ("x", "x"))
        snap = telemetry.snapshot()
        counters = snap["counters"]
        assert counters["sparse.plans.sparse"] >= 3
        assert counters["sparse.kernel.runs"] >= 1
        assert counters["sparse.failure_arcs"] >= 32
        assert "sparse.states_pruned" in counters
        assert "sparse.push_saved" in counters
        assert snap["gauges"]["sparse.density"] == pytest.approx(1 / 64)
        QueryPlan.build(_chain_transducer())  # density 5/20 -> dense? no: 0.25 <= 0.25
        dense_nfa = NFA("a", ["p"], "p", {"p"}, {("p", "a"): {"p"}})
        QueryPlan.build(Transducer(dense_nfa, {("p", "a", "p"): ("x",)}))
        assert telemetry.snapshot()["counters"]["sparse.plans.dense"] >= 1
    finally:
        telemetry.disable()


def test_fingerprint_mixes_threshold() -> None:
    transducer = make_sparse_transducer(num_states=8)
    default = fingerprint(transducer)
    assert default == fingerprint(transducer, SPARSE_DENSITY_THRESHOLD)
    assert fingerprint(transducer, 1.0) != default
    assert fingerprint(transducer, -1.0) != default
    assert fingerprint(transducer, 1.0) != fingerprint(transducer, -1.0)
