"""The --epsilon/--delta/--approx-seed surface of the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.engine import compute_confidence
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.hardness.counting import two_dnf_counting_instance
from repro.io.json_format import write_query, write_sequence


@pytest.fixture
def files(tmp_path):
    seq_path = tmp_path / "mu.json"
    query_path = tmp_path / "query.json"
    write_sequence(hospital_sequence(), seq_path)
    write_query(room_change_transducer(), query_path)
    return str(seq_path), str(query_path)


@pytest.fixture
def hard_files(tmp_path):
    """The ambiguous 2-DNF instance: the FPRAS genuinely samples here."""
    instance = two_dnf_counting_instance([(1, 1), (2, 2), (1, 2)], 2, 2)
    seq_path = tmp_path / "hard_mu.json"
    query_path = tmp_path / "hard_query.json"
    write_sequence(instance.sequence, seq_path)
    write_query(instance.transducer, query_path)
    return str(seq_path), str(query_path), instance


def test_confidence_epsilon_prints_the_interval(files, capsys) -> None:
    seq, query = files
    assert (
        main(
            ["confidence", "--sequence", seq, "--query", query,
             "--answer", "1,2", "--epsilon", "0.1"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "interval=[" in out
    assert "method=unambiguous" in out  # hospital transducer: exact shortcut
    estimate = float(out.split("\t")[0])
    exact = float(
        compute_confidence(hospital_sequence(), room_change_transducer(), ("1", "2"))
    )
    assert estimate == pytest.approx(exact)


def test_confidence_epsilon_samples_on_hard_instances(hard_files, capsys) -> None:
    seq, query, instance = hard_files
    answer = ",".join(instance.answer)
    assert (
        main(
            ["confidence", "--sequence", seq, "--query", query,
             "--answer", answer, "--epsilon", "0.1", "--approx-seed", "7"]
        )
        == 0
    )
    first = capsys.readouterr().out
    assert "method=dklr" in first
    # Same seed, same output — the CLI path is deterministic.
    main(
        ["confidence", "--sequence", seq, "--query", query,
         "--answer", answer, "--epsilon", "0.1", "--approx-seed", "7"]
    )
    assert capsys.readouterr().out == first
    # The certified interval contains the exact confidence (here 1/2).
    low, high = first.split("interval=[")[1].split("]")[0].split(",")
    assert float(low) <= 0.5 <= float(high)


def test_confidence_rejects_bad_epsilon(files, capsys) -> None:
    seq, query = files
    code = main(
        ["confidence", "--sequence", seq, "--query", query,
         "--answer", "1,2", "--epsilon", "1.5"]
    )
    assert code == 2
    assert "epsilon" in capsys.readouterr().err


def test_evaluate_epsilon_marks_estimates(files, capsys) -> None:
    seq, query = files
    assert (
        main(
            ["evaluate", "--sequence", seq, "--query", query,
             "--order", "emax", "--limit", "2", "--epsilon", "0.2"]
        )
        == 0
    )
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    for line in lines:
        assert "confidence~" in line  # ~, never =, for an estimate
        assert "(" in line and ")" in line  # the method tag


def test_plan_epsilon_prints_the_sampling_knobs(files, capsys) -> None:
    seq, query = files
    assert (
        main(["plan", "--sequence", seq, "--query", query, "--epsilon", "0.1"]) == 0
    )
    out = capsys.readouterr().out
    assert "approx knobs" in out
    assert "DKLR" in out


def test_batch_epsilon_needs_answer(files, capsys) -> None:
    seq, query = files
    code = main(
        ["batch", "--sequence", seq, "--query", query, "--epsilon", "0.1"]
    )
    assert code == 2
    assert "--answer" in capsys.readouterr().err


def test_batch_epsilon_estimates_per_stream(files, tmp_path, capsys) -> None:
    seq, query = files
    other = tmp_path / "mu2.json"
    write_sequence(hospital_sequence(), other)
    assert (
        main(
            ["batch", "--sequence", seq, "--sequence", str(other),
             "--query", query, "--answer", "1,2", "--epsilon", "0.1"]
        )
        == 0
    )
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    exact = float(
        compute_confidence(hospital_sequence(), room_change_transducer(), ("1", "2"))
    )
    for line in lines:
        name, rest = line.split("\t", 1)
        assert name in ("mu", "mu2")
        assert float(rest.split("\t")[0]) == pytest.approx(exact)


def test_verify_accepts_approx_tolerances(capsys) -> None:
    assert (
        main(
            ["verify", "--seed", "3", "--max-rounds", "2",
             "--classes", "general", "--epsilon", "0.3", "--delta", "0.001"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "approx" in out  # the engine column is in the matrix report
    assert "ok" in out
