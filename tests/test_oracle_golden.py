"""Golden conformance: the hospital example through every oracle engine.

``tests/test_running_example.py`` pins the paper's stated numbers against
the reference implementations; this module pushes the same instance —
Figure 1's Markov sequence and Figure 2's transducer — through the
*conformance harness*, so every registered engine reproduces Table 1 and
``conf(12) = 0.4038`` digit-for-digit in exact rational arithmetic.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.confidence.brute_force import brute_force_answers
from repro.examples_data.hospital import (
    CONF_12,
    TABLE_1_ROWS,
    hospital_sequence,
    room_change_transducer,
)
from repro.oracle.differential import check_instance
from repro.oracle.generators import Instance, _classify
from repro.oracle.registry import ENGINES, Prepared, VerifyContext
from repro.oracle.shrinker import instance_from_dict, instance_to_dict

EXACT_ENGINES = tuple(engine for engine in ENGINES if engine.exact)


def hospital_instance() -> Instance:
    return Instance(
        label="deterministic",
        sequence=hospital_sequence(),
        query=room_change_transducer(),
        note="hospital",
    )


def test_hospital_is_a_deterministic_class_instance() -> None:
    instance = hospital_instance()
    assert _classify(instance.query) == "deterministic"
    assert Prepared(instance).is_exact()


def test_every_engine_agrees_on_the_hospital_example() -> None:
    result = check_instance(hospital_instance())
    assert result.ok, "\n".join(diff.describe() for diff in result.diffs)
    # The non-uniform Figure 2 transducer keeps the dense fast paths out.
    names = {name for _label, name in result.coverage}
    assert "brute-force" in names and "runtime" in names and "pool" in names
    assert "log-space" in names
    assert "dense" not in names and "vectorized" not in names


@pytest.mark.parametrize("engine", EXACT_ENGINES, ids=lambda engine: engine.name)
def test_conf_12_is_exact_through_every_exact_engine(engine) -> None:
    prepared = Prepared(hospital_instance())
    with VerifyContext() as context:
        value = engine.compute(prepared, ("1", "2"), context)
    assert value == CONF_12
    assert value == Fraction("0.4038")


def test_referee_reproduces_table_1() -> None:
    instance = hospital_instance()
    reference = brute_force_answers(instance.sequence, instance.query)
    # conf(12) = Pr(s) + Pr(t) + Pr(u), as Example 3.4 sums Table 1.
    stated = sum(p for _name, _world, p, out in TABLE_1_ROWS if out == "12")
    assert reference[("1", "2")] == stated == CONF_12
    # World v (probability 0.0315) transduces into 21λ, so that answer's
    # confidence is at least Pr(v).
    assert reference[("2", "1", "λ")] >= Fraction("0.0315")


def test_hospital_case_survives_the_corpus_roundtrip() -> None:
    document = instance_to_dict(hospital_instance())
    restored = instance_from_dict(document)
    assert restored.sequence.prob_of(TABLE_1_ROWS[0][1]) == Fraction("0.3969")
    assert check_instance(restored).ok
