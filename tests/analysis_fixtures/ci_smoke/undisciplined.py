"""Deliberate violation for the CI gate-proof step.

The `lint` job runs `repro lint` over this directory and requires a
nonzero exit — if this file ever lints clean, the gate is broken. RX03
applies regardless of path, so the violation fires here without the
file living under ``src/repro/``.
"""

import random


def unreproducible():
    rng = random.Random()  # unseeded on purpose: the gate must catch this
    return rng.random()
