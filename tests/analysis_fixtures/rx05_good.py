"""RX05 fixture: telemetry usage matching the miniature catalogue in
the test — must lint clean, including the dynamic-name escape hatch.
"""

from repro import telemetry


def instrumented(value, phase: str):
    telemetry.count("fixture.documented")
    telemetry.observe("fixture.histogram", value)
    with telemetry.span("outer"):
        with telemetry.span("inner"):  # components of 'outer/inner'
            pass
    # Dynamic names are out of static reach and deliberately not flagged.
    telemetry.count(f"fixture.dynamic.{phase}")
