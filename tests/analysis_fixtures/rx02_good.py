"""RX02 fixture: compliant async patterns (virtual path in ``serve/``)
— all of this must lint clean.
"""

import asyncio
import time
from pathlib import Path


async def handler(path: Path, loop):
    await asyncio.sleep(0.1)
    # Executor hops run their payload off-loop by construction.
    data = await asyncio.to_thread(path.read_text)
    await loop.run_in_executor(None, path.write_text, data)
    return data


async def calls_nested_sync_def(path: Path):
    def flush():
        # A nested sync def only blocks at its call site; scanning its
        # body would double-report the executor-hopped use below.
        time.sleep(0.01)

    await asyncio.to_thread(flush)


def plain_sync_helper(path: Path) -> str:
    # Sync functions in serve/ may block freely — they are the payloads
    # the async layer hops to a thread.
    time.sleep(0.001)
    return path.read_text()
