"""RX01 fixture: compliant exact-zone patterns, including every
deliberate exemption — all of this must lint clean under a virtual
path in ``core/``.
"""

import time
from fractions import Fraction

from repro import telemetry


def exact_sum(probs):
    total = Fraction(0)
    for prob in probs:
        total += prob
    return total


def timed_step(recorder):
    # Whole statements carrying a clock call are exempt (timing floats
    # never touch probabilities).
    start = time.perf_counter()
    result = Fraction(1, 2)
    elapsed = time.perf_counter() - start
    # Float expressions inside telemetry recording calls are exempt.
    telemetry.observe("runtime.append.seconds", elapsed * 1.0)
    if recorder is not None:
        recorder.gauge("runtime.append.frontier", 0.0)
    return result


def declared_float(scale: float = 0.5) -> float:
    # Annotated float parameters, variables, and returns are reviewed
    # API decisions, not silent taint.
    bound: float = 0.25
    return scale + bound


def suppressed_literal():
    tolerance = 1e-9  # repro: allow[RX01] validation tolerance for float inputs, never a probability
    return tolerance
