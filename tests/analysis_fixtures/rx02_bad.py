"""RX02 fixture: blocking calls inside async defs (virtual path in
``serve/``) — every pattern below must be flagged.
"""

import os
import subprocess
import time
from pathlib import Path


async def handler(path: Path, fd: int):
    time.sleep(0.1)  # blocks the loop
    os.fsync(fd)  # blocks the loop
    with open(path) as fh:  # blocking file I/O
        data = fh.read()
    path.write_text(data)  # blocking file I/O via method
    subprocess.run(["sync"])  # blocking subprocess
    return data


async def nested_scope(path: Path):
    if path.exists():
        for _ in range(3):
            time.sleep(0.01)  # flagged at any nesting depth
