"""Pragma-semantics fixture: suppression shapes, valid and malformed.

Linted under a virtual path in ``core/`` (so RX01 is in scope). The
valid pragmas must suppress their lines; the malformed ones must
surface as RX00 findings *and* leave the underlying violation standing.
"""

SCALE = 0.5  # repro: allow[RX01] fixture: trailing pragma suppresses its own line

# repro: allow[RX01] fixture: standalone pragma suppresses the next code line
OFFSET = 0.25

# A pragma naming several rules covers each of them.
RATIO = 0.75  # repro: allow[RX01,RX03] fixture: multi-rule pragma

BAD_REASONLESS = 1.5  # repro: allow[RX01]

BAD_UNKNOWN_RULE = 2.5  # repro: allow[RX99] no such rule

BAD_SYNTAX = 3.5  # repro: allow no brackets at all
