"""RX01 fixture: float taint inside the exact-Fraction zone.

Linted under a virtual path in ``confidence/`` — every pattern below
must be flagged.
"""

from fractions import Fraction

import math  # the attribute uses below are the violations


def half_life(prob: Fraction):
    scaled = prob * 0.5  # float literal
    as_float = float(prob)  # float(...) conversion
    decayed = math.exp(-1)  # math.* usage
    return scaled, as_float, decayed


def from_math_import():
    from math import log

    return log
