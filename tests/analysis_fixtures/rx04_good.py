"""RX04 fixture: compliant locking patterns (virtual path in
``runtime/``) — all of this must lint clean.
"""

import threading


class ConsistentCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.label = "cold"  # set in __init__ and never mutated under a lock

    def record(self):
        with self._lock:
            self.hits += 1

    def reset(self):
        with self._lock:
            self.hits = 0

    def rename(self, label):
        # Never lock-guarded anywhere -> not part of the lock protocol.
        self.label = label


class UnlockedStats:
    """A class with no locks at all is fine — nothing to be consistent with."""

    def __init__(self):
        self.calls = 0

    def bump(self):
        self.calls += 1
