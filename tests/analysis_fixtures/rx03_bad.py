"""RX03 fixture: seed-discipline violations — every pattern below must
be flagged (the rule applies everywhere, no special path needed).
"""

import random

import numpy as np


def unseeded_constructions():
    a = random.Random()  # OS-entropy seeding
    b = random.Random(None)  # literal None is still unseeded
    c = np.random.default_rng()  # numpy, same story
    return a, b, c


def global_rng_usage(items):
    random.seed(42)  # mutates shared global state
    pick = random.choice(items)  # draws from the global RNG
    value = random.random()  # likewise
    noise = np.random.uniform()  # numpy global RNG
    return pick, value, noise
