"""RX03 fixture: compliant seeding patterns — all of this must lint
clean.
"""

import hashlib
import random

import numpy as np

_DERIVED_SEED = int.from_bytes(hashlib.sha256(b"fixture").digest()[:8], "big")


def seeded_constructions(seed: int):
    a = random.Random(seed)  # seed flows from an argument
    b = random.Random(_DERIVED_SEED)  # sha256-derived value
    c = random.Random(seed + 1)  # derived from an argument
    d = np.random.default_rng(seed)
    e = random.Random(f"case-{seed}")  # string seeds are fine too
    return a, b, c, d, e


def instance_draws(rng: random.Random, items):
    # Drawing from a passed-in seeded instance is the blessed idiom.
    return rng.choice(items), rng.random(), rng.sample(items, 1)
