"""RX04 fixture: lock/race violations (virtual path in ``runtime/``) —
the unguarded mutation sites below must be flagged.
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # __init__ is exempt: construction happens-before sharing
        self.entries = []

    def record(self, item):
        with self._lock:
            self.hits += 1  # guarded here...
            self.entries.append(item)

    def reset(self):
        self.hits = 0  # ...but bare here: flagged
        self.entries.clear()  # bare mutating call: flagged


class AsyncShard:
    def __init__(self, lock):
        self._locks = {0: lock}
        self.appends = 0

    async def append(self, index):
        async with self._locks[index]:
            self.appends += 1

    async def rollback(self):
        self.appends -= 1  # bare vs the locked site above: flagged
