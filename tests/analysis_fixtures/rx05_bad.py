"""RX05 fixture: telemetry literals missing from the catalogue — linted
with the miniature catalogue in the test; the undocumented names must
be flagged.
"""

from repro import telemetry


def instrumented(value):
    telemetry.count("fixture.documented")  # in the mini catalogue: clean
    telemetry.count("fixture.renamed_counter")  # NOT documented: flagged
    telemetry.gauge("fixture.mystery_gauge", value)  # NOT documented: flagged
    with telemetry.span("undocumented_phase"):  # NOT documented: flagged
        pass
    recorder = telemetry.recorder()
    if recorder is not None:
        recorder.observe("fixture.histogram", value)  # documented: clean
