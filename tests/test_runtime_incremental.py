"""StreamingEvaluator: appends must equal from-scratch evaluation exactly.

The acceptance property for the runtime subsystem: for every query class,
``StreamingEvaluator.append(timestep)`` returns confidences identical —
bit-for-bit ``Fraction`` equality, not approximate — to a from-scratch
``evaluate`` of the grown sequence.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.automata.nfa import NFA
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.core.engine import evaluate
from repro.runtime.incremental import StreamingEvaluator
from repro.runtime.plan import PlanKind, QueryPlan
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.transducers.transducer import Transducer

from tests.conftest import (
    make_fraction_sequence,
    make_fraction_timestep,
    make_random_deterministic_transducer,
    make_random_uniform_transducer,
)

ALPHABET = "ab"


def _branching_nfa() -> NFA:
    """A genuinely nondeterministic two-state machine over ``ab``."""
    return NFA(
        ALPHABET,
        ["p", "q"],
        "p",
        {"p", "q"},
        {
            ("p", "a"): {"p", "q"},
            ("p", "b"): {"p"},
            ("q", "a"): {"q"},
            ("q", "b"): {"p", "q"},
        },
    )


def _uniform_nondeterministic() -> Transducer:
    nfa = _branching_nfa()
    omega = {move: ("x",) for move in nfa.transitions()}
    omega[("p", "a", "q")] = ("y",)
    omega[("q", "b", "p")] = ("y",)
    return Transducer(nfa, omega)


def _general_transducer() -> Transducer:
    nfa = _branching_nfa()
    omega = {move: ("x",) for move in nfa.transitions()}
    omega[("p", "a", "q")] = ()
    omega[("q", "b", "p")] = ("y", "x")
    return Transducer(nfa, omega)


QUERY_FAMILIES = {
    "deterministic-transducer": lambda: collapse_transducer({"a": "X", "b": "Y"}),
    "uniform-transducer": _uniform_nondeterministic,
    "general-transducer": _general_transducer,
    "sprojector": lambda: SProjector(
        sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET)
    ),
    "indexed-sprojector": lambda: IndexedSProjector(
        sigma_star(ALPHABET), regex_to_dfa("ab*", ALPHABET), sigma_star(ALPHABET)
    ),
}


def scratch_confidences(sequence, query) -> dict:
    return {
        answer.output: answer.confidence
        for answer in evaluate(sequence, query, allow_exponential=True)
    }


@pytest.mark.parametrize("family", sorted(QUERY_FAMILIES))
def test_append_matches_scratch_exactly(family: str) -> None:
    rng = random.Random(sum(map(ord, family)))
    query = QUERY_FAMILIES[family]()
    sequence = make_fraction_sequence(ALPHABET, 2, rng)
    evaluator = StreamingEvaluator(query, sequence)
    assert evaluator.confidences() == scratch_confidences(sequence, query)
    for _ in range(4):
        produced = evaluator.append(make_fraction_timestep(ALPHABET, rng))
        expected = scratch_confidences(evaluator.sequence, query)
        assert produced == expected  # exact Fraction equality
        assert all(isinstance(v, Fraction) for v in produced.values())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6), length=st.integers(1, 4))
def test_append_property(seed: int, length: int) -> None:
    """Hypothesis sweep: random family, random exact stream, random appends."""
    rng = random.Random(seed)
    family = rng.choice(sorted(QUERY_FAMILIES))
    query = QUERY_FAMILIES[family]()
    evaluator = StreamingEvaluator(
        query, make_fraction_sequence(ALPHABET, length, rng)
    )
    for _ in range(2):
        produced = evaluator.append(make_fraction_timestep(ALPHABET, rng))
        assert produced == scratch_confidences(evaluator.sequence, query)


def test_initial_run_on_longer_sequence(rng) -> None:
    query = QUERY_FAMILIES["sprojector"]()
    sequence = make_fraction_sequence(ALPHABET, 5, rng)
    evaluator = StreamingEvaluator(query, sequence)
    assert evaluator.length == 5
    assert evaluator.confidences() == scratch_confidences(sequence, query)


def test_answers_match_unranked_enumeration(rng) -> None:
    """answers() must reproduce the unranked order so run_evaluate can
    substitute the cached frontier for a from-scratch run."""
    for family in sorted(QUERY_FAMILIES):
        query = QUERY_FAMILIES[family]()
        sequence = make_fraction_sequence(ALPHABET, 4, rng)
        evaluator = StreamingEvaluator(query, sequence)
        streamed = [(a.output, a.confidence) for a in evaluator.answers()]
        scratch = [
            (a.output, a.confidence)
            for a in evaluate(sequence, query, allow_exponential=True)
        ]
        assert streamed == scratch, family


def test_checkpoint_rollback(rng) -> None:
    query = QUERY_FAMILIES["deterministic-transducer"]()
    evaluator = StreamingEvaluator(query, make_fraction_sequence(ALPHABET, 3, rng))
    before = evaluator.confidences()
    evaluator.checkpoint()
    evaluator.append(make_fraction_timestep(ALPHABET, rng))
    evaluator.append(make_fraction_timestep(ALPHABET, rng))
    assert evaluator.length == 5
    evaluator.rollback()
    assert evaluator.length == 3
    assert evaluator.confidences() == before
    # The restored frontier keeps absorbing appends correctly.
    produced = evaluator.append(make_fraction_timestep(ALPHABET, rng))
    assert produced == scratch_confidences(evaluator.sequence, query)


def test_rollback_without_checkpoint_raises(rng) -> None:
    evaluator = StreamingEvaluator(
        QUERY_FAMILIES["deterministic-transducer"](),
        make_fraction_sequence(ALPHABET, 2, rng),
    )
    with pytest.raises(ReproError):
        evaluator.rollback()


def test_discard_checkpoint_pops_without_restoring(rng) -> None:
    query = QUERY_FAMILIES["deterministic-transducer"]()
    evaluator = StreamingEvaluator(query, make_fraction_sequence(ALPHABET, 3, rng))
    evaluator.checkpoint()
    evaluator.append(make_fraction_timestep(ALPHABET, rng))
    after = evaluator.confidences()
    evaluator.discard_checkpoint()  # commit: the snapshot is gone...
    assert evaluator.length == 4
    assert evaluator.confidences() == after
    with pytest.raises(ReproError):  # ...so there is nothing to roll back
        evaluator.rollback()
    with pytest.raises(ReproError):
        evaluator.discard_checkpoint()


def test_append_of_invalid_timestep_is_atomic(rng) -> None:
    """A rejected timestep leaves the evaluator exactly as it was — the
    sequence is not half-grown, the frontier not half-pushed."""
    query = QUERY_FAMILIES["deterministic-transducer"]()
    evaluator = StreamingEvaluator(query, make_fraction_sequence(ALPHABET, 3, rng))
    before = evaluator.confidences()
    bad = make_fraction_timestep(ALPHABET, rng)
    bad["a"] = {symbol: p / 3 for symbol, p in bad["a"].items()}
    with pytest.raises(ReproError):
        evaluator.append(bad)
    assert evaluator.length == 3
    assert evaluator.confidences() == before
    evaluator.append(make_fraction_timestep(ALPHABET, rng))
    assert evaluator.confidences() == scratch_confidences(evaluator.sequence, query)


def test_accepts_prebuilt_plan(rng) -> None:
    plan = QueryPlan.build(QUERY_FAMILIES["deterministic-transducer"]())
    sequence = make_fraction_sequence(ALPHABET, 3, rng)
    evaluator = StreamingEvaluator(plan, sequence)
    assert evaluator.plan is plan
    assert evaluator.confidences() == scratch_confidences(sequence, plan.query)


def test_append_records_dp_cells(rng) -> None:
    plan = QueryPlan.build(QUERY_FAMILIES["deterministic-transducer"]())
    evaluator = StreamingEvaluator(plan, make_fraction_sequence(ALPHABET, 2, rng))
    before = plan.stats.dp_cells
    evaluator.append(make_fraction_timestep(ALPHABET, rng))
    assert plan.stats.appends >= 1
    assert plan.stats.dp_cells > before
    assert evaluator.frontier_size > 0


def test_float_sequences_stream_too(rng) -> None:
    """Float streams match from-scratch runs up to float noise."""
    from tests.conftest import make_sequence

    query = QUERY_FAMILIES["indexed-sprojector"]()
    sequence = make_sequence(ALPHABET, 3, rng)
    evaluator = StreamingEvaluator(query, sequence)
    produced = evaluator.append(make_fraction_timestep(ALPHABET, rng))
    expected = scratch_confidences(evaluator.sequence, query)
    assert set(produced) == set(expected)
    for answer, value in produced.items():
        assert abs(float(value) - float(expected[answer])) < 1e-9


def test_plan_kinds_cover_all_families() -> None:
    kinds = {
        family: QueryPlan.build(QUERY_FAMILIES[family]()).kind
        for family in QUERY_FAMILIES
    }
    assert kinds == {
        "deterministic-transducer": PlanKind.DETERMINISTIC,
        "uniform-transducer": PlanKind.UNIFORM,
        "general-transducer": PlanKind.GENERAL,
        "sprojector": PlanKind.SPROJECTOR,
        "indexed-sprojector": PlanKind.INDEXED_SPROJECTOR,
    }


def test_random_machines_stream_exactly(rng) -> None:
    """Random transducers from the shared factories, exact streams."""
    for make in (make_random_deterministic_transducer, make_random_uniform_transducer):
        query = make(ALPHABET, 3, rng)
        evaluator = StreamingEvaluator(query, make_fraction_sequence(ALPHABET, 2, rng))
        for _ in range(3):
            produced = evaluator.append(make_fraction_timestep(ALPHABET, rng))
            assert produced == scratch_confidences(evaluator.sequence, query)
