"""The oracle's seeded instance generators (repro.oracle.generators)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.oracle.generators import (
    CLASS_LABELS,
    LABEL_BY_KIND,
    _classify,
    generate_instance,
)
from repro.oracle.shrinker import instance_to_dict
from repro.runtime.cache import plan_for
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.transducers.transducer import Transducer


@pytest.mark.parametrize("label", CLASS_LABELS)
@pytest.mark.parametrize("trial", [0, 1, 2])
def test_generated_instance_is_in_its_declared_class(label, trial) -> None:
    instance = generate_instance(label, seed=11, trial=trial)
    assert instance.label == label
    assert _classify(instance.query) == label
    # The runtime planner must file the query in the same Table-2 row.
    plan = plan_for(instance.query)
    assert LABEL_BY_KIND[plan.kind] == label


@pytest.mark.parametrize("label", CLASS_LABELS)
def test_generation_is_reproducible(label) -> None:
    first = generate_instance(label, seed=3, trial=1)
    second = generate_instance(label, seed=3, trial=1)
    assert instance_to_dict(first) == instance_to_dict(second)


def test_different_seeds_differ() -> None:
    a = generate_instance("deterministic", seed=0, trial=0)
    b = generate_instance("deterministic", seed=1, trial=0)
    assert instance_to_dict(a) != instance_to_dict(b)


def test_every_third_trial_is_exact() -> None:
    instance = generate_instance("uniform", seed=5, trial=2)
    assert all(
        isinstance(prob, (int, Fraction))
        for _symbol, prob in instance.sequence.initial_support()
    )


def test_deterministic_trials_alternate_uniformity() -> None:
    k_uniform = generate_instance("deterministic", seed=9, trial=0)
    varied = generate_instance("deterministic", seed=9, trial=1)
    assert k_uniform.query.uniformity() is not None
    assert varied.query.uniformity() is None


def test_query_kinds_match_labels() -> None:
    assert isinstance(generate_instance("indexed", 0).query, IndexedSProjector)
    sproj = generate_instance("sprojector", 0).query
    assert isinstance(sproj, SProjector) and not isinstance(sproj, IndexedSProjector)
    assert isinstance(generate_instance("general", 0).query, Transducer)


def test_unknown_class_is_rejected() -> None:
    with pytest.raises(ReproError, match="unknown query class"):
        generate_instance("bogus", seed=0)


def test_describe_names_the_reproduction_coordinates() -> None:
    instance = generate_instance("general", seed=42, trial=3)
    description = instance.describe()
    assert "class=general" in description
    assert "seed=42" in description
    assert "trial=3" in description


def test_conftest_still_reexports_the_factories() -> None:
    from tests import conftest

    assert conftest.make_sequence is not None
    assert conftest.make_random_deterministic_transducer is not None
