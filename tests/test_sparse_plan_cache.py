"""PlanCache and worker-cache soundness under the sparse threshold.

The density threshold participates in the plan fingerprint, so a cache
must never serve a dense-built plan to a query planned under a
sparse-forcing threshold (or vice versa) — and worker-local caches must
rebuild chunk plans under the exact representation the parent shipped.
"""

from __future__ import annotations

import random

from repro.confidence.deterministic import confidence_deterministic
from repro.oracle.generators import make_fraction_sequence, make_sparse_transducer
from repro.parallel.worker import (
    MODE_CONFIDENCE,
    execute_chunk,
    make_task,
    worker_plan_cache,
)
from repro.runtime.cache import PlanCache
from repro.runtime.plan import QueryPlan, fingerprint


def test_cache_keys_thresholds_separately() -> None:
    cache = PlanCache()
    query = make_sparse_transducer(num_states=64)
    sparse_plan = cache.get(query, sparse_threshold=1.0)
    dense_plan = cache.get(query, sparse_threshold=-1.0)
    default_plan = cache.get(query)
    assert sparse_plan.representation == "sparse"
    assert dense_plan.representation == "dense"
    # density 1/64 is far below the default threshold.
    assert default_plan.representation == "sparse"
    # Three distinct fingerprints, three distinct cached plans.
    assert len({sparse_plan.fingerprint, dense_plan.fingerprint, default_plan.fingerprint}) == 3
    assert len(cache) == 3
    assert cache.misses == 3 and cache.hits == 0


def test_cache_hits_same_threshold_never_cross_serves() -> None:
    cache = PlanCache()
    query = make_sparse_transducer(num_states=64)
    first = cache.get(query, sparse_threshold=-1.0)
    again = cache.get(query, sparse_threshold=-1.0)
    assert again is first  # a genuine hit
    assert cache.hits == 1
    other = cache.get(query, sparse_threshold=1.0)
    assert other is not first
    assert other.representation == "sparse" and first.representation == "dense"
    # Repeating both thresholds only ever returns the matching plan.
    assert cache.get(query, sparse_threshold=-1.0) is first
    assert cache.get(query, sparse_threshold=1.0) is other


def test_fingerprint_hint_preserves_threshold_identity() -> None:
    cache = PlanCache()
    query = make_sparse_transducer(num_states=64)
    hint = fingerprint(query, 1.0)
    plan = cache.get(query, fingerprint_hint=hint, sparse_threshold=1.0)
    assert plan.fingerprint == hint
    assert plan.representation == "sparse"
    # The default-threshold key is untouched: a later default get builds
    # its own plan instead of being served the forced one.
    default_plan = cache.get(query)
    assert default_plan is not plan
    assert default_plan.fingerprint == fingerprint(query)


def test_worker_cache_honors_shipped_representation() -> None:
    rng = random.Random("sparse-worker-cache")
    query = make_sparse_transducer(num_states=64)
    sequence = make_fraction_sequence(sorted(query.nfa.alphabet), 3, rng)
    answers = list(confidence_for_probe(query, sequence))
    output = answers[0]
    want = confidence_deterministic(sequence, query, output)

    sparse_plan = QueryPlan.build(query, sparse_threshold=1.0)
    dense_plan = QueryPlan.build(query, sparse_threshold=-1.0)
    worker_cache = worker_plan_cache()
    worker_cache.clear()

    for plan in (sparse_plan, dense_plan):
        task = make_task(
            MODE_CONFIDENCE,
            plan,
            [("stream-0", sequence)],
            output=output,
            allow_exponential=True,
        )
        assert task.sparse_threshold == plan.sparse_threshold
        result = execute_chunk(task)
        ((name, value),) = result.payload
        assert name == "stream-0"
        assert value == want

    # Two tasks, two distinct worker-side plans — one per representation.
    assert len(worker_cache) == 2
    reps = sorted(
        cached.representation for cached in worker_cache._plans.values()
    )
    assert reps == ["dense", "sparse"]
    # Replaying the sparse task is a pure hit: no third plan appears.
    execute_chunk(
        make_task(
            MODE_CONFIDENCE,
            sparse_plan,
            [("stream-1", sequence)],
            output=output,
            allow_exponential=True,
        )
    )
    assert len(worker_cache) == 2
    worker_cache.clear()


def confidence_for_probe(query, sequence):
    """A deterministic, non-empty probe answer set for the worker test."""
    from repro.confidence.brute_force import brute_force_answers

    answers = brute_force_answers(sequence, query)
    assert answers, "probe sequence produced no answers"
    return sorted(answers)
