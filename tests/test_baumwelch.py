"""Baum–Welch training: EM guarantees and recovery behaviour."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ReproError
from repro.markov.baumwelch import baum_welch
from repro.markov.hmm import HMM


def make_true_model() -> HMM:
    return HMM(
        initial={"H": 0.7, "C": 0.3},
        transition={"H": {"H": 0.8, "C": 0.2}, "C": {"H": 0.3, "C": 0.7}},
        emission={
            "H": {"1": 0.1, "2": 0.2, "3": 0.7},
            "C": {"1": 0.7, "2": 0.2, "3": 0.1},
        },
    )


def make_starting_model(rng: random.Random) -> HMM:
    def row(keys):
        weights = [rng.random() + 0.2 for _ in keys]
        total = sum(weights)
        values = {k: w / total for k, w in zip(keys, weights)}
        top = max(values, key=values.get)
        values[top] += 1.0 - sum(values.values())
        return values

    states = ("H", "C")
    symbols = ("1", "2", "3")
    return HMM(
        initial=row(states),
        transition={s: row(states) for s in states},
        emission={s: row(symbols) for s in states},
    )


def test_likelihood_is_nondecreasing() -> None:
    rng = random.Random(42)
    true_model = make_true_model()
    strings = [true_model.sample(30, rng)[1] for _ in range(5)]
    start = make_starting_model(rng)
    result = baum_welch(start, strings, iterations=15)
    trace = result.log_likelihoods
    assert len(trace) >= 2
    for earlier, later in zip(trace, trace[1:]):
        assert later >= earlier - 1e-6, trace


def test_training_improves_over_start() -> None:
    rng = random.Random(7)
    true_model = make_true_model()
    strings = [true_model.sample(40, rng)[1] for _ in range(4)]
    start = make_starting_model(rng)
    result = baum_welch(start, strings, iterations=25)
    start_loglik = sum(start.log_likelihood(s) for s in strings)
    end_loglik = sum(result.hmm.log_likelihood(s) for s in strings)
    assert end_loglik > start_loglik


def test_fitted_model_is_valid_hmm() -> None:
    rng = random.Random(3)
    true_model = make_true_model()
    strings = [true_model.sample(20, rng)[1] for _ in range(3)]
    result = baum_welch(make_starting_model(rng), strings, iterations=10)
    fitted = result.hmm
    assert set(fitted.states) == {"H", "C"}
    assert math.isclose(sum(fitted.initial.values()), 1.0, abs_tol=1e-9)
    for state in fitted.states:
        assert math.isclose(sum(fitted.transition[state].values()), 1.0, abs_tol=1e-9)
        assert math.isclose(sum(fitted.emission[state].values()), 1.0, abs_tol=1e-9)


def test_fit_on_deterministic_data_concentrates_emissions() -> None:
    """Training on a constant observation string drives the emission of
    the used states toward that symbol."""
    rng = random.Random(11)
    start = make_starting_model(rng)
    result = baum_welch(start, [("3",) * 30], iterations=30)
    fitted = result.hmm
    # At least one state must emit '3' almost surely.
    assert max(fitted.emission[s].get("3", 0.0) for s in fitted.states) > 0.99


def test_converges_early_with_tolerance() -> None:
    rng = random.Random(5)
    true_model = make_true_model()
    strings = [true_model.sample(15, rng)[1]]
    result = baum_welch(
        make_starting_model(rng), strings, iterations=200, tolerance=1e-3
    )
    assert result.iterations < 200


def test_trained_model_feeds_the_query_pipeline() -> None:
    """End-to-end: fit → smooth → Markov sequence → valid distribution."""
    rng = random.Random(9)
    true_model = make_true_model()
    strings = [true_model.sample(25, rng)[1] for _ in range(3)]
    result = baum_welch(make_starting_model(rng), strings, iterations=10)
    mu = result.hmm.to_markov_sequence(strings[0][:6])
    total = sum(p for _w, p in mu.worlds())
    assert math.isclose(total, 1.0, abs_tol=1e-9)


def test_validation() -> None:
    rng = random.Random(1)
    start = make_starting_model(rng)
    with pytest.raises(ReproError):
        baum_welch(start, [], iterations=5)
    with pytest.raises(ReproError):
        baum_welch(start, [()], iterations=5)
