"""Markov-sequence analytics: Viterbi, conditioning, reversal, entropy."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidMarkovSequenceError
from repro.markov.analysis import (
    condition_on,
    entropy,
    kl_divergence,
    most_likely_world,
    reverse_sequence,
    total_variation,
)
from repro.markov.builders import iid, uniform_iid

from tests.conftest import make_sequence


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 5))
def test_most_likely_world_matches_brute(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("abc", length, rng, branching=2)
    path, score = most_likely_world(sequence)
    best_world, best_prob = max(sequence.worlds(), key=lambda wp: wp[1])
    assert math.isclose(score, best_prob, abs_tol=1e-12)
    assert math.isclose(sequence.prob_of(path), score, abs_tol=1e-12)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_condition_on_matches_bayes(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    # Condition on a reachable mid-chain observation.
    worlds = list(sequence.worlds())
    observed = worlds[0][0][2]
    conditioned = condition_on(sequence, {3: observed})
    evidence_mass = sum(p for w, p in worlds if w[2] == observed)
    for world, prob in worlds:
        expected = (prob / evidence_mass) if world[2] == observed else 0.0
        assert math.isclose(conditioned.prob_of(world), expected, abs_tol=1e-9)


def test_condition_on_multiple_positions() -> None:
    sequence = uniform_iid("ab", 3)
    conditioned = condition_on(sequence, {1: "a", 3: "b"})
    total = 0.0
    for world, prob in conditioned.worlds():
        assert world[0] == "a" and world[2] == "b"
        total += prob
    assert math.isclose(total, 1.0, abs_tol=1e-9)


def test_condition_on_impossible_evidence() -> None:
    sequence = iid({"a": 1.0, "b": 0.0}, 2)
    with pytest.raises(InvalidMarkovSequenceError):
        condition_on(sequence, {1: "b"})


def test_condition_on_validation() -> None:
    sequence = uniform_iid("ab", 2)
    with pytest.raises(InvalidMarkovSequenceError):
        condition_on(sequence, {5: "a"})
    with pytest.raises(InvalidMarkovSequenceError):
        condition_on(sequence, {1: "z"})


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 4))
def test_reverse_sequence_distribution(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", length, rng)
    reversed_sequence = reverse_sequence(sequence)
    for world, prob in sequence.worlds():
        assert math.isclose(
            reversed_sequence.prob_of(tuple(reversed(world))), prob, abs_tol=1e-9
        )


def test_reverse_involution_up_to_float_noise() -> None:
    rng = random.Random(6)
    sequence = make_sequence("ab", 3, rng)
    double = reverse_sequence(reverse_sequence(sequence))
    assert total_variation(sequence, double) < 1e-9


def test_entropy_uniform() -> None:
    sequence = uniform_iid("ab", 5)
    assert math.isclose(entropy(sequence), 5.0, abs_tol=1e-9)  # 5 fair bits
    four = uniform_iid("abcd", 3)
    assert math.isclose(entropy(four), 6.0, abs_tol=1e-9)  # 3 * log2(4)


def test_entropy_deterministic_chain_is_zero() -> None:
    sequence = iid({"a": 1.0}, 4)
    assert entropy(sequence) == 0.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_entropy_matches_brute_force(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    brute = -sum(
        float(p) * math.log2(float(p)) for _w, p in sequence.worlds() if p > 0
    )
    assert math.isclose(entropy(sequence), brute, abs_tol=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_kl_divergence_matches_brute_force(seed: int) -> None:
    rng = random.Random(seed)
    left = make_sequence("ab", 3, rng)
    right = make_sequence("ab", 3, rng)
    value = kl_divergence(left, right)
    left_worlds = dict(left.worlds())
    brute = 0.0
    for world, p in left_worlds.items():
        q = float(right.prob_of(world))
        if q <= 0 and p > 0:
            brute = math.inf
            break
        if p > 0:
            brute += float(p) * math.log2(float(p) / q)
    if brute == math.inf:
        assert value == math.inf
    else:
        assert math.isclose(value, brute, abs_tol=1e-9)


def test_kl_divergence_properties() -> None:
    rng = random.Random(3)
    mu = make_sequence("ab", 4, rng)
    assert math.isclose(kl_divergence(mu, mu), 0.0, abs_tol=1e-12)
    nu = iid({"a": 1.0, "b": 0.0}, 4)
    dense = uniform_iid("ab", 4)
    assert kl_divergence(dense, nu) == math.inf  # dense puts mass off nu's support
    assert kl_divergence(nu, dense) > 0
    with pytest.raises(InvalidMarkovSequenceError):
        kl_divergence(mu, uniform_iid("abc", 4))


def test_total_variation() -> None:
    left = iid({"a": Fraction(1, 2), "b": Fraction(1, 2)}, 1)
    right = iid({"a": Fraction(3, 4), "b": Fraction(1, 4)}, 1)
    assert math.isclose(total_variation(left, right), 0.25)
    assert total_variation(left, left) == 0.0
    with pytest.raises(InvalidMarkovSequenceError):
        total_variation(left, uniform_iid("abc", 1))
