"""End-to-end k-order evaluation through the engine (footnote 3)."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidTransducerError
from repro.automata.nfa import NFA
from repro.transducers.library import collapse_transducer
from repro.transducers.transducer import Transducer
from repro.core.korder import confidence_korder, evaluate_korder

from tests.test_korder import make_random_spec, make_spec

import random


def brute_answers(spec, transducer):
    confidences: dict = {}
    for world, prob in spec.worlds():
        output = transducer.transduce_deterministic(world)
        if output is not None:
            confidences[output] = confidences.get(output, 0) + prob
    return confidences


def test_evaluate_korder_matches_direct_brute_force() -> None:
    spec = make_spec()
    transducer = collapse_transducer({"a": "x", "b": "y"})
    expected = brute_answers(spec, transducer)
    answers = list(evaluate_korder(spec, transducer))
    assert {a.output for a in answers} == set(expected)
    for answer in answers:
        assert math.isclose(
            float(answer.confidence), float(expected[answer.output]), abs_tol=1e-9
        )


def test_evaluate_korder_ranked() -> None:
    rng = random.Random(17)
    spec = make_random_spec(rng, 2, 4)
    transducer = collapse_transducer({"a": "x", "b": "y"})
    expected = brute_answers(spec, transducer)
    ranked = list(evaluate_korder(spec, transducer, order="emax", limit=3))
    assert len(ranked) == 3
    scores = [a.score for a in ranked]
    assert scores == sorted(scores, reverse=True)
    for answer in ranked:
        assert math.isclose(
            float(answer.confidence), float(expected[answer.output]), abs_tol=1e-9
        )


def test_confidence_korder() -> None:
    spec = make_spec()
    transducer = collapse_transducer({"a": "x", "b": "y"})
    expected = brute_answers(spec, transducer)
    for output, confidence in expected.items():
        assert math.isclose(
            float(confidence_korder(spec, transducer, output)),
            float(confidence),
            abs_tol=1e-9,
        )


def test_nondeterministic_rejected() -> None:
    spec = make_spec()
    nondeterministic = Transducer(
        NFA("ab", {0, 1}, 0, {0, 1}, {(0, "a"): {0, 1}, (0, "b"): {0}}), {}
    )
    with pytest.raises(InvalidTransducerError):
        list(evaluate_korder(spec, nondeterministic))
    with pytest.raises(InvalidTransducerError):
        confidence_korder(spec, nondeterministic, ())
