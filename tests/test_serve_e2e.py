"""End-to-end acceptance: the service vs offline evaluation, bit for bit.

One Fraction stream is grown append-by-append through the running
service while an offline :class:`MarkovStreamDatabase` replays the same
appends in-process. At every timestep the standing query's watched
value, the alert payload, and one-shot query answers must be *exactly*
equal (``Fraction`` to ``Fraction``, via the ``"p/q"`` wire encoding) —
and the shared plan cache must record exactly one miss, proving the
standing query advances one DP layer per append instead of re-planning.
"""

from __future__ import annotations

from fractions import Fraction

from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa, regex_to_nfa
from repro.io.json_format import query_to_dict, sequence_to_dict
from repro.lahar.database import MarkovStreamDatabase
from repro.lahar.monitor import occurrence_profile
from repro.serve import ServeClient, ServerThread
from repro.serve.protocol import decode_value, encode_transition, encode_value
from repro.transducers.library import accept_filter
from repro.transducers.sprojector import SProjector

from tests.conftest import make_fraction_sequence, make_fraction_timestep

ALPHABET = "ab"
APPENDS = 8


def contains_ab_query():
    return accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", ALPHABET))


def rare_b_timestep() -> dict:
    """A timestep where 'b' stays rare, so Pr("ab" occurred) climbs
    gradually instead of saturating — the crossing lands mid-run."""
    return {
        "a": {"a": Fraction(9, 10), "b": Fraction(1, 10)},
        "b": {"a": Fraction(9, 10), "b": Fraction(1, 10)},
    }


def rare_b_sequence():
    from repro.markov.sequence import MarkovSequence

    return MarkovSequence(ALPHABET, {"a": Fraction(1)}, [rare_b_timestep()])


def standing_value(client, name: str) -> Fraction:
    entries = {e["name"]: e for e in client.call("stats")["standing"]}
    return decode_value(entries[name]["value"])


def test_standing_query_tracks_offline_database_exactly(tmp_path) -> None:
    sequence = rare_b_sequence()
    timesteps = [rare_b_timestep() for _ in range(APPENDS)]
    query = contains_ab_query()
    pattern = regex_to_nfa("ab", ALPHABET)

    offline = MarkovStreamDatabase()
    offline.register_stream("s", sequence)
    offline_evaluator = offline.streaming_evaluator("s", query)
    offline_values = [offline_evaluator.confidences().get((), 0)]
    grown = sequence
    occurrence_values = [occurrence_profile(grown, pattern)[-1]]
    for timestep in timesteps:
        grown = offline.append("s", timestep)
        offline_values.append(offline_evaluator.confidences().get((), 0))
        occurrence_values.append(occurrence_profile(grown, pattern)[-1])

    # threshold placed strictly between registration value and the final
    # value: exactly one upward crossing exists in this run
    assert offline_values[-1] > offline_values[0]
    threshold = (offline_values[0] + offline_values[-1]) / 2
    crossing = next(
        i for i, value in enumerate(offline_values) if value >= threshold
    )

    path = str(tmp_path / "e2e.sock")
    with ServerThread(socket_path=path, shards=2) as harness:
        with ServeClient.connect_unix(path) as client:
            client.call(
                "register_stream", name="s", sequence=sequence_to_dict(sequence)
            )
            client.call(
                "register_standing_query",
                name="answer-watch",
                stream="s",
                query=query_to_dict(query),
                kind="answer",
                output=[],
                threshold=encode_value(threshold),
            )
            client.call(
                "register_standing_query",
                name="occ-watch",
                stream="s",
                query=query_to_dict(
                    SProjector(
                        sigma_star(ALPHABET),
                        regex_to_dfa("ab", ALPHABET),
                        sigma_star(ALPHABET),
                    )
                ),
                kind="monitor",
                threshold="2/1",  # unreachable; we only check the tracked value
            )
            client.call("subscribe", standing="answer-watch")

            assert standing_value(client, "answer-watch") == offline_values[0]
            assert standing_value(client, "occ-watch") == occurrence_values[0]

            alerted_at = None
            for i, timestep in enumerate(timesteps, start=1):
                result = client.call(
                    "append", stream="s", transition=encode_transition(timestep)
                )
                assert result["length"] == sequence.length + i
                # bit-identical at EVERY timestep, both engines
                assert standing_value(client, "answer-watch") == offline_values[i]
                assert standing_value(client, "occ-watch") == occurrence_values[i]
                if result["alerts"]:
                    assert alerted_at is None, "alert fired twice"
                    alerted_at = i

            # the alert fired exactly at the offline crossing timestep
            assert alerted_at == crossing
            event = client.next_event(timeout=5)
            assert event["event"] == "alert"
            assert decode_value(event["data"]["value"]) == offline_values[crossing]
            assert event["data"]["timestep"] == sequence.length + crossing

            # one-shot reads agree with offline evaluation exactly
            answers = client.call("query", stream="s", query=query_to_dict(query))
            offline_answers = {
                answer.rendered(): answer.confidence
                for answer in offline.query("s", query)
            }
            assert {
                entry["output"]: decode_value(entry["confidence"])
                for entry in answers["answers"]
            } == offline_answers

            # exactly one plan shape was ever compiled: the standing
            # query advanced incrementally, it never re-planned
            cache = client.call("stats")["database"]["plan_cache"]
            assert cache["misses"] == 1
            assert cache["hits"] >= 1


def test_top_k_across_matches_offline_merge(tmp_path, rng) -> None:
    query = contains_ab_query()
    sequences = {
        name: make_fraction_sequence(ALPHABET, 3, rng) for name in ("s1", "s2", "s3")
    }
    offline = MarkovStreamDatabase()
    for name, sequence in sequences.items():
        offline.register_stream(name, sequence)
    want = [
        (sa.stream, sa.answer.rendered(), sa.answer.score)
        for sa in offline.top_k_across(query, 4, order="emax")
    ]

    path = str(tmp_path / "topk.sock")
    with ServerThread(socket_path=path, shards=2) as harness:
        with ServeClient.connect_unix(path) as client:
            for name, sequence in sequences.items():
                client.call(
                    "register_stream", name=name, sequence=sequence_to_dict(sequence)
                )
            merged = client.call(
                "top_k_across", query=query_to_dict(query), k=4, order="emax"
            )
    got = [
        (entry["stream"], entry["output"], decode_value(entry["score"]))
        for entry in merged["answers"]
    ]
    assert got == want
