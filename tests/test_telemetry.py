"""The telemetry subsystem: metrics, spans, export, CLI, zero overhead."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.cli import main
from repro.confidence.brute_force import brute_force_answers
from repro.errors import ReproError
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.io.json_format import write_query, write_sequence
from repro.oracle.differential import pick_probes
from repro.oracle.generators import generate_instance
from repro.oracle.registry import ENGINES, Prepared, VerifyContext
from repro.telemetry.metrics import Histogram, Registry


@pytest.fixture(autouse=True)
def telemetry_disabled():
    """Every test starts and ends with telemetry off (module-global state)."""
    telemetry.disable()
    yield
    telemetry.disable()


# ---------------------------------------------------------------------------
# Metric semantics
# ---------------------------------------------------------------------------


def test_counter_accumulates() -> None:
    registry = Registry()
    registry.count("a", 1)
    registry.count("a", 4)
    registry.count("b")
    snap = registry.snapshot()
    assert snap["counters"] == {"a": 5, "b": 1}


def test_gauge_last_write_wins() -> None:
    registry = Registry()
    registry.gauge("g", 1.5)
    registry.gauge("g", -2.0)
    assert registry.snapshot()["gauges"] == {"g": -2.0}


def test_histogram_buckets_and_extremes() -> None:
    hist = Histogram(bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 1.0, 5.0, 50.0, 500.0):
        hist.observe(value)
    # inclusive upper edges: 0.5 and 1.0 land in bucket 0
    assert hist.counts == [2, 1, 1, 1]
    assert hist.count == 5
    assert hist.min == 0.5
    assert hist.max == 500.0
    assert hist.total == pytest.approx(556.5)
    assert hist.mean() == pytest.approx(556.5 / 5)


def test_histogram_rejects_bad_bounds() -> None:
    with pytest.raises(ReproError):
        Histogram(bounds=())
    with pytest.raises(ReproError):
        Histogram(bounds=(2.0, 1.0))


def test_histogram_merge_requires_equal_bounds() -> None:
    with pytest.raises(ReproError):
        Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))


def test_histogram_roundtrip_dict() -> None:
    hist = Histogram(bounds=(1.0, 2.0))
    hist.observe(0.5)
    hist.observe(3.0)
    assert Histogram.from_dict(hist.as_dict()) == hist


def _hist_of(values: list[float]) -> Histogram:
    hist = Histogram(bounds=(0.001, 0.1, 1.0, 10.0))
    for value in values:
        hist.observe(value)
    return hist


def _assert_equivalent(a: Histogram, b: Histogram) -> None:
    """Equality modulo float-summation order in ``total``."""
    assert a.bounds == b.bounds
    assert a.counts == b.counts
    assert a.count == b.count
    assert a.min == b.min
    assert a.max == b.max
    assert math.isclose(a.total, b.total, rel_tol=1e-12, abs_tol=1e-12)


finite_values = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=30
)


@settings(max_examples=60, deadline=None)
@given(finite_values, finite_values, finite_values)
def test_histogram_merge_associative_commutative_count_preserving(
    xs: list[float], ys: list[float], zs: list[float]
) -> None:
    a, b, c = _hist_of(xs), _hist_of(ys), _hist_of(zs)
    _assert_equivalent(a.merge(b), b.merge(a))
    _assert_equivalent(a.merge(b).merge(c), a.merge(b.merge(c)))
    merged = a.merge(b).merge(c)
    assert merged.count == len(xs) + len(ys) + len(zs)
    assert sum(merged.counts) == merged.count


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


def test_span_nesting_builds_paths() -> None:
    telemetry.enable()
    with telemetry.span("outer"):
        with telemetry.span("inner"):
            pass
        with telemetry.span("inner"):
            pass
    with telemetry.span("outer"):
        pass
    spans = telemetry.snapshot()["spans"]
    assert spans["outer"]["count"] == 2
    assert spans["outer/inner"]["count"] == 2
    assert set(spans) == {"outer", "outer/inner"}


def test_span_records_positive_duration() -> None:
    registry = telemetry.enable()
    with telemetry.span("timed"):
        sum(range(1000))
    data = registry.snapshot()["spans"]["timed"]
    assert data["count"] == 1
    assert data["total"] > 0


def test_disabled_span_is_shared_noop() -> None:
    assert telemetry.span("anything") is telemetry.NOOP_SPAN
    with telemetry.span("anything"):
        pass  # enters and exits without a registry


# ---------------------------------------------------------------------------
# Module-level helpers and sessions
# ---------------------------------------------------------------------------


def test_disabled_helpers_are_inert_and_allocation_free() -> None:
    base = telemetry.recorder_allocations()
    telemetry.count("x", 7)
    telemetry.gauge("y", 1.0)
    telemetry.observe("z", 0.5)
    with telemetry.span("s"):
        pass
    assert telemetry.recorder_allocations() == base
    assert telemetry.recorder() is None
    assert telemetry.snapshot()["counters"] == {}


def test_session_exports_and_restores(tmp_path) -> None:
    target = tmp_path / "snap.json"
    with telemetry.session(target):
        assert telemetry.enabled()
        telemetry.count("inside", 2)
    assert not telemetry.enabled()
    snapshot = telemetry.load_snapshot(target)
    assert snapshot["counters"] == {"inside": 2}


def test_session_exports_even_on_error(tmp_path) -> None:
    target = tmp_path / "snap.json"
    with pytest.raises(RuntimeError):
        with telemetry.session(target):
            telemetry.count("partial")
            raise RuntimeError("boom")
    assert telemetry.load_snapshot(target)["counters"] == {"partial": 1}
    assert not telemetry.enabled()


# ---------------------------------------------------------------------------
# Exporter round-trips
# ---------------------------------------------------------------------------


def _populated_snapshot() -> dict:
    registry = telemetry.enable()
    telemetry.count("c.one", 3)
    telemetry.gauge("g.one", 2.5)
    telemetry.observe("h.one", 0.25)
    with telemetry.span("root"):
        with telemetry.span("leaf"):
            pass
    snap = registry.snapshot()
    telemetry.disable()
    return snap


@pytest.mark.parametrize("name", ["snap.json", "snap.ndjson"])
def test_export_roundtrip(tmp_path, name: str) -> None:
    snap = _populated_snapshot()
    path = telemetry.write_snapshot(snap, tmp_path / name)
    assert telemetry.load_snapshot(path) == snap


def test_ndjson_lines_are_individually_parseable(tmp_path) -> None:
    snap = _populated_snapshot()
    path = telemetry.write_snapshot(snap, tmp_path / "snap.ndjson")
    lines = path.read_text().strip().splitlines()
    records = [json.loads(line) for line in lines]
    kinds = {record["kind"] for record in records}
    assert {"meta", "counter", "gauge", "histogram", "span"} <= kinds


def test_load_snapshot_rejects_garbage(tmp_path) -> None:
    bad = tmp_path / "bad.ndjson"
    bad.write_text("{not json}\n")
    with pytest.raises(ReproError):
        telemetry.load_snapshot(bad)
    with pytest.raises(ReproError):
        telemetry.load_snapshot(tmp_path / "missing.json")


def test_render_snapshot_mentions_every_metric() -> None:
    snap = _populated_snapshot()
    rendered = telemetry.render_snapshot(snap)
    for name in ("c.one", "g.one", "h.one", "root", "root/leaf"):
        assert name in rendered
    assert telemetry.render_snapshot(telemetry.snapshot()) == "(empty telemetry snapshot)"


# ---------------------------------------------------------------------------
# Zero overhead + bit-identical results (acceptance gate)
# ---------------------------------------------------------------------------


def test_disabled_dense_run_allocates_nothing_and_is_bit_identical() -> None:
    # Trial 0 of the deterministic class is the k-uniform variant, so the
    # dense engine applies (same convention the verify harness relies on).
    instance = generate_instance("deterministic", seed=5, trial=0)
    prepared = Prepared(instance)
    dense = next(engine for engine in ENGINES if engine.name == "dense")
    referee = next(engine for engine in ENGINES if engine.name == "brute-force")
    assert dense.applicable(prepared)

    reference = brute_force_answers(prepared.sequence_exact, instance.query)
    answers = pick_probes(instance, reference, limit=2)

    with VerifyContext() as context:
        want = [referee.compute(prepared, answer, context) for answer in answers]

        base = telemetry.recorder_allocations()
        disabled_values = [
            dense.compute(prepared, answer, context) for answer in answers
        ]
        assert telemetry.recorder_allocations() == base, (
            "disabled telemetry must not allocate recorder objects"
        )

        telemetry.enable()
        enabled_values = [
            dense.compute(prepared, answer, context) for answer in answers
        ]
        telemetry.disable()

    assert disabled_values == enabled_values, "telemetry must not perturb the DP"
    for got, expected in zip(disabled_values, want):
        assert dense.matches(got, expected, prepared.is_exact())


def test_enabled_streaming_run_matches_disabled() -> None:
    from repro.automata.regex import regex_to_dfa
    from repro.markov.builders import homogeneous
    from repro.runtime.incremental import StreamingEvaluator
    from repro.transducers.library import accept_filter

    def run() -> dict:
        sequence = homogeneous(
            {"a": 0.5, "b": 0.5},
            {"a": {"a": 0.25, "b": 0.75}, "b": {"a": 0.5, "b": 0.5}},
            6,
        )
        query = accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", "ab"))
        evaluator = StreamingEvaluator(query, sequence)
        return evaluator.append({"a": {"a": 1.0}, "b": {"b": 1.0}})

    disabled = run()
    telemetry.enable()
    enabled = run()
    snap = telemetry.snapshot()
    telemetry.disable()
    assert disabled == enabled
    assert snap["histograms"]["runtime.append.seconds"]["count"] > 0


# ---------------------------------------------------------------------------
# Instrumentation lands where it should
# ---------------------------------------------------------------------------


def test_plan_cache_telemetry_counters() -> None:
    from repro.runtime.cache import PlanCache

    registry = telemetry.enable()
    cache = PlanCache(capacity=1)
    q1 = room_change_transducer()
    cache.get(q1)
    cache.get(q1)
    assert registry.counter_value("runtime.plan_cache.hits") == 1
    assert registry.counter_value("runtime.plan_cache.misses") == 1


def test_pool_serial_batch_telemetry() -> None:
    from repro.parallel import WorkerPool

    registry = telemetry.enable()
    sequence = hospital_sequence(exact=False)
    with WorkerPool(1) as pool:
        pool.batch_top_k(room_change_transducer(), {"s": sequence}, 2)
    snap = registry.snapshot()
    assert snap["counters"]["parallel.serial_batches"] == 1
    assert snap["counters"]["parallel.streams"] == 1
    assert snap["histograms"]["parallel.chunk.seconds"]["count"] == 1
    # the serial path runs through the worker-side cache, so its delta shows
    assert (
        snap["counters"]["parallel.worker_cache.hits"]
        + snap["counters"]["parallel.worker_cache.misses"]
        >= 1
    )


def test_verify_telemetry_spans_and_counters() -> None:
    from repro.oracle.harness import verify

    registry = telemetry.enable()
    report = verify(seed=3, max_rounds=2, classes=("deterministic",))
    snap = registry.snapshot()
    assert report.instances == snap["counters"]["oracle.instances"]
    assert snap["spans"]["verify"]["count"] == 1
    assert snap["spans"]["verify/instance"]["count"] == report.instances
    assert snap["gauges"]["oracle.cases_per_second"] > 0


# ---------------------------------------------------------------------------
# CLI: --telemetry and `repro stats`
# ---------------------------------------------------------------------------


@pytest.fixture
def files(tmp_path):
    seq_path = tmp_path / "mu.json"
    query_path = tmp_path / "query.json"
    write_sequence(hospital_sequence(), seq_path)
    write_query(room_change_transducer(), query_path)
    return str(seq_path), str(query_path)


def test_cli_plan_telemetry_and_stats(files, tmp_path, capsys) -> None:
    seq, query = files
    snap_path = str(tmp_path / "plan.ndjson")
    assert (
        main(
            ["plan", "--query", query, "--sequence", seq, "--telemetry", snap_path]
        )
        == 0
    )
    assert not telemetry.enabled()
    capsys.readouterr()
    assert main(["stats", snap_path]) == 0
    out = capsys.readouterr().out
    # Whether this resolves to a hit or a miss depends on what earlier
    # tests left in the process-default plan cache; either way the
    # lookup itself must be on record.
    assert "runtime.plan_cache" in out


def test_cli_batch_telemetry(files, tmp_path, capsys) -> None:
    seq, query = files
    snap_path = str(tmp_path / "batch.json")
    assert (
        main(
            [
                "batch",
                "--query", query,
                "--sequence", seq,
                "--workers", "1",
                "--telemetry", snap_path,
            ]
        )
        == 0
    )
    snapshot = telemetry.load_snapshot(snap_path)
    assert snapshot["counters"]["parallel.batches"] == 1


def test_cli_verify_telemetry(tmp_path, capsys) -> None:
    snap_path = str(tmp_path / "verify.ndjson")
    assert (
        main(
            [
                "verify",
                "--max-rounds", "2",
                "--classes", "deterministic",
                "--telemetry", snap_path,
            ]
        )
        == 0
    )
    snapshot = telemetry.load_snapshot(snap_path)
    assert snapshot["counters"]["oracle.instances"] >= 2
    capsys.readouterr()
    assert main(["stats", snap_path]) == 0
    assert "oracle.instances" in capsys.readouterr().out


def test_cli_stats_missing_file_is_an_error(tmp_path, capsys) -> None:
    assert main(["stats", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err
