"""The regex compiler, cross-checked against Python's re module."""

from __future__ import annotations

import itertools
import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RegexSyntaxError
from repro.automata.regex import regex_to_dfa, regex_to_nfa

PATTERNS = [
    "",
    "a",
    "ab",
    "a|b",
    "a*",
    "a+",
    "a?",
    "(ab)*",
    "(a|b)*abb",
    "a*b|c",
    "[ab]c",
    "[a-c]*",
    "[^a]",
    "[^ab]*c",
    ".*b",
    "a.c",
    "(a|bc)+",
    "((a)|(b))?c",
    "a{3}",
    "a{2,}",
    "(ab){1,2}",
    "a{0,2}b",
    "(a|b){2,3}",
]


def strings(alphabet: str, max_length: int):
    for length in range(max_length + 1):
        for tup in itertools.product(alphabet, repeat=length):
            yield "".join(tup)


@pytest.mark.parametrize("pattern", PATTERNS)
def test_against_re_fullmatch(pattern: str) -> None:
    alphabet = "abc"
    nfa = regex_to_nfa(pattern, alphabet)
    compiled = re.compile(pattern)
    for string in strings(alphabet, 5):
        expected = compiled.fullmatch(string) is not None
        assert nfa.accepts(string) == expected, (pattern, string)


@pytest.mark.parametrize("pattern", PATTERNS)
def test_dfa_matches_nfa(pattern: str) -> None:
    alphabet = "abc"
    nfa = regex_to_nfa(pattern, alphabet)
    dfa = regex_to_dfa(pattern, alphabet)
    for string in strings(alphabet, 4):
        assert dfa.accepts(string) == nfa.accepts(string)


def test_escapes() -> None:
    nfa = regex_to_nfa(r"\*\+", alphabet="*+")
    assert nfa.accepts("*+")
    assert not nfa.accepts("**")


def test_default_alphabet_is_pattern_literals() -> None:
    nfa = regex_to_nfa("ab|ba")
    assert nfa.alphabet == frozenset("ab")


def test_dot_respects_explicit_alphabet() -> None:
    nfa = regex_to_nfa(".", "xyz")
    assert nfa.accepts("x")
    assert nfa.accepts("z")
    assert not nfa.accepts("xx")


def test_bounded_repetition_semantics() -> None:
    nfa = regex_to_nfa("a{2,4}", "ab")
    assert not nfa.accepts("a")
    assert nfa.accepts("aa")
    assert nfa.accepts("aaa")
    assert nfa.accepts("aaaa")
    assert not nfa.accepts("aaaaa")
    zero = regex_to_nfa("a{0,1}", "ab")
    assert zero.accepts("")
    assert zero.accepts("a")
    unbounded = regex_to_nfa("a{2,}", "ab")
    assert unbounded.accepts("a" * 7)
    assert not unbounded.accepts("a")


@pytest.mark.parametrize(
    "bad",
    [
        "(",
        ")",
        "(a",
        "a)",
        "*",
        "a**b(",
        "[ab",
        "a\\",
        "[a\\",
        "[b-a]",
        "a{",
        "a{2",
        "a{2,1}",
        "a{x}",
    ],
)
def test_syntax_errors(bad: str) -> None:
    with pytest.raises(RegexSyntaxError):
        regex_to_nfa(bad, "ab")


def test_class_with_leading_bracket_char() -> None:
    # ']' right after '[' is a literal member.
    nfa = regex_to_nfa("[]a]", alphabet="]a")
    assert nfa.accepts("]")
    assert nfa.accepts("a")


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_random_patterns_against_re(data) -> None:
    """Generate random small regexes and compare with re.fullmatch."""
    alphabet = "ab"

    def gen(depth: int) -> str:
        choices = ["lit", "lit", "concat", "alt", "star"]
        kind = data.draw(st.sampled_from(choices if depth < 3 else ["lit"]))
        if kind == "lit":
            return data.draw(st.sampled_from(["a", "b", "(a|b)"]))
        if kind == "concat":
            return gen(depth + 1) + gen(depth + 1)
        if kind == "alt":
            return f"({gen(depth + 1)}|{gen(depth + 1)})"
        return f"({gen(depth + 1)})*"

    pattern = gen(0)
    nfa = regex_to_nfa(pattern, alphabet)
    compiled = re.compile(pattern)
    for string in strings(alphabet, 4):
        assert nfa.accepts(string) == (compiled.fullmatch(string) is not None)
