"""JSON serialization round-trips."""

from __future__ import annotations

import json
import math
import random
from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.markov.builders import random_sequence
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.io.json_format import (
    dumps_query,
    dumps_sequence,
    loads_query,
    loads_sequence,
    read_query,
    read_sequence,
    write_query,
    write_sequence,
)
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.confidence.deterministic import confidence_deterministic


def test_sequence_roundtrip_exact() -> None:
    mu = hospital_sequence()
    text = dumps_sequence(mu)
    back = loads_sequence(text)
    assert back.symbols == mu.symbols
    assert back.length == mu.length
    for world, prob in mu.worlds():
        assert back.prob_of(world) == prob
        assert isinstance(back.prob_of(world), Fraction)


def test_sequence_roundtrip_float() -> None:
    mu = random_sequence("abc", 4, random.Random(1))
    back = loads_sequence(dumps_sequence(mu))
    for world, prob in mu.worlds():
        assert math.isclose(back.prob_of(world), prob, abs_tol=1e-12)


def test_sequence_files(tmp_path) -> None:
    mu = hospital_sequence()
    path = tmp_path / "mu.json"
    write_sequence(mu, path)
    back = read_sequence(path)
    assert back.prob_of(("r1a", "la", "la", "r1a", "r2a")) == Fraction("0.3969")


def test_transducer_roundtrip_preserves_semantics() -> None:
    mu = hospital_sequence()
    query = room_change_transducer()
    back = loads_query(dumps_query(query))
    assert back.is_deterministic()
    assert confidence_deterministic(mu, back, ("1", "2")) == Fraction("0.4038")
    for world, _p in mu.worlds():
        assert back.transduce(world) == query.transduce(world)


def test_sprojector_roundtrip(tmp_path) -> None:
    alphabet = ("a", "b")
    projector = SProjector(
        sigma_star(alphabet), regex_to_dfa("a+", alphabet), regex_to_dfa("b*", alphabet)
    )
    path = tmp_path / "query.json"
    write_query(projector, path)
    back = read_query(path)
    assert isinstance(back, SProjector)
    assert not isinstance(back, IndexedSProjector)
    for string in (("a",), ("a", "b"), ("b", "a"), ("b", "b")):
        assert back.transduce(string) == projector.transduce(string)


def test_indexed_sprojector_roundtrip() -> None:
    alphabet = ("a", "b")
    projector = IndexedSProjector(
        sigma_star(alphabet), regex_to_dfa("a", alphabet), sigma_star(alphabet)
    )
    back = loads_query(dumps_query(projector))
    assert isinstance(back, IndexedSProjector)
    assert back.transduce(("a", "b", "a")) == projector.transduce(("a", "b", "a"))


def test_bad_documents_rejected() -> None:
    with pytest.raises(ReproError):
        loads_sequence(json.dumps({"type": "nope"}))
    with pytest.raises(ReproError):
        loads_query(json.dumps({"type": "nope"}))
    with pytest.raises(ReproError):
        loads_sequence(
            json.dumps(
                {
                    "type": "markov_sequence",
                    "symbols": ["a"],
                    "initial": {"a": "1/0"},
                    "transitions": [],
                }
            )
        )


def test_rational_literals() -> None:
    document = {
        "type": "markov_sequence",
        "symbols": ["a", "b"],
        "initial": {"a": "1/3", "b": "2/3"},
        "transitions": [],
    }
    mu = loads_sequence(json.dumps(document))
    assert mu.prob_of(("a",)) == Fraction(1, 3)
