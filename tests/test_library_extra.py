"""The extra canonical transducers: change detector, run-length encoder."""

from __future__ import annotations

import itertools
import math
import random

import pytest

from repro.errors import InvalidTransducerError
from repro.transducers.library import change_detector, run_length_encoder
from repro.confidence.brute_force import brute_force_answers
from repro.confidence.deterministic import confidence_deterministic

from tests.conftest import make_sequence


def collapse_runs(string) -> tuple:
    out = []
    for symbol in string:
        if not out or out[-1] != symbol:
            out.append(symbol)
    return tuple(out)


def test_change_detector_semantics() -> None:
    t = change_detector("ab")
    for string in itertools.product("ab", repeat=5):
        assert t.transduce_deterministic(string) == collapse_runs(string), string


def test_change_detector_class() -> None:
    t = change_detector("abc")
    assert t.is_deterministic()
    assert not t.is_selective()
    assert not t.is_uniform()
    assert t.is_projector()  # emissions are the input symbol or epsilon


def test_change_detector_confidence() -> None:
    rng = random.Random(3)
    sequence = make_sequence("ab", 4, rng)
    t = change_detector("ab")
    for answer, confidence in brute_force_answers(sequence, t).items():
        assert math.isclose(
            confidence_deterministic(sequence, t, answer), confidence, abs_tol=1e-9
        )


def reference_rle(string, max_run: int) -> tuple:
    """Flushed runs only (the final run is not emitted)."""
    out = []
    current, count = None, 0
    for symbol in string:
        if symbol == current and count < max_run:
            count += 1
        else:
            if current is not None:
                out.append((current, count))
            current, count = symbol, 1
    return tuple(out)


def test_run_length_encoder_semantics() -> None:
    t = run_length_encoder("ab", max_run=3)
    for string in itertools.product("ab", repeat=5):
        assert t.transduce_deterministic(string) == reference_rle(string, 3), string


def test_run_length_encoder_cap() -> None:
    t = run_length_encoder("a", max_run=2)
    # aaaa -> runs aa|aa; the second is unflushed.
    assert t.transduce_deterministic(("a",) * 4) == (("a", 2),)
    assert t.transduce_deterministic(("a",) * 5) == (("a", 2), ("a", 2))


def test_run_length_encoder_validation() -> None:
    with pytest.raises(InvalidTransducerError):
        run_length_encoder("ab", max_run=0)


def test_run_length_encoder_enumeration() -> None:
    from repro.enumeration.unranked import enumerate_unranked

    rng = random.Random(6)
    sequence = make_sequence("ab", 4, rng)
    t = run_length_encoder("ab", max_run=2)
    produced = set(enumerate_unranked(sequence, t))
    assert produced == set(brute_force_answers(sequence, t))
