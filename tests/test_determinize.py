"""Subset construction: eager and lazy."""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.automata.determinize import LazyDeterminizer, determinize

from tests.conftest import make_random_nfa


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_determinize_preserves_language(seed: int) -> None:
    rng = random.Random(seed)
    nfa = make_random_nfa("ab", 4, rng)
    dfa = determinize(nfa)
    assert dfa.to_nfa().is_deterministic()
    for length in range(5):
        for string in itertools.product("ab", repeat=length):
            assert dfa.accepts(string) == nfa.accepts(string)


def test_determinize_initial_and_sink(rng: random.Random) -> None:
    nfa = make_random_nfa("ab", 3, rng)
    dfa = determinize(nfa)
    assert dfa.initial == frozenset({nfa.initial})
    # Totality: every state has both transitions defined.
    for state in dfa.states:
        for symbol in "ab":
            dfa.step(state, symbol)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000), data=st.data())
def test_lazy_matches_eager(seed: int, data) -> None:
    rng = random.Random(seed)
    nfa = make_random_nfa("ab", 4, rng)
    lazy = LazyDeterminizer(nfa)
    eager = determinize(nfa)
    string = data.draw(st.text(alphabet="ab", max_size=6))
    subset = lazy.run(string)
    assert subset == eager.run(string)
    assert lazy.is_accepting(subset) == eager.accepts(string)


def test_lazy_materializes_incrementally(rng: random.Random) -> None:
    nfa = make_random_nfa("ab", 4, rng)
    lazy = LazyDeterminizer(nfa)
    assert lazy.num_materialized == 0
    lazy.run("ab")
    first = lazy.num_materialized
    assert first >= 1
    lazy.run("ab")  # cached
    assert lazy.num_materialized == first
