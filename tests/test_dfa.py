"""DFA totality, runs, and helpers."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import InvalidAutomatonError
from repro.automata.dfa import DFA, SINK

from tests.conftest import make_random_dfa


@pytest.fixture
def even_as() -> DFA:
    """DFA for an even number of 'a's over {a, b}."""
    return DFA(
        "ab",
        {"even", "odd"},
        "even",
        {"even"},
        {
            ("even", "a"): "odd",
            ("odd", "a"): "even",
            ("even", "b"): "even",
            ("odd", "b"): "odd",
        },
    )


def test_accepts(even_as: DFA) -> None:
    assert even_as.accepts("")
    assert even_as.accepts("aa")
    assert even_as.accepts("bab" + "a")
    assert not even_as.accepts("a")


def test_run_and_trace(even_as: DFA) -> None:
    assert even_as.run("ab") == "odd"
    assert even_as.trace("ab") == ["even", "odd", "odd"]
    assert even_as.run("b", start="odd") == "odd"


def test_totality_enforced() -> None:
    with pytest.raises(InvalidAutomatonError):
        DFA("ab", {0}, 0, {0}, {(0, "a"): 0})  # missing (0, 'b')


def test_from_partial_adds_sink() -> None:
    dfa = DFA.from_partial("ab", {0, 1}, 0, {1}, {(0, "a"): 1})
    assert SINK in dfa.states
    assert dfa.accepts("a")
    assert not dfa.accepts("ab")
    assert not dfa.accepts("b")
    assert dfa.step(SINK, "a") == SINK


def test_from_partial_no_sink_when_total() -> None:
    dfa = DFA.from_partial("a", {0}, 0, {0}, {(0, "a"): 0})
    assert SINK not in dfa.states


def test_to_nfa_equivalence(even_as: DFA, rng: random.Random) -> None:
    nfa = even_as.to_nfa()
    for length in range(5):
        for string in itertools.product("ab", repeat=length):
            assert nfa.accepts(string) == even_as.accepts(string)


def test_trim_keeps_language(rng: random.Random) -> None:
    dfa = make_random_dfa("ab", 5, rng)
    trimmed = dfa.trim()
    assert trimmed.states <= dfa.states
    for length in range(5):
        for string in itertools.product("ab", repeat=length):
            assert trimmed.accepts(string) == dfa.accepts(string)


def test_renamed(even_as: DFA) -> None:
    renamed = even_as.renamed("p")
    for length in range(4):
        for string in itertools.product("ab", repeat=length):
            assert renamed.accepts(string) == even_as.accepts(string)


def test_accepts_everything_and_is_empty() -> None:
    all_dfa = DFA("a", {0}, 0, {0}, {(0, "a"): 0})
    assert all_dfa.accepts_everything()
    assert not all_dfa.is_empty()
    none_dfa = DFA("a", {0}, 0, set(), {(0, "a"): 0})
    assert none_dfa.is_empty()
    assert not none_dfa.accepts_everything()


def test_unknown_state_in_delta_rejected() -> None:
    with pytest.raises(InvalidAutomatonError):
        DFA("a", {0}, 0, {0}, {(0, "a"): 1})
