"""Shared test fixtures.

The random-instance factories historically defined here now live in
:mod:`repro.oracle.generators`, where the conformance harness (and the
benchmarks) can import them without reaching into the test tree. This
module re-exports them so ``from tests.conftest import make_...`` keeps
working across the suite.
"""

from __future__ import annotations

import random

import pytest

from repro.oracle.generators import (  # noqa: F401 - re-exported for tests
    make_fraction_row,
    make_fraction_sequence,
    make_fraction_timestep,
    make_random_deterministic_transducer,
    make_random_dfa,
    make_random_nfa,
    make_random_uniform_deterministic_transducer,
    make_random_uniform_transducer,
    make_sequence,
)

__all__ = [
    "make_fraction_row",
    "make_fraction_sequence",
    "make_fraction_timestep",
    "make_random_deterministic_transducer",
    "make_random_dfa",
    "make_random_nfa",
    "make_random_uniform_deterministic_transducer",
    "make_random_uniform_transducer",
    "make_sequence",
    "rng",
]


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture(autouse=True)
def _telemetry_off_between_tests():
    """Telemetry is module-global state; never let it leak across tests."""
    from repro import telemetry

    yield
    telemetry.disable()
