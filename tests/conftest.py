"""Shared test fixtures and random-instance factories.

The factories build small random objects (DFAs, NFAs, transducers, Markov
sequences) whose brute-force semantics stay cheap, so polynomial
algorithms can be cross-checked against exhaustive oracles throughout the
suite.
"""

from __future__ import annotations

import random

import pytest

from repro.markov.builders import random_sequence
from repro.markov.sequence import MarkovSequence
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.transducers.transducer import Transducer


def make_random_dfa(alphabet, num_states: int, rng: random.Random, accept_prob: float = 0.4) -> DFA:
    """A random total DFA over ``alphabet``."""
    states = [f"q{i}" for i in range(num_states)]
    delta = {
        (state, symbol): rng.choice(states) for state in states for symbol in alphabet
    }
    accepting = {state for state in states if rng.random() < accept_prob}
    if not accepting:
        accepting = {rng.choice(states)}
    return DFA(alphabet, states, states[0], accepting, delta)


def make_random_nfa(
    alphabet, num_states: int, rng: random.Random, density: float = 0.35
) -> NFA:
    """A random NFA: each (state, symbol, state) triple present w.p. density."""
    states = [f"q{i}" for i in range(num_states)]
    delta: dict = {}
    for state in states:
        for symbol in alphabet:
            targets = {t for t in states if rng.random() < density}
            if targets:
                delta[(state, symbol)] = targets
    accepting = {state for state in states if rng.random() < 0.4}
    if not accepting:
        accepting = {states[-1]}
    return NFA(alphabet, states, states[0], accepting, delta)


def make_random_deterministic_transducer(
    alphabet, num_states: int, rng: random.Random, out_alphabet=("x", "y")
) -> Transducer:
    """A random deterministic transducer with emissions of length 0-2."""
    dfa = make_random_dfa(alphabet, num_states, rng)
    omega = {}
    for state, symbol, target in dfa.transitions():
        length = rng.choice((0, 1, 1, 2))
        omega[(state, symbol, target)] = tuple(
            rng.choice(out_alphabet) for _ in range(length)
        )
    # Randomly make it selective or not.
    nfa = dfa.to_nfa()
    if rng.random() < 0.5:
        nfa = NFA(nfa.alphabet, nfa.states, nfa.initial, nfa.states, nfa.delta_dict())
    return Transducer(nfa, omega)


def make_random_uniform_transducer(
    alphabet, num_states: int, rng: random.Random, k: int = 1, out_alphabet=("x", "y")
) -> Transducer:
    """A random (generally nondeterministic) k-uniform transducer."""
    nfa = make_random_nfa(alphabet, num_states, rng)
    omega = {}
    for state, symbol, target in nfa.transitions():
        omega[(state, symbol, target)] = tuple(
            rng.choice(out_alphabet) for _ in range(k)
        )
    return Transducer(nfa, omega)


def make_sequence(alphabet, length: int, rng: random.Random, branching: int = 2) -> MarkovSequence:
    """A small random Markov sequence with sparse rows."""
    return random_sequence(tuple(alphabet), length, rng, branching=branching)


def make_fraction_row(alphabet, rng: random.Random) -> dict:
    """A random exactly-stochastic distribution over ``alphabet``."""
    from fractions import Fraction

    weights = [rng.randint(0, 3) for _ in alphabet]
    if not any(weights):
        weights[rng.randrange(len(weights))] = 1
    total = sum(weights)
    return {
        symbol: Fraction(weight, total)
        for symbol, weight in zip(alphabet, weights)
        if weight
    }


def make_fraction_timestep(alphabet, rng: random.Random) -> dict:
    """A random transition function with exact ``Fraction`` rows."""
    return {source: make_fraction_row(alphabet, rng) for source in alphabet}


def make_fraction_sequence(alphabet, length: int, rng: random.Random) -> MarkovSequence:
    """A random Markov sequence with exact ``Fraction`` probabilities."""
    alphabet = tuple(alphabet)
    return MarkovSequence(
        alphabet,
        make_fraction_row(alphabet, rng),
        [make_fraction_timestep(alphabet, rng) for _ in range(length - 1)],
    )


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded RNG per test."""
    return random.Random(0xC0FFEE)
