"""The worker pool: chunking, fan-out, deterministic merges, rewiring."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.cli import main
from repro.io.json_format import write_query, write_sequence
from repro.lahar.database import MarkovStreamDatabase
from repro.parallel import (
    WorkerPool,
    auto_chunk_size,
    chunk_corpus,
    parallel_batch_confidence,
    parallel_batch_top_k,
    parallel_evaluate_many,
)
from repro.runtime.executor import batch_top_k, plan_confidence, run_evaluate
from repro.runtime.plan import QueryPlan
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import SProjector

from tests.conftest import make_fraction_sequence

ALPHABET = "ab"


def collapse():
    return collapse_transducer({"a": "X", "b": "Y"})


def projector():
    return SProjector(
        sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET)
    )


def corpus_of(count: int, length: int = 4, seed: int = 5):
    rng = random.Random(seed)
    return {
        f"s{i:02d}": make_fraction_sequence(ALPHABET, length, rng)
        for i in range(count)
    }


def as_tuples(pairs):
    return [(n, a.output, a.confidence, a.score, a.order) for n, a in pairs]


# ---------------------------------------------------------------------------
# Chunking
# ---------------------------------------------------------------------------


def test_auto_chunk_size_targets_oversubscription() -> None:
    assert auto_chunk_size(0, 4) == 1
    assert auto_chunk_size(1, 4) == 1
    assert auto_chunk_size(64, 4) == 4  # 16 chunks for 4 workers
    assert auto_chunk_size(3, 8) == 1


def test_chunk_corpus_preserves_order_and_names() -> None:
    corpus = corpus_of(7)
    chunks = chunk_corpus(corpus, 3, workers=2)
    assert [len(chunk) for chunk in chunks] == [3, 3, 1]
    flattened = [name for chunk in chunks for name, _sequence in chunk]
    assert flattened == list(corpus)


def test_chunk_corpus_rejects_bad_size() -> None:
    with pytest.raises(ReproError):
        chunk_corpus(corpus_of(2), 0, workers=2)


def test_chunk_by_shard_groups_and_validates() -> None:
    from repro.parallel import chunk_by_shard

    corpus = corpus_of(6)
    shard = lambda name: int(name[1:]) % 3  # noqa: E731 - tiny test router
    chunks = chunk_by_shard(corpus, shard, 3)
    assert len(chunks) == 3
    for chunk in chunks:
        owners = {shard(name) for name, _sequence in chunk}
        assert len(owners) == 1  # one chunk never mixes shards
    flattened = sorted(name for chunk in chunks for name, _sequence in chunk)
    assert flattened == sorted(corpus)
    # empty shards produce no chunk at all
    assert len(chunk_by_shard(corpus, shard, 100)) == 3
    with pytest.raises(ReproError):
        chunk_by_shard(corpus, lambda name: 7, 3)


def test_pool_routes_caller_chunks(monkeypatch) -> None:
    """The chunks= override feeds the pool verbatim — shard-grouped
    batches reach workers exactly as the router grouped them."""
    from repro.parallel import chunk_by_shard

    corpus = corpus_of(5)
    query = collapse()
    shard = lambda name: int(name[1:]) % 2  # noqa: E731 - tiny test router
    chunks = chunk_by_shard(corpus, shard, 2)
    serial = batch_top_k(QueryPlan.build(query), corpus, 4, order="emax")
    with WorkerPool(2) as pool:
        merged = pool.batch_top_k(query, corpus, 4, order="emax", chunks=chunks)
        assert pool.stats.tasks == len(chunks)
    assert as_tuples(merged) == as_tuples(serial)


# ---------------------------------------------------------------------------
# Pool results == serial results
# ---------------------------------------------------------------------------


def test_pool_batch_top_k_matches_serial() -> None:
    corpus = corpus_of(6)
    query = collapse()
    serial = batch_top_k(QueryPlan.build(query), corpus, 5, order="emax")
    with WorkerPool(2, chunk_size=2) as pool:
        merged = pool.batch_top_k(query, corpus, 5, order="emax")
        # Repeat through the same pool: same answer, warm worker caches.
        again = pool.batch_top_k(query, corpus, 5, order="emax")
    assert as_tuples(merged) == as_tuples(serial)
    assert as_tuples(again) == as_tuples(serial)


def test_pool_serial_mode_and_single_stream_skip_fanout() -> None:
    corpus = corpus_of(4)
    query = collapse()
    serial = batch_top_k(QueryPlan.build(query), corpus, 3)
    with WorkerPool(1) as pool:
        assert as_tuples(pool.batch_top_k(query, corpus, 3)) == as_tuples(serial)
        assert pool.stats.serial_batches == 1
        assert pool.stats.tasks == 0
    single = {"only": next(iter(corpus.values()))}
    with WorkerPool(4) as pool:
        pool.batch_top_k(query, single, 3)
        assert pool.stats.serial_batches == 1  # one stream: not worth shipping


def test_pool_evaluate_many_matches_run_evaluate() -> None:
    corpus = corpus_of(5, length=3)
    query = projector()
    plan = QueryPlan.build(query)
    expected = {
        name: [
            (a.output, a.confidence, a.score)
            for a in run_evaluate(plan, sequence, order="imax")
        ]
        for name, sequence in corpus.items()
    }
    with WorkerPool(2, chunk_size=2) as pool:
        produced = pool.evaluate_many(query, corpus, order="imax")
    assert list(produced) == list(corpus)  # corpus order, regardless of chunks
    assert {
        name: [(a.output, a.confidence, a.score) for a in answers]
        for name, answers in produced.items()
    } == expected


def test_pool_batch_confidence_exact_path() -> None:
    corpus = corpus_of(5, length=3)
    query = collapse()
    plan = QueryPlan.build(query)
    output = next(iter(run_evaluate(plan, next(iter(corpus.values()))))).output
    expected = {
        name: plan_confidence(plan, sequence, output)
        for name, sequence in corpus.items()
    }
    with WorkerPool(2, chunk_size=2) as pool:
        produced = pool.batch_confidence(query, corpus, output, vectorized=False)
    assert produced == expected  # exact Fractions survive the pool


def test_one_shot_helpers_match_serial() -> None:
    corpus = corpus_of(4, length=3)
    query = collapse()
    plan = QueryPlan.build(query)
    serial = batch_top_k(plan, corpus, 4, order="emax")
    assert as_tuples(
        parallel_batch_top_k(query, corpus, 4, workers=2, order="emax", chunk_size=1)
    ) == as_tuples(serial)
    produced = parallel_evaluate_many(query, corpus, workers=2, order="emax")
    assert list(produced) == list(corpus)
    output = serial[0][1].output
    confidences = parallel_batch_confidence(
        query, corpus, output, workers=2, vectorized=False
    )
    assert confidences == {
        name: plan_confidence(plan, sequence, output)
        for name, sequence in corpus.items()
    }


def test_pool_stats_account_chunks_and_streams() -> None:
    corpus = corpus_of(6)
    with WorkerPool(2, chunk_size=2) as pool:
        pool.batch_top_k(collapse(), corpus, 3)
        stats = pool.stats.as_dict()
    assert stats["batches"] == 1
    assert stats["tasks"] == 3 == stats["completed"] == stats["chunks"]
    assert stats["streams"] == 6
    assert stats["serial_estimate_seconds"] > 0
    assert stats["wall_seconds"] > 0
    assert stats["speedup_estimate"] is not None


def test_worker_count_validation() -> None:
    with pytest.raises(ReproError):
        WorkerPool(-1)
    with pytest.raises(ReproError):
        WorkerPool(2, max_retries=-1)


# ---------------------------------------------------------------------------
# Database rewiring
# ---------------------------------------------------------------------------


def test_database_top_k_across_workers_matches_serial() -> None:
    db = MarkovStreamDatabase()
    for name, sequence in corpus_of(5).items():
        db.register_stream(name, sequence)
    db.register_query("collapse", collapse())
    serial = db.top_k_across("collapse", 4)
    pooled = db.top_k_across("collapse", 4, workers=2)
    assert [(r.stream, r.answer) for r in pooled] == [
        (r.stream, r.answer) for r in serial
    ]
    with WorkerPool(2, chunk_size=2) as pool:
        held = db.top_k_across("collapse", 4, pool=pool)
        assert pool.stats.batches == 1
    assert [(r.stream, r.answer) for r in held] == [
        (r.stream, r.answer) for r in serial
    ]


def test_database_batch_confidence() -> None:
    db = MarkovStreamDatabase()
    corpus = corpus_of(4, length=3)
    for name, sequence in corpus.items():
        db.register_stream(name, sequence)
    query = collapse()
    plan = QueryPlan.build(query)
    output = next(iter(run_evaluate(plan, next(iter(corpus.values()))))).output
    values = db.batch_confidence(query, output, vectorized=False)
    assert values == {
        name: plan_confidence(plan, sequence, output)
        for name, sequence in corpus.items()
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def batch_files(tmp_path):
    query_path = tmp_path / "query.json"
    write_query(collapse(), query_path)
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    for name, sequence in corpus_of(3, length=3).items():
        write_sequence(sequence, corpus_dir / f"{name}.json")
    return str(query_path), str(corpus_dir)


def test_cli_batch_top_k(batch_files, capsys) -> None:
    query, corpus_dir = batch_files
    assert (
        main(
            [
                "batch",
                "--query", query,
                "--corpus", corpus_dir,
                "-k", "4",
                "--workers", "2",
                "--chunk-size", "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    answer_lines = [line for line in lines if line.startswith("s")]
    assert 3 <= len(answer_lines) <= 4  # every stream answers; merged cap is k
    assert all("score=" in line and "confidence=" in line for line in answer_lines)
    assert "pool stats:" in out and "serial_fallbacks=0" in out


def test_cli_batch_confidence_mode(batch_files, capsys) -> None:
    query, corpus_dir = batch_files
    assert (
        main(
            [
                "batch",
                "--query", query,
                "--corpus", corpus_dir,
                "--answer", "X",
                "--workers", "1",
                "--vectorized", "never",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    value_lines = [line for line in out.strip().splitlines() if line.startswith("s")]
    assert len(value_lines) == 3


def test_cli_batch_requires_streams(tmp_path, capsys) -> None:
    query_path = tmp_path / "query.json"
    write_query(collapse(), query_path)
    assert main(["batch", "--query", str(query_path)]) == 2
    assert "error:" in capsys.readouterr().err
