"""Language counting, sampling, and decision procedures."""

from __future__ import annotations

import itertools
import math
import random

import pytest

from repro.errors import ReproError
from repro.automata.properties import (
    count_words,
    count_words_per_length,
    includes,
    is_universal,
    sample_word,
    shortest_word,
)
from repro.automata.regex import regex_to_dfa, regex_to_nfa

from tests.conftest import make_random_dfa, make_random_nfa


def brute_count(automaton, alphabet: str, length: int) -> int:
    return sum(
        1
        for word in itertools.product(alphabet, repeat=length)
        if automaton.accepts(word)
    )


@pytest.mark.parametrize("pattern", ["a*", "a*b", "(ab)*", ".*b.*", "a|b"])
def test_count_words_matches_brute(pattern: str) -> None:
    dfa = regex_to_dfa(pattern, "ab")
    for length in range(6):
        assert count_words(dfa, length) == brute_count(dfa, "ab", length)


def test_count_words_nfa(rng: random.Random) -> None:
    for _ in range(5):
        nfa = make_random_nfa("ab", 3, rng)
        for length in range(5):
            assert count_words(nfa, length) == brute_count(nfa, "ab", length)


def test_count_words_per_length() -> None:
    dfa = regex_to_dfa("a*b", "ab")
    profile = count_words_per_length(dfa, 5)
    assert profile == [count_words(dfa, i) for i in range(6)]
    assert profile[0] == 0 and profile[1] == 1  # only 'b' at length 1


def test_count_negative_length_rejected() -> None:
    with pytest.raises(ReproError):
        count_words(regex_to_dfa("a", "a"), -1)


def test_sample_word_uniform() -> None:
    dfa = regex_to_dfa(".*b", "ab")  # 2^(n-1) words of length n
    rng = random.Random(0)
    length = 4
    counts: dict = {}
    for _ in range(4000):
        word = sample_word(dfa, length, rng)
        assert dfa.accepts(word)
        counts[word] = counts.get(word, 0) + 1
    support = 2 ** (length - 1)
    assert len(counts) == support
    expected = 4000 / support
    for count in counts.values():
        assert abs(count - expected) < expected  # loose uniformity check


def test_sample_word_empty_language() -> None:
    dfa = regex_to_dfa("aaa", "ab")
    with pytest.raises(ReproError):
        sample_word(dfa, 2, random.Random(0))


def test_is_universal() -> None:
    assert is_universal(regex_to_dfa(".*", "ab"))
    assert not is_universal(regex_to_dfa("a.*", "ab"))


def test_includes() -> None:
    star = regex_to_dfa(".*", "ab")
    ends_b = regex_to_dfa(".*b", "ab")
    assert includes(star, ends_b)
    assert not includes(ends_b, star)
    assert includes(ends_b, regex_to_dfa(".*ab", "ab"))


def test_shortest_word() -> None:
    assert shortest_word(regex_to_dfa("a*b", "ab")) == ("b",)
    assert shortest_word(regex_to_dfa(".*", "ab")) == ()
    assert shortest_word(regex_to_dfa("aaa", "ab")) == ("a", "a", "a")
    assert shortest_word(regex_to_nfa("ab|b", "ab")) == ("b",)
    # Empty language.
    empty = regex_to_dfa("a", "ab")
    from repro.automata.operations import difference

    assert shortest_word(difference(empty, empty)) is None


def test_counting_connects_to_uniform_confidence(rng: random.Random) -> None:
    """count_words agrees with the Prop 4.7 reduction's recovered counts."""
    from repro.confidence.uniform_subset import confidence_uniform
    from repro.hardness.counting import exact_count_via_confidence, nfa_counting_instance

    nfa = make_random_nfa("ab", 3, rng)
    for n in (2, 3, 4):
        instance = nfa_counting_instance(nfa, n)
        confidence = confidence_uniform(
            instance.sequence, instance.transducer, instance.answer
        )
        assert exact_count_via_confidence(instance, confidence) == count_words(nfa, n)
