"""Snapshot codec and files: bit-exact round-trips, atomic replacement.

The codec tests pin the property recovery stands on: a decoded frontier
key is ``==`` (and hashes equal) to the original, including Fractions,
nested tuples, and subset-construction frozensets.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.errors import ReproError
from repro.io.json_format import query_to_dict, sequence_to_dict
from repro.store.codec import (
    decode_frontier,
    decode_term,
    decode_transition,
    encode_frontier,
    encode_term,
    encode_transition,
)
from repro.store.snapshot import (
    EvaluatorState,
    StandingState,
    StoreState,
    delete_snapshots_before,
    latest_snapshot_lsn,
    load_snapshot,
    snapshot_paths,
    state_from_dict,
    state_to_dict,
    write_snapshot,
)
from repro.transducers.library import accept_filter
from repro.transducers.sprojector import SProjector

from tests.conftest import make_fraction_sequence

ALPHABET = "ab"


TERMS = [
    None,
    True,
    False,
    0,
    -17,
    "state",
    "",
    2.5,
    Fraction(1, 3),
    Fraction(-7, 2),
    (),
    ("q0", 3, ("nested", Fraction(2, 5))),
    frozenset(),
    frozenset({"q1", "q2"}),
    frozenset({("a", 1), ("a", 2)}),
    ("mixed", frozenset({None, True, 0}), (frozenset({"x"}),)),
]


@pytest.mark.parametrize("term", TERMS, ids=[repr(t)[:40] for t in TERMS])
def test_term_round_trip_is_identical(term) -> None:
    decoded = decode_term(encode_term(term))
    assert decoded == term
    assert type(decoded) is type(term)
    assert hash(decoded) == hash(term)


def test_bool_and_int_stay_distinct() -> None:
    # bool is an int subclass; a frontier keyed by True must not come
    # back keyed by 1
    assert encode_term(True) != encode_term(1)
    assert decode_term(encode_term(True)) is True
    assert decode_term(encode_term(1)) == 1
    assert not isinstance(decode_term(encode_term(1)), bool)


def test_equal_frozensets_encode_identically() -> None:
    left = frozenset({("a", 1), ("b", 2), ("c", 3)})
    right = frozenset(reversed(sorted(left)))
    assert encode_term(left) == encode_term(right)


def test_unencodable_term_refuses() -> None:
    with pytest.raises(ReproError, match="cannot snapshot"):
        encode_term(object())


def test_malformed_term_documents_refuse() -> None:
    for document in (None, [], ["?"], {"tag": "s"}):
        with pytest.raises(ReproError):
            decode_term(document)


def test_frontier_round_trip_exact() -> None:
    frontier = {
        ("n1", frozenset({"q0", "q1"}), ()): Fraction(1, 7),
        ("n2", frozenset({"q0"}), ("out",)): Fraction(3, 4),
        ("n3", frozenset(), ()): 1,
    }
    assert decode_frontier(encode_frontier(frontier)) == frontier


def test_frontier_encoding_is_order_independent() -> None:
    cells = {("a",): Fraction(1, 2), ("b",): Fraction(1, 3)}
    reordered = dict(reversed(list(cells.items())))
    assert encode_frontier(cells) == encode_frontier(reordered)


def test_malformed_frontier_documents_refuse() -> None:
    for document in ({"cell": 1}, [["s", "x"]], [[["s", "x"], "1/2", "extra"]]):
        with pytest.raises(ReproError):
            decode_frontier(document)


def test_transition_round_trip_exact(rng) -> None:
    transition = {
        "a": {"a": Fraction(1, 3), "b": Fraction(2, 3)},
        "b": {"b": 1},
    }
    assert decode_transition(encode_transition(transition)) == transition


def test_malformed_transition_refuses() -> None:
    with pytest.raises(ReproError, match="malformed transition"):
        decode_transition(["not", "a", "dict"])
    with pytest.raises(ReproError, match="malformed transition"):
        decode_transition({"a": "not a row"})


def _query():
    return accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", ALPHABET))


def _pattern_query():
    alphabet = sigma_star(ALPHABET)
    return SProjector(alphabet, regex_to_dfa("ab", ALPHABET), alphabet)


def _state(rng) -> StoreState:
    sequence = make_fraction_sequence(ALPHABET, 3, rng)
    return StoreState(
        streams={"s": sequence},
        queries={"q": _query()},
        evaluators=[
            EvaluatorState(
                stream="s",
                query=_query(),
                length=3,
                frontier={("n", frozenset({"q0"}), ()): Fraction(2, 5)},
            )
        ],
        standing=[
            StandingState(
                name="watch",
                stream="s",
                kind="monitor",
                label="occurrence",
                query=_pattern_query(),
                output=(),
                threshold=Fraction(1, 2),
                rearm=Fraction(1, 4),
                value=Fraction(9, 16),
                armed=False,
                alerts_fired=2,
                monitor_length=3,
                monitor_layer={("n", "d0"): Fraction(9, 16)},
            )
        ],
    )


def test_state_document_round_trip(rng) -> None:
    state = _state(rng)
    document = state_to_dict(state)
    loaded = state_from_dict(document)
    assert sequence_to_dict(loaded.streams["s"]) == sequence_to_dict(
        state.streams["s"]
    )
    assert query_to_dict(loaded.queries["q"]) == query_to_dict(state.queries["q"])
    entry = loaded.evaluators[0]
    assert (entry.stream, entry.length) == ("s", 3)
    assert entry.frontier == state.evaluators[0].frontier
    standing = loaded.standing[0]
    original = state.standing[0]
    assert (standing.value, standing.armed, standing.alerts_fired) == (
        original.value,
        original.armed,
        original.alerts_fired,
    )
    assert standing.threshold == original.threshold
    assert standing.rearm == original.rearm
    assert standing.monitor_layer == original.monitor_layer
    assert standing.monitor_length == original.monitor_length


def test_state_from_dict_refuses_wrong_format(rng) -> None:
    with pytest.raises(ReproError, match="not a repro-store/1"):
        state_from_dict({"format": "something/else"})
    with pytest.raises(ReproError, match="malformed snapshot"):
        state_from_dict([1, 2, 3])
    document = state_to_dict(_state(rng))
    del document["standing"][0]["threshold"]
    with pytest.raises(ReproError, match="malformed snapshot"):
        state_from_dict(document)


def test_write_load_newest_wins(tmp_path, rng) -> None:
    snapdir = tmp_path / "snapshots"
    write_snapshot(snapdir, 5, StoreState())
    write_snapshot(snapdir, 12, _state(rng))
    assert latest_snapshot_lsn(snapdir) == 12
    lsn, state = load_snapshot(snapdir)
    assert lsn == 12
    assert list(state.streams) == ["s"]
    assert delete_snapshots_before(snapdir, 12) == 1
    assert [path.name for path in snapshot_paths(snapdir)] == [
        "0000000000000012.snap"
    ]


def test_write_snapshot_leaves_no_temp_file(tmp_path, rng) -> None:
    snapdir = tmp_path / "snapshots"
    write_snapshot(snapdir, 1, _state(rng))
    assert not list(snapdir.glob("*.tmp"))


def test_torn_snapshot_file_refuses_loudly(tmp_path) -> None:
    snapdir = tmp_path / "snapshots"
    write_snapshot(snapdir, 1, StoreState())
    path = snapshot_paths(snapdir)[0]
    path.write_text(path.read_text()[:10])
    with pytest.raises(ReproError, match="cannot load snapshot"):
        load_snapshot(snapdir)


def test_load_snapshot_empty_dir_is_none(tmp_path) -> None:
    assert load_snapshot(tmp_path / "nowhere") is None
    assert latest_snapshot_lsn(tmp_path / "nowhere") == 0
