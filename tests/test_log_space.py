"""Log-space confidence: stability on long sequences."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import InvalidTransducerError
from repro.markov.builders import iid, random_sequence
from repro.automata.nfa import NFA
from repro.automata.regex import regex_to_dfa
from repro.transducers.library import collapse_transducer
from repro.transducers.transducer import Transducer
from repro.confidence.deterministic import confidence_deterministic
from repro.confidence.log_space import (
    log_confidence_deterministic,
    log_language_probability,
)
from repro.confidence.language import language_probability

from tests.conftest import make_random_deterministic_transducer, make_sequence


def test_matches_linear_space_on_small_instances() -> None:
    rng = random.Random(4)
    for _ in range(5):
        sequence = make_sequence("ab", 5, rng)
        transducer = make_random_deterministic_transducer("ab", 3, rng)
        from repro.confidence.brute_force import brute_force_answers

        for output, confidence in brute_force_answers(sequence, transducer).items():
            log_value = log_confidence_deterministic(sequence, transducer, output)
            assert math.isclose(math.exp(log_value), confidence, rel_tol=1e-9)


def test_zero_confidence_is_neg_inf() -> None:
    sequence = iid({"a": 1.0, "b": 0.0}, 3)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    assert log_confidence_deterministic(sequence, transducer, ("Y",) * 3) == -math.inf


def test_survives_lengths_that_underflow_floats() -> None:
    """conf(X^n) = 2^-n underflows IEEE doubles for n = 2000; the linear
    DP returns exactly 0 while log space recovers -n ln 2."""
    n = 2000
    sequence = iid({"a": 0.5, "b": 0.5}, n)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    linear = confidence_deterministic(sequence, transducer, ("X",) * n)
    assert linear == 0.0  # underflow in linear space
    log_value = log_confidence_deterministic(sequence, transducer, ("X",) * n)
    assert math.isclose(log_value, n * math.log(0.5), rel_tol=1e-12)


def test_aggregate_stays_finite_when_worlds_underflow() -> None:
    """All 2^n worlds collapse to one answer of confidence 1: fine in both
    representations because the DP aggregates before underflowing."""
    n = 2500
    sequence = iid({"a": 0.5, "b": 0.5}, n)
    transducer = collapse_transducer({"a": "X", "b": "X"})
    assert confidence_deterministic(sequence, transducer, ("X",) * n) == pytest.approx(1.0)
    log_value = log_confidence_deterministic(sequence, transducer, ("X",) * n)
    assert math.isclose(log_value, 0.0, abs_tol=1e-6)


def test_partial_aggregate_on_long_sequence() -> None:
    n = 2000
    sequence = iid({"a": 0.5, "b": 0.5}, n)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    # conf(X^n) = 2^-n: exactly representable in log space.
    log_value = log_confidence_deterministic(sequence, transducer, ("X",) * n)
    assert math.isclose(log_value, n * math.log(0.5), rel_tol=1e-12)


def test_log_language_probability() -> None:
    rng = random.Random(9)
    sequence = make_sequence("ab", 5, rng)
    dfa = regex_to_dfa(".*b", "ab")
    linear = language_probability(sequence, dfa)
    log_value = log_language_probability(sequence, dfa)
    assert math.isclose(math.exp(log_value), linear, rel_tol=1e-9)


def test_log_language_probability_long() -> None:
    n = 3000
    sequence = iid({"a": 0.5, "b": 0.5}, n)
    dfa = regex_to_dfa(".*", "ab")
    assert math.isclose(log_language_probability(sequence, dfa), 0.0, abs_tol=1e-6)


def test_rejects_nondeterministic() -> None:
    sequence = iid({"a": 1.0}, 2)
    nondeterministic = Transducer(
        NFA("a", {0, 1}, 0, {0, 1}, {(0, "a"): {0, 1}}), {}
    )
    with pytest.raises(InvalidTransducerError):
        log_confidence_deterministic(sequence, nondeterministic, ())
