"""Theorem 5.8: polynomial confidence for indexed s-projectors."""

from __future__ import annotations

import math
import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.markov.builders import uniform_iid
from repro.automata.operations import empty_string_only, sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.confidence.brute_force import brute_force_answers
from repro.confidence.indexed import (
    backward_suffix_weights,
    confidence_indexed,
    forward_prefix_weights,
)

from tests.conftest import make_random_dfa, make_sequence

ALPHABET = "abc"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 5))
def test_matches_brute_force(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence(ALPHABET, length, rng)
    projector = IndexedSProjector(
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
    )
    expected = brute_force_answers(sequence, projector)
    for (output, index), confidence in expected.items():
        computed = confidence_indexed(sequence, projector, output, index)
        assert math.isclose(computed, confidence, abs_tol=1e-9), (output, index)


def test_out_of_range_answers_are_zero() -> None:
    sequence = uniform_iid(ALPHABET, 3)
    projector = SProjector(
        sigma_star(ALPHABET), regex_to_dfa("a", ALPHABET), sigma_star(ALPHABET)
    )
    assert confidence_indexed(sequence, projector, ("a",), 0) == 0
    assert confidence_indexed(sequence, projector, ("a",), 4) == 0
    assert confidence_indexed(sequence, projector, ("a", "a"), 3) == 0


def test_pattern_rejection() -> None:
    sequence = uniform_iid(ALPHABET, 3)
    projector = SProjector(
        sigma_star(ALPHABET), regex_to_dfa("a", ALPHABET), sigma_star(ALPHABET)
    )
    assert confidence_indexed(sequence, projector, ("b",), 1) == 0


def test_empty_match_positions() -> None:
    """Answers (epsilon, i) for i = 1 .. n+1, with constraints that bite."""
    sequence = uniform_iid("ab", 2, exact=True)
    # Prefix must be all a's, suffix all b's, match empty.
    projector = SProjector(
        regex_to_dfa("a*", "ab"), empty_string_only("ab"), regex_to_dfa("b*", "ab")
    )
    # (eps, 1): whole string in b*: worlds bb -> 1/4.
    assert confidence_indexed(sequence, projector, (), 1) == Fraction(1, 4)
    # (eps, 2): first symbol a, second b -> ab: 1/4.
    assert confidence_indexed(sequence, projector, (), 2) == Fraction(1, 4)
    # (eps, 3): whole string in a*: aa -> 1/4.
    assert confidence_indexed(sequence, projector, (), 3) == Fraction(1, 4)
    # Cross-check against brute force.
    brute = brute_force_answers(sequence, projector.indexed())
    for i in (1, 2, 3):
        assert brute[((), i)] == Fraction(1, 4)


def test_full_match_at_position_one() -> None:
    sequence = uniform_iid("ab", 2, exact=True)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("ab", "ab"), sigma_star("ab")
    )
    assert confidence_indexed(sequence, projector, ("a", "b"), 1) == Fraction(1, 4)


def test_shared_dp_tables_match_fresh_computation() -> None:
    rng = random.Random(23)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = IndexedSProjector(
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
    )
    forward = forward_prefix_weights(sequence, projector)
    backward = backward_suffix_weights(sequence, projector)
    for (output, index) in brute_force_answers(sequence, projector):
        fresh = confidence_indexed(sequence, projector, output, index)
        shared = confidence_indexed(
            sequence, projector, output, index, _forward=forward, _backward=backward
        )
        assert math.isclose(fresh, shared, abs_tol=1e-12)


def test_sum_over_all_indexed_answers_vs_worlds() -> None:
    """Sum of conf((o,i)) equals the expected number of occurrences."""
    rng = random.Random(99)
    sequence = make_sequence("ab", 4, rng)
    projector = IndexedSProjector(
        sigma_star("ab"), regex_to_dfa("a", "ab"), sigma_star("ab")
    )
    total = sum(
        confidence_indexed(sequence, projector, output, index)
        for (output, index) in brute_force_answers(sequence, projector)
    )
    expected = sum(
        prob * sum(1 for s in world if s == "a") for world, prob in sequence.worlds()
    )
    assert math.isclose(total, expected, abs_tol=1e-9)
