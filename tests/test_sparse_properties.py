"""Hypothesis properties for the sparse kernels and the shrink pass.

Three families, mirroring the exactness story of the dense paths:

1. Shrinking (trim + weight pushing + row sharing) preserves the exact
   ``Fraction`` confidence of every answer — checked against the brute
   force world enumeration, zero tolerance.
2. ``measure_density`` returns the true ``nnz / (|alphabet| * |Q|^2)``
   exactly below the sample cap, and an estimate that agrees exactly on
   machines with uniform out-degree even when sampling.
3. A sparse-planned :class:`StreamingEvaluator` appends bit-identically
   per timestep to a dense-forced replay of the same stream.
"""

from __future__ import annotations

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.confidence.brute_force import brute_force_answers
from repro.confidence.sparse import SparseKernel, confidence_sparse
from repro.oracle.generators import make_sparse_transducer
from repro.runtime.incremental import StreamingEvaluator
from repro.runtime.plan import QueryPlan
from repro.runtime.shrink import measure_density, shrink_transducer
from tests.conftest import (
    make_fraction_sequence,
    make_fraction_timestep,
    make_random_deterministic_transducer,
    make_random_uniform_deterministic_transducer,
)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_shrink_preserves_exact_fractions(seed: int) -> None:
    """Pruning + pushing never changes any answer's exact confidence."""
    rng = random.Random(seed)
    transducer = make_random_deterministic_transducer("ab", rng.randint(2, 5), rng)
    sequence = make_fraction_sequence("ab", rng.randint(1, 3), rng)
    shrunk, push, _report = shrink_transducer(transducer)
    kernel = SparseKernel(shrunk, push=push)
    reference = brute_force_answers(sequence, transducer)
    for answer, want in reference.items():
        got = confidence_sparse(sequence, kernel, answer)
        assert type(got) in (int, Fraction)
        assert got == want
    # A certainly-absent answer stays exactly zero after shrinking.
    assert confidence_sparse(sequence, kernel, ("x",) * 11) == 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_shrink_preserves_uniform_fast_path(seed: int) -> None:
    """The k-uniform kernel branch is exact under shrinking too."""
    rng = random.Random(seed)
    transducer = make_random_uniform_deterministic_transducer(
        "ab", rng.randint(2, 5), rng, k=rng.randint(1, 2)
    )
    sequence = make_fraction_sequence("ab", rng.randint(1, 3), rng)
    shrunk, push, _report = shrink_transducer(transducer)
    kernel = SparseKernel(shrunk, push=push)
    assert kernel.uniformity is not None
    for answer, want in brute_force_answers(sequence, transducer).items():
        assert confidence_sparse(sequence, kernel, answer) == want


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_density_exact_below_sample_cap(seed: int) -> None:
    """``measure_density`` is the literal nnz ratio when not sampling."""
    rng = random.Random(seed)
    transducer = make_random_deterministic_transducer("ab", rng.randint(2, 8), rng)
    nfa = transducer.nfa
    nnz = nfa.num_transitions
    want = Fraction(nnz, len(nfa.alphabet) * len(nfa.states) ** 2)
    got = measure_density(transducer)
    assert isinstance(got, Fraction)
    assert got == want
    assert 0 <= got <= 1


@settings(max_examples=15, deadline=None)
@given(
    num_states=st.integers(16, 96),
    cap=st.integers(4, 12),
    seed=st.integers(0, 10**6),
)
def test_density_estimate_matches_uniform_outdegree(
    num_states: int, cap: int, seed: int
) -> None:
    """Sampling is exact on machines whose rows all have equal out-degree.

    ``make_sparse_transducer`` gives every state exactly one successor
    per symbol, so any strided state sample sees the same per-row count
    and the scaled estimate equals the true density 1/|Q|.
    """
    transducer = make_sparse_transducer(num_states=num_states, seed=seed)
    exact = measure_density(transducer)
    assert exact == Fraction(1, num_states)
    sampled = measure_density(transducer, sample_cap=cap)
    assert sampled == exact


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6), steps=st.integers(1, 3))
def test_streaming_sparse_matches_dense_per_timestep(seed: int, steps: int) -> None:
    """Sparse and dense evaluators agree bit-for-bit after every append."""
    rng = random.Random(seed)
    transducer = make_sparse_transducer(num_states=64, seed=seed % 7)
    alphabet = sorted(transducer.nfa.alphabet)
    sequence = make_fraction_sequence(alphabet, 2, rng)
    sparse_plan = QueryPlan.build(transducer, sparse_threshold=1.0)
    dense_plan = QueryPlan.build(transducer, sparse_threshold=-1.0)
    assert sparse_plan.sparse is not None
    assert dense_plan.sparse is None
    sparse_eval = StreamingEvaluator(sparse_plan, sequence)
    dense_eval = StreamingEvaluator(dense_plan, sequence)
    assert sparse_eval.confidences() == dense_eval.confidences()
    for _ in range(steps):
        timestep = make_fraction_timestep(alphabet, rng)
        got = sparse_eval.append(timestep)
        want = dense_eval.append(timestep)
        assert got == want
        for value in got.values():
            assert type(value) in (int, Fraction)
