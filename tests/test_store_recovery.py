"""Oracle-checked crash recovery: randomized kill points, bit-identical state.

The live side of these tests mirrors the server's semantics *without*
going through :mod:`repro.store.recovery` (journal via ``Store``, drive
an :class:`AlertEngine` by hand), checkpointing a full state fingerprint
after every journaled record. Killing the log at any byte — record
boundaries and mid-record tears alike — must recover exactly the
checkpoint of the last complete record: streams, standing-query values,
and hysteresis (armed flag, fired count) all bit-identical.
"""

from __future__ import annotations

import shutil
from fractions import Fraction

import pytest

from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.errors import ReproError
from repro.io.json_format import query_from_dict, query_to_dict, sequence_to_dict
from repro.lahar.database import MarkovStreamDatabase
from repro.lahar.monitor import StreamingMonitor, query_pattern
from repro.serve.alerts import AlertEngine, StandingQuery, ThresholdWatch
from repro.store import Store, replay, verify_recovery
from repro.store.codec import encode_value
from repro.store.wal import segment_paths
from repro.transducers.library import accept_filter
from repro.transducers.sprojector import SProjector

from tests.conftest import make_fraction_sequence, make_fraction_timestep

ALPHABET = "ab"
APPENDS = 6


def canonical(query):
    """The JSON-round-tripped twin — what durable paths always plan."""
    return query_from_dict(query_to_dict(query))


def contains_ab_query():
    return canonical(accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", ALPHABET)))


def occurrence_ab_query():
    alphabet = sigma_star(ALPHABET)
    return canonical(SProjector(alphabet, regex_to_dfa("ab", ALPHABET), alphabet))


def fingerprint(database: MarkovStreamDatabase, alerts: AlertEngine) -> dict:
    """Everything recovery promises to reproduce, in comparable form."""
    return {
        "streams": {
            name: sequence_to_dict(database.stream(name))
            for name in database.streams()
        },
        "queries": database.queries(),
        "standing": {
            name: {
                "value": encode_value(alerts.get(name).current_value()),
                "watch_value": alerts.get(name).watch.value,
                "armed": alerts.get(name).watch.armed,
                "alerts_fired": alerts.get(name).alerts_fired,
            }
            for name in alerts.names()
        },
    }


def run_workload(data_dir, rng) -> list[dict]:
    """Journal a server-shaped workload; returns ``checkpoints`` where
    ``checkpoints[k]`` is the state fingerprint after ``k`` records."""
    store = Store(data_dir, fsync=False)
    database = MarkovStreamDatabase(store=store)
    alerts = AlertEngine()
    checkpoints = [fingerprint(database, alerts)]

    database.register_stream("s", make_fraction_sequence(ALPHABET, 2, rng))
    checkpoints.append(fingerprint(database, alerts))

    query = contains_ab_query()
    database.register_query("q", query)
    checkpoints.append(fingerprint(database, alerts))

    # answer-kind standing query, journaled the way the server does it:
    # record first, then register with initial= (born-above starts
    # disarmed)
    evaluator = database.streaming_evaluator("s", "q")
    threshold, rearm = Fraction(1, 100), Fraction(1, 200)
    store.log_standing_registered(
        "watch", "s", "answer", "q", query, (), threshold, rearm
    )
    alerts.register(
        StandingQuery(
            name="watch",
            stream="s",
            kind="answer",
            query_label="q",
            watch=ThresholdWatch(
                threshold, rearm, initial=evaluator.confidences().get((), 0)
            ),
            output=(),
            evaluator=evaluator,
            query=query,
        )
    )
    checkpoints.append(fingerprint(database, alerts))

    pattern_query = occurrence_ab_query()
    monitor = StreamingMonitor.occurrence(
        database.stream("s"), query_pattern(pattern_query)
    )
    threshold, rearm = Fraction(1, 8), Fraction(1, 16)
    store.log_standing_registered(
        "occ", "s", "monitor", "occ", pattern_query, (), threshold, rearm
    )
    alerts.register(
        StandingQuery(
            name="occ",
            stream="s",
            kind="monitor",
            query_label="occ",
            watch=ThresholdWatch(threshold, rearm, initial=monitor.value),
            monitor=monitor,
            query=pattern_query,
        )
    )
    checkpoints.append(fingerprint(database, alerts))

    for _ in range(APPENDS):
        transition = make_fraction_timestep(ALPHABET, rng)
        grown = database.append("s", transition)
        alerts.observe_append("s", transition, grown.length)
        checkpoints.append(fingerprint(database, alerts))

    store.close()
    return checkpoints


def record_boundaries(segment: bytes) -> list[int]:
    """Byte offsets at which each record ends (``[0]`` = empty prefix)."""
    offsets = [0]
    pos = 0
    while pos < len(segment):
        length = int(segment[pos : pos + 8], 16)
        pos += 17 + length + 1
        offsets.append(pos)
    return offsets


def recovered_fingerprint(data_dir) -> tuple[dict, object]:
    recovered = replay(data_dir)
    return fingerprint(recovered.database, recovered.alerts), recovered


@pytest.fixture
def workload(tmp_path, rng):
    data_dir = tmp_path / "data"
    checkpoints = run_workload(data_dir, rng)
    segment = segment_paths(data_dir / "wal")[0]
    return data_dir, checkpoints, segment


def kill_at(data_dir, segment, offset: int):
    """A copy of the store with the log sheared at byte ``offset``."""
    kill_dir = data_dir.parent / f"kill-{offset}"
    shutil.copytree(data_dir, kill_dir)
    target = kill_dir / "wal" / segment.name
    target.write_bytes(segment.read_bytes()[:offset])
    return kill_dir


def test_workload_exercises_hysteresis(workload) -> None:
    """The final checkpoint must cover the interesting alert states —
    otherwise the bit-identical claims below are vacuous."""
    _data_dir, checkpoints, _segment = workload
    final = checkpoints[-1]["standing"]
    # "watch" is born above its threshold: registration disarms it and
    # it never fires — the restore path must not re-fire it
    assert final["watch"]["armed"] is False
    assert final["watch"]["alerts_fired"] == 0
    # "occ" fluctuates: it fires, re-arms below the re-arm level, and
    # fires again, so checkpoints cover both armed states mid-band
    assert final["occ"]["alerts_fired"] >= 2
    armed_states = {
        checkpoint["standing"]["occ"]["armed"]
        for checkpoint in checkpoints
        if "occ" in checkpoint["standing"]
    }
    assert armed_states == {True, False}


def test_kill_at_every_record_boundary_recovers_checkpoint(workload) -> None:
    data_dir, checkpoints, segment = workload
    boundaries = record_boundaries(segment.read_bytes())
    assert len(boundaries) == len(checkpoints)
    for k, offset in enumerate(boundaries):
        kill_dir = kill_at(data_dir, segment, offset)
        recovered_state, recovered = recovered_fingerprint(kill_dir)
        assert recovered_state == checkpoints[k], f"kill after record {k}"
        assert recovered.last_lsn == k
        assert recovered.truncated_bytes == 0
        report = verify_recovery(kill_dir)
        assert report["ok"], (k, report["mismatches"])


def test_kill_mid_record_truncates_and_continues(workload, rng) -> None:
    data_dir, checkpoints, segment = workload
    whole = segment.read_bytes()
    boundaries = record_boundaries(whole)
    # a handful of tears strictly inside random records (first byte of a
    # frame up to one byte short of its end)
    interior = []
    for _ in range(5):
        k = rng.randrange(len(boundaries) - 1)
        interior.append(rng.randrange(boundaries[k] + 1, boundaries[k + 1]))
    for offset in interior:
        k = max(i for i, b in enumerate(boundaries) if b <= offset)
        kill_dir = kill_at(data_dir, segment, offset)
        recovered_state, recovered = recovered_fingerprint(kill_dir)
        assert recovered_state == checkpoints[k], f"tear at byte {offset}"
        assert recovered.truncated_bytes == offset - boundaries[k]

        # truncate-and-continue: the repaired log accepts the next append
        store = Store(kill_dir, fsync=False)
        assert store.last_lsn == k
        database = MarkovStreamDatabase(store=store)
        database.register_stream("t", make_fraction_sequence(ALPHABET, 2, rng))
        store.close()
        resumed = replay(kill_dir)
        assert resumed.last_lsn == k + 1
        assert "t" in resumed.database.streams()
        assert resumed.truncated_bytes == 0


def test_interior_corruption_refuses_with_context(workload) -> None:
    data_dir, _checkpoints, segment = workload
    data = bytearray(segment.read_bytes())
    boundaries = record_boundaries(bytes(data))
    # flip a payload byte of the third record: complete frame, bad CRC
    data[boundaries[2] + 20] ^= 0xFF
    segment.write_bytes(bytes(data))
    with pytest.raises(ReproError, match="checksum mismatch"):
        replay(data_dir)


def test_unknown_record_type_refuses_with_lsn(tmp_path, rng) -> None:
    data_dir = tmp_path / "data"
    store = Store(data_dir, fsync=False)
    database = MarkovStreamDatabase(store=store)
    database.register_stream("s", make_fraction_sequence(ALPHABET, 2, rng))
    store.wal.append("hologram", {})  # a record from the future
    store.close()
    with pytest.raises(ReproError, match="unknown WAL record type 'hologram'"):
        replay(data_dir)


def test_replay_error_carries_lsn_context(tmp_path, rng) -> None:
    data_dir = tmp_path / "data"
    store = Store(data_dir, fsync=False)
    store.log_append("ghost", {"a": {"a": "1/1"}})  # stream never created
    store.close()
    with pytest.raises(ReproError, match=r"replay failed at LSN 1 \(append\)"):
        replay(data_dir)


def test_verify_recovery_catches_tampered_snapshot(workload) -> None:
    """The DP referee is live: a forged frontier mass fails verification."""
    import json

    data_dir, _checkpoints, _segment = workload
    recovered = replay(data_dir)
    from repro.store import capture_recovered

    store = Store(data_dir, fsync=False)
    store.compact(capture_recovered(recovered))
    store.close()
    assert verify_recovery(data_dir)["ok"]

    snap = next((data_dir / "snapshots").glob("*.snap"))
    document = json.loads(snap.read_text())
    assert document["evaluators"], "workload should have attached evaluators"
    document["evaluators"][0]["frontier"][0][1] = "1/999"
    snap.write_text(json.dumps(document, separators=(",", ":"), sort_keys=True))
    report = verify_recovery(data_dir)
    assert not report["ok"]
    assert any("diverges" in mismatch for mismatch in report["mismatches"])


def test_compacted_store_recovers_same_fingerprint(workload) -> None:
    data_dir, checkpoints, _segment = workload
    from repro.store import capture_recovered

    recovered = replay(data_dir)
    store = Store(data_dir, fsync=False)
    store.compact(capture_recovered(recovered))
    store.close()
    recovered_state, recovered = recovered_fingerprint(data_dir)
    assert recovered_state == checkpoints[-1]
    assert recovered.records_replayed == 0  # pure snapshot restore
    report = verify_recovery(data_dir)
    assert report["ok"], report["mismatches"]
    assert report["log_complete"] is False
