"""Markov-sequence constructors."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest

from repro.errors import InvalidMarkovSequenceError
from repro.markov.builders import (
    homogeneous,
    hospital_model,
    iid,
    random_sequence,
    uniform_iid,
)


def test_iid_worlds_factorize() -> None:
    sequence = iid({"a": Fraction(1, 4), "b": Fraction(3, 4)}, 3)
    assert sequence.prob_of(("a", "b", "a")) == Fraction(1, 4) ** 2 * Fraction(3, 4)
    assert sequence.prob_of(("b", "b", "b")) == Fraction(3, 4) ** 3


def test_uniform_iid_exact() -> None:
    sequence = uniform_iid("abc", 2, exact=True)
    assert sequence.prob_of(("a", "c")) == Fraction(1, 9)
    assert sum(p for _w, p in sequence.worlds()) == 1


def test_uniform_iid_float() -> None:
    sequence = uniform_iid("ab", 3, exact=False)
    assert math.isclose(sequence.prob_of(("a", "a", "a")), 0.125)


def test_uniform_iid_empty_alphabet_rejected() -> None:
    with pytest.raises(InvalidMarkovSequenceError):
        uniform_iid([], 3)


def test_homogeneous() -> None:
    half = Fraction(1, 2)
    sequence = homogeneous(
        {"s": Fraction(1)},
        {"s": {"s": half, "t": half}, "t": {"t": Fraction(1)}},
        3,
    )
    assert sequence.prob_of(("s", "s", "t")) == Fraction(1, 4)
    assert sequence.prob_of(("s", "t", "t")) == Fraction(1, 2)
    assert sequence.prob_of(("t", "t", "t")) == 0


def test_length_one_has_no_transitions() -> None:
    sequence = iid({"a": 1}, 1)
    assert len(sequence) == 1
    assert sequence.prob_of(("a",)) == 1


def test_bad_lengths_rejected() -> None:
    with pytest.raises(InvalidMarkovSequenceError):
        iid({"a": 1}, 0)
    with pytest.raises(InvalidMarkovSequenceError):
        random_sequence("ab", 0, random.Random(0))


def test_random_sequence_branching_controls_support() -> None:
    rng = random.Random(9)
    sparse = random_sequence("abcd", 4, rng, branching=1)
    # branching=1 means exactly one successor per row: support has exactly
    # as many worlds as initial-support entries.
    assert sparse.support_size() == len(dict(sparse.initial_support()))


def test_hospital_model_valid_and_shaped() -> None:
    rng = random.Random(1)
    sequence = hospital_model(num_rooms=2, length=6, rng=rng)
    assert len(sequence) == 6
    assert sequence.alphabet == frozenset(
        {"r1a", "r1b", "r2a", "r2b", "la", "lb"}
    )
    marginals = sequence.marginals()
    assert all(math.isclose(sum(m.values()), 1.0, abs_tol=1e-9) for m in marginals)


def test_hospital_model_stay_probability_dominates() -> None:
    rng = random.Random(2)
    sequence = hospital_model(num_rooms=2, length=3, rng=rng, stay_prob=0.8)
    # Staying put should be the most likely move from any location.
    for symbol in sequence.symbols:
        row = dict(sequence.successors(1, symbol))
        assert max(row, key=row.get) == symbol
