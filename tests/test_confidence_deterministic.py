"""Theorem 4.6: confidence computation for deterministic transducers."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidTransducerError
from repro.markov.builders import iid, uniform_iid
from repro.automata.nfa import NFA
from repro.transducers.library import collapse_transducer, identity_mealy
from repro.transducers.transducer import Transducer
from repro.confidence.brute_force import brute_force_answers, brute_force_emax
from repro.confidence.deterministic import confidence_deterministic
from repro.semiring import VITERBI

from tests.conftest import make_random_deterministic_transducer, make_sequence


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 5))
def test_matches_brute_force_on_random_instances(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", length, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    expected = brute_force_answers(sequence, transducer)
    for output, confidence in expected.items():
        computed = confidence_deterministic(sequence, transducer, output)
        assert math.isclose(computed, confidence, abs_tol=1e-9), output
    # A non-answer has confidence zero.
    assert confidence_deterministic(sequence, transducer, ("x",) * 20) == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_viterbi_semiring_computes_emax(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    expected = brute_force_emax(sequence, transducer)
    for output, emax in expected.items():
        computed = confidence_deterministic(
            sequence, transducer, output, semiring=VITERBI
        )
        assert math.isclose(computed, emax, abs_tol=1e-9), output


def test_uniform_fast_path_equals_general() -> None:
    rng = random.Random(44)
    sequence = make_sequence("ab", 5, rng)
    mealy = collapse_transducer({"a": "x", "b": "y"})
    assert mealy.uniformity() == 1  # fast path taken
    expected = brute_force_answers(sequence, mealy)
    for output, confidence in expected.items():
        assert math.isclose(
            confidence_deterministic(sequence, mealy, output), confidence, abs_tol=1e-9
        )
    # Wrong-length outputs are zero for uniform emission.
    assert confidence_deterministic(sequence, mealy, ("x",) * 4) == 0
    assert confidence_deterministic(sequence, mealy, ("x",) * 6) == 0


def test_identity_mealy_confidence_is_world_probability() -> None:
    sequence = iid({"a": Fraction(1, 4), "b": Fraction(3, 4)}, 3)
    t = identity_mealy("ab")
    assert confidence_deterministic(sequence, t, ("a", "b", "a")) == Fraction(
        1, 4
    ) ** 2 * Fraction(3, 4)


def test_collapse_aggregates_worlds_exactly() -> None:
    # Two symbols collapse to one: conf(X^n) sums over all 2^n worlds.
    sequence = uniform_iid("ab", 4, exact=True)
    t = collapse_transducer({"a": "X", "b": "X"})
    assert confidence_deterministic(sequence, t, ("X",) * 4) == 1


def test_rejects_nondeterministic_transducers() -> None:
    nfa = NFA("a", {0, 1}, 0, {0, 1}, {(0, "a"): {0, 1}})
    t = Transducer(nfa, {})
    with pytest.raises(InvalidTransducerError):
        confidence_deterministic(uniform_iid("a", 2), t, ())


def test_selective_transducer_empty_output() -> None:
    # 0-uniform acceptance filter: conf(()) = Pr(S in L(A)).
    from repro.automata.regex import regex_to_dfa
    from repro.transducers.library import accept_filter

    sequence = uniform_iid("ab", 3, exact=True)
    dfa = regex_to_dfa(".*b", "ab")  # strings ending in b
    t = accept_filter(dfa)
    assert confidence_deterministic(sequence, t, ()) == Fraction(1, 2)


def test_exact_fraction_arithmetic_end_to_end() -> None:
    sequence = uniform_iid("ab", 5, exact=True)
    t = collapse_transducer({"a": "X", "b": "Y"})
    total = sum(
        confidence_deterministic(sequence, t, output)
        for output in brute_force_answers(sequence, t)
    )
    assert total == 1  # exact, no float drift
