"""Per-rule analyzer tests driven by the good/bad fixture pairs."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import MetricRegistry, lint_source

FIXTURES = Path(__file__).parent / "analysis_fixtures"

MINI_CATALOGUE = """
# Observability

## Metric catalogue

| name | kind | meaning |
|---|---|---|
| `fixture.documented` | counter | a counter |
| `fixture.histogram` | histogram | a histogram |
| span `outer/inner` | histogram | nested spans |

## Export schema

Prose below the catalogue mentioning `fixture.not_a_metric` is ignored.
"""


def fixture(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def lint_fixture(name: str, virtual_path: str, **kwargs):
    return lint_source(fixture(name), virtual_path=virtual_path, **kwargs)


# ---------------------------------------------------------------- RX01


def test_rx01_bad_fixture_flags_all_taint():
    report = lint_fixture("rx01_bad.py", "repro/confidence/uniform.py")
    rules = [f.rule for f in report.violations]
    assert set(rules) == {"RX01"}
    messages = " ".join(f.message for f in report.violations)
    assert "float literal" in messages
    assert "float(...)" in messages
    assert "math.exp" in messages
    assert "import from math" in messages


def test_rx01_good_fixture_is_clean():
    report = lint_fixture("rx01_good.py", "repro/core/engine.py")
    assert report.clean, [f.render() for f in report.violations]


def test_rx01_montecarlo_is_blessed():
    report = lint_fixture("rx01_bad.py", "repro/confidence/montecarlo.py")
    assert report.clean


def test_rx01_fpras_is_blessed_but_product_is_not():
    assert lint_fixture("rx01_bad.py", "repro/approx/fpras.py").clean
    assert not lint_fixture("rx01_bad.py", "repro/approx/product.py").clean


def test_rx01_scope_covers_store_and_runtime():
    for zone in ("store/wal.py", "runtime/plan.py"):
        assert not lint_fixture("rx01_bad.py", f"repro/{zone}").clean


# ---------------------------------------------------------------- RX02


def test_rx02_bad_fixture_flags_blocking_calls():
    report = lint_fixture("rx02_bad.py", "repro/serve/server.py")
    assert {f.rule for f in report.violations} == {"RX02"}
    messages = " ".join(f.message for f in report.violations)
    assert "time.sleep" in messages
    assert "os.fsync" in messages
    assert "open()" in messages
    assert ".write_text" in messages
    assert "subprocess.run" in messages
    # Both the top-level and the deeply-nested sleep are caught.
    assert len(report.violations) == 6


def test_rx02_good_fixture_is_clean():
    report = lint_fixture("rx02_good.py", "repro/serve/server.py")
    assert report.clean, [f.render() for f in report.violations]


def test_rx02_only_applies_in_serve():
    report = lint_fixture("rx02_bad.py", "repro/store/wal.py")
    assert not any(f.rule == "RX02" for f in report.violations)


# ---------------------------------------------------------------- RX03


def test_rx03_bad_fixture_flags_unseeded_randomness():
    report = lint_fixture("rx03_bad.py", "repro/markov/builders.py")
    assert {f.rule for f in report.violations} == {"RX03"}
    messages = " ".join(f.message for f in report.violations)
    assert "without a seed" in messages
    assert "random.seed" in messages
    assert "global RNG" in messages
    assert len(report.violations) == 7


def test_rx03_good_fixture_is_clean():
    report = lint_fixture("rx03_good.py", "repro/markov/builders.py")
    assert report.clean, [f.render() for f in report.violations]


def test_rx03_applies_everywhere():
    # Path-independent: the same violations fire outside the package.
    report = lint_fixture("rx03_bad.py", "scripts/ad_hoc.py")
    assert not report.clean


# ---------------------------------------------------------------- RX04


def test_rx04_bad_fixture_flags_unguarded_sites():
    report = lint_fixture("rx04_bad.py", "repro/runtime/cache.py")
    assert {f.rule for f in report.violations} == {"RX04"}
    flagged = {(f.line, f.message.split()[0]) for f in report.violations}
    attrs = {msg for _line, msg in flagged}
    assert attrs == {"self.hits", "self.entries", "self.appends"}
    assert len(report.violations) == 3


def test_rx04_good_fixture_is_clean():
    report = lint_fixture("rx04_good.py", "repro/runtime/cache.py")
    assert report.clean, [f.render() for f in report.violations]


def test_rx04_scope():
    assert not lint_fixture("rx04_bad.py", "repro/serve/server.py").clean
    assert not lint_fixture("rx04_bad.py", "repro/parallel/pool.py").clean
    # serve/ outside server.py is not in RX04 scope.
    report = lint_fixture("rx04_bad.py", "repro/serve/protocol.py")
    assert not any(f.rule == "RX04" for f in report.violations)


# ---------------------------------------------------------------- RX05


def test_rx05_bad_fixture_flags_undocumented_names():
    report = lint_fixture(
        "rx05_bad.py",
        "repro/serve/handlers.py",
        observability_text=MINI_CATALOGUE,
    )
    assert {f.rule for f in report.violations} == {"RX05"}
    messages = " ".join(f.message for f in report.violations)
    assert "fixture.renamed_counter" in messages
    assert "fixture.mystery_gauge" in messages
    assert "undocumented_phase" in messages
    assert len(report.violations) == 3


def test_rx05_good_fixture_is_clean():
    report = lint_fixture(
        "rx05_good.py",
        "repro/serve/handlers.py",
        observability_text=MINI_CATALOGUE,
    )
    assert report.clean, [f.render() for f in report.violations]


def test_rx05_reverse_pass_reports_dead_catalogue_rows():
    report = lint_source(
        "from repro import telemetry\n"
        'def f():\n    telemetry.count("fixture.documented")\n',
        virtual_path="repro/serve/handlers.py",
        observability_text=MINI_CATALOGUE,
        reverse_telemetry=True,
    )
    messages = " ".join(f.message for f in report.violations)
    assert "fixture.histogram" in messages  # documented, never emitted
    assert "outer/inner" in messages  # documented span, never opened
    assert all(f.rule == "RX05" for f in report.violations)


def test_rx05_reverse_pass_off_for_single_files():
    report = lint_source(
        "from repro import telemetry\n"
        'def f():\n    telemetry.count("fixture.documented")\n',
        virtual_path="repro/serve/handlers.py",
        observability_text=MINI_CATALOGUE,
    )
    assert report.clean


def test_rx05_silent_without_a_catalogue():
    report = lint_fixture("rx05_bad.py", "repro/serve/handlers.py")
    assert report.clean


# ------------------------------------------------------- catalogue parsing


def test_registry_parses_real_catalogue():
    doc = Path(__file__).parent.parent / "docs" / "OBSERVABILITY.md"
    registry = MetricRegistry.from_file(doc)
    # Abbreviated rows expand against the last full name.
    assert "runtime.plan_cache.hits" in registry.metrics
    assert "runtime.plan_cache.misses" in registry.metrics
    assert "runtime.plan_cache.evictions" in registry.metrics
    assert "parallel.worker_cache.misses" in registry.metrics
    # Span rows land in spans, not metrics.
    assert "verify/corpus_case" in registry.spans
    assert "approx.estimate" in registry.spans
    assert "corpus_case" in registry.span_components
    # Prose outside tables (and non-first cells) contributes nothing.
    assert "PlanCache.get" not in registry.metrics
    assert "repro-telemetry/1" not in registry.metrics


def test_registry_abbreviation_expansion():
    registry = MetricRegistry.from_text(
        """
## Metric catalogue

| name | kind | meaning |
|---|---|---|
| `a.b.c` / `.d` / `.e` | counter | quoting `other.name` here |
| `x.y` | gauge | another |
"""
    )
    assert set(registry.metrics) == {"a.b.c", "a.b.d", "a.b.e", "x.y"}


def test_registry_ignores_sections_outside_catalogue():
    registry = MetricRegistry.from_text(
        """
## Quick tour

| name | kind | meaning |
|---|---|---|
| `not.a.metric` | counter | wrong section |

## Metric catalogue

| name | kind | meaning |
|---|---|---|
| `real.metric` | counter | yes |

## Export schema

| `also.not.a.metric` | counter | after the catalogue |
"""
    )
    assert set(registry.metrics) == {"real.metric"}
