"""Cross-module invariants, property-based.

These tie the subsystems together: total confidence mass equals the
acceptance probability, heuristic scores sandwich confidences with the
paper's ratios, exact and float arithmetic agree, and the three
enumeration orders agree on the answer *set*.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.markov.builders import uniform_iid
from repro.confidence.brute_force import brute_force_answers, brute_force_emax
from repro.confidence.language import language_probability
from repro.enumeration.emax import enumerate_emax
from repro.enumeration.unranked import enumerate_unranked

from tests.conftest import (
    make_random_deterministic_transducer,
    make_random_uniform_transducer,
    make_sequence,
)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 4))
def test_total_confidence_equals_acceptance_probability(seed: int, length: int) -> None:
    """sum_o conf(o) = Pr(S in L(A)) for deterministic transducers.

    (Each accepted world contributes its mass to exactly one answer.)
    """
    rng = random.Random(seed)
    sequence = make_sequence("ab", length, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    total = sum(brute_force_answers(sequence, transducer).values())
    accept = language_probability(sequence, transducer.nfa)
    assert math.isclose(total, accept, abs_tol=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_emax_sandwich(seed: int) -> None:
    """E_max(o) <= conf(o) <= |support| * E_max(o) — the Theorem 4.3 ratio.

    (The paper states |Sigma|^n; the number of worlds is the sharp count.)
    """
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    confidences = brute_force_answers(sequence, transducer)
    emax = brute_force_emax(sequence, transducer)
    support = sequence.support_size()
    for answer, confidence in confidences.items():
        assert emax[answer] <= confidence + 1e-12
        assert confidence <= support * emax[answer] + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_enumeration_orders_agree_on_answer_set(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_uniform_transducer("ab", 2, rng, k=1)
    unranked = set(enumerate_unranked(sequence, transducer))
    emax_set = {answer for _s, answer in enumerate_emax(sequence, transducer)}
    brute = set(brute_force_answers(sequence, transducer))
    assert unranked == emax_set == brute


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_exact_and_float_agree(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    exact = sequence.as_fraction()
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    float_answers = brute_force_answers(sequence, transducer)
    exact_answers = brute_force_answers(exact, transducer)
    assert set(float_answers) == set(exact_answers)
    for answer in float_answers:
        assert math.isclose(
            float_answers[answer], float(exact_answers[answer]), abs_tol=1e-6
        )


@settings(max_examples=15, deadline=None)
@given(length=st.integers(1, 10))
def test_identity_query_answer_count_equals_support(length: int) -> None:
    sequence = uniform_iid("ab", length, exact=True)
    from repro.transducers.library import identity_mealy

    count = 0
    for _answer in enumerate_unranked(sequence, identity_mealy("ab")):
        count += 1
        if count > 2**length:
            break
    assert count == 2**length
