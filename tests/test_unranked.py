"""Theorem 4.1: unranked enumeration with polynomial delay and space."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.markov.builders import uniform_iid
from repro.automata.regex import regex_to_dfa
from repro.automata.operations import sigma_star
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import SProjector
from repro.confidence.brute_force import brute_force_answers
from repro.enumeration.unranked import count_answers, enumerate_unranked

from tests.conftest import (
    make_random_deterministic_transducer,
    make_random_uniform_transducer,
    make_sequence,
)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 5))
def test_complete_and_duplicate_free_deterministic(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", length, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    produced = list(enumerate_unranked(sequence, transducer))
    assert len(produced) == len(set(produced))
    assert set(produced) == set(brute_force_answers(sequence, transducer))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_complete_for_nondeterministic(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_uniform_transducer("ab", 3, rng, k=1)
    produced = set(enumerate_unranked(sequence, transducer))
    assert produced == set(brute_force_answers(sequence, transducer))


def test_exponentially_many_answers_streamed_lazily() -> None:
    """The identity query has |support| answers; take only a few."""
    sequence = uniform_iid("ab", 12, exact=True)
    from repro.transducers.library import identity_mealy

    iterator = enumerate_unranked(sequence, identity_mealy("ab"))
    first = [next(iterator) for _ in range(5)]
    assert len(set(first)) == 5  # no duplicates, produced without exhausting 2^12


def test_sprojector_accepted_directly() -> None:
    sequence = uniform_iid("ab", 3, exact=True)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("a+", "ab"), sigma_star("ab")
    )
    produced = set(enumerate_unranked(sequence, projector))
    assert produced == set(brute_force_answers(sequence, projector))


def test_empty_answer_set() -> None:
    sequence = uniform_iid("ab", 2)
    # Selective transducer accepting nothing of length 2.
    from repro.transducers.library import accept_filter

    dfa = regex_to_dfa("aaa", "ab")
    transducer = accept_filter(dfa)
    assert list(enumerate_unranked(sequence, transducer)) == []


def test_epsilon_answer_is_enumerated() -> None:
    sequence = uniform_iid("ab", 2, exact=True)
    from repro.transducers.library import accept_filter

    transducer = accept_filter(regex_to_dfa(".*", "ab"))
    assert list(enumerate_unranked(sequence, transducer)) == [()]


def test_max_output_length_truncates() -> None:
    sequence = uniform_iid("ab", 4, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    truncated = set(enumerate_unranked(sequence, transducer, max_output_length=0))
    assert truncated == set()  # all answers have length 4 > 0


def test_count_answers_with_limit() -> None:
    sequence = uniform_iid("ab", 5, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    assert count_answers(sequence, transducer) == 32
    assert count_answers(sequence, transducer, limit=7) == 7
