"""The answer-product automaton (repro.approx.product)."""

from __future__ import annotations

from repro.approx.product import AnswerProduct, state_key
from repro.automata.nfa import NFA
from repro.hardness.counting import two_dnf_counting_instance
from repro.hardness.gap_instances import mealy_gap_instance
from repro.transducers.transducer import Transducer


def _ambiguous_transducer() -> Transducer:
    """Two accepting runs on 'a' both emitting 'x' (ambiguity 2), plus a
    'b' path emitting 'y' — the minimal union-of-runs test subject."""
    nfa = NFA.from_transitions(
        ("a", "b"),
        "q0",
        {"q1", "q2", "q3"},
        [
            ("q0", "a", "q1"),
            ("q0", "a", "q2"),
            ("q0", "b", "q3"),
            ("q1", "a", "q1"),
            ("q2", "a", "q1"),
        ],
    )
    omega = {
        ("q0", "a", "q1"): "x",
        ("q0", "a", "q2"): "x",
        ("q0", "b", "q3"): "y",
        ("q1", "a", "q1"): "x",
        ("q2", "a", "q1"): "x",
    }
    return Transducer(nfa, omega)


def test_moves_filter_on_the_answer_prefix() -> None:
    product = AnswerProduct(_ambiguous_transducer(), ("x",))
    # On 'a', both emitting-x transitions extend the answer prefix...
    targets = product.moves(product.initial, "a")
    assert targets == (("q1", 1), ("q2", 1))
    # ...on 'b' the emission 'y' does not match the answer 'x'.
    assert product.moves(product.initial, "b") == ()
    # Once the answer is fully emitted, emitting moves are dead ends.
    assert product.moves(("q1", 1), "a") == ()


def test_moves_are_sorted_by_state_key() -> None:
    product = AnswerProduct(_ambiguous_transducer(), ("x",))
    targets = product.moves(product.initial, "a")
    assert list(targets) == sorted(targets, key=state_key)


def test_acceptance_needs_full_emission_and_accepting_state() -> None:
    product = AnswerProduct(_ambiguous_transducer(), ("x", "x"))
    assert product.is_accepting(("q1", 2))
    assert not product.is_accepting(("q1", 1))  # answer not fully emitted
    assert not product.is_accepting(("q0", 2))  # q0 not accepting


def test_determinism_detection() -> None:
    transducer = _ambiguous_transducer()
    assert not AnswerProduct(transducer, ("x",)).is_deterministic(("a", "b"))
    # The 'y' answer only ever uses the deterministic b-path.
    assert AnswerProduct(transducer, ("y",)).is_deterministic(("a", "b"))
    # Gap-family transducers are deterministic, hence so is any product.
    gap = mealy_gap_instance(4)
    product = AnswerProduct(gap.query, gap.emax_top_answer)
    assert product.is_deterministic(gap.sequence.symbols)


def test_count_runs_matches_run_enumeration() -> None:
    transducer = _ambiguous_transducer()
    product = AnswerProduct(transducer, ("x", "x"))
    for world in (("a", "a"), ("a", "b"), ("b", "a")):
        runs = [
            run
            for run, output in transducer.transductions(world)
            if output == ("x", "x")
        ]
        assert product.count_runs(world) == len(runs), world
    # world 'aa': q0->q1->q1 and q0->q2->q1, both emit 'xx'.
    assert product.count_runs(("a", "a")) == 2


def test_canonical_run_is_the_least_accepting_run() -> None:
    transducer = _ambiguous_transducer()
    product = AnswerProduct(transducer, ("x", "x"))
    canonical = product.canonical_run(("a", "a"))
    runs = [
        tuple((state, i + 1) for i, state in enumerate(run))
        for run, output in transducer.transductions(("a", "a"))
        if output == ("x", "x")
    ]
    assert canonical in runs
    assert canonical == min(runs, key=lambda run: tuple(map(state_key, run)))


def test_canonical_run_is_none_without_accepting_runs() -> None:
    product = AnswerProduct(_ambiguous_transducer(), ("x", "x"))
    assert product.canonical_run(("b", "b")) is None
    assert product.canonical_run(("a", "b")) is None


def test_viable_sets_prune_to_accepting_paths() -> None:
    product = AnswerProduct(_ambiguous_transducer(), ("x", "x"))
    viable = product.viable_sets(("a", "a"))
    assert viable[0] == {product.initial}
    assert viable[1] == {("q1", 1), ("q2", 1)}
    assert viable[2] == {("q1", 2)}
    # A rejected world leaves the initial state non-viable.
    assert product.initial not in product.viable_sets(("b", "b"))[0]


def test_counting_instance_products_are_genuinely_ambiguous() -> None:
    # The 2-DNF reduction guesses a clause up front: a world satisfying
    # several clauses carries one accepting run per clause, which is the
    # double-counting hazard the union-of-runs estimator exists for.
    instance = two_dnf_counting_instance([(1, 1), (2, 2)], 2, 2)
    product = AnswerProduct(instance.transducer, instance.answer)
    all_ones = ("1",) * instance.sequence.length
    assert product.count_runs(all_ones) == 2
    assert not product.is_deterministic(instance.sequence.symbols)
