"""Lahar-legacy Boolean event queries (per-timestep probability profiles)."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest

from repro.errors import AlphabetMismatchError
from repro.markov.builders import uniform_iid
from repro.automata.regex import regex_to_dfa, regex_to_nfa
from repro.lahar.monitor import (
    occurrence_profile,
    prefix_acceptance_profile,
    unanchored_match_dfa,
)

from tests.conftest import make_sequence


def brute_prefix_profile(sequence, predicate):
    profile = []
    for i in range(1, sequence.length + 1):
        mass = 0
        for world, prob in sequence.worlds():
            if predicate(world[:i]):
                mass += prob
        profile.append(mass)
    return profile


def test_prefix_acceptance_profile_matches_brute() -> None:
    rng = random.Random(12)
    sequence = make_sequence("ab", 5, rng)
    dfa = regex_to_dfa(".*b", "ab")
    profile = prefix_acceptance_profile(sequence, dfa)
    expected = brute_prefix_profile(sequence, dfa.accepts)
    assert len(profile) == 5
    for got, want in zip(profile, expected):
        assert math.isclose(got, want, abs_tol=1e-9)


def test_prefix_profile_exact_fractions() -> None:
    sequence = uniform_iid("ab", 4, exact=True)
    dfa = regex_to_dfa("a.*", "ab")  # starts with a
    profile = prefix_acceptance_profile(sequence, dfa)
    assert profile == [Fraction(1, 2)] * 4


def test_unanchored_match_dfa_language() -> None:
    pattern = regex_to_nfa("ab", "ab")
    dfa = unanchored_match_dfa(pattern)
    assert dfa.accepts("ab")
    assert dfa.accepts("bab")
    assert dfa.accepts("aab")
    assert not dfa.accepts("aba")  # must END with the match
    assert not dfa.accepts("a")
    assert not dfa.accepts("")


def test_unanchored_epsilon_pattern_matches_everywhere() -> None:
    pattern = regex_to_nfa("", "ab")
    dfa = unanchored_match_dfa(pattern)
    assert dfa.accepts("")
    assert dfa.accepts("ab")


def test_occurrence_profile_matches_brute() -> None:
    rng = random.Random(21)
    sequence = make_sequence("ab", 5, rng)
    pattern = regex_to_nfa("ab", "ab")

    def fires(prefix) -> bool:
        text = "".join(prefix)
        return text.endswith("ab")

    profile = occurrence_profile(sequence, pattern)
    expected = brute_prefix_profile(sequence, fires)
    for got, want in zip(profile, expected):
        assert math.isclose(got, want, abs_tol=1e-9)


def test_monotone_event_profile_is_monotone() -> None:
    """'Seen a b so far' can only become more likely over time."""
    rng = random.Random(33)
    sequence = make_sequence("ab", 6, rng)
    seen_b = regex_to_dfa(".*b.*", "ab")
    profile = prefix_acceptance_profile(sequence, seen_b)
    assert all(profile[i] <= profile[i + 1] + 1e-12 for i in range(len(profile) - 1))


def test_alphabet_mismatch() -> None:
    sequence = uniform_iid("ab", 2)
    with pytest.raises(AlphabetMismatchError):
        prefix_acceptance_profile(sequence, regex_to_dfa("a", "abc"))
