"""Lahar-legacy Boolean event queries (per-timestep probability profiles)."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest

from repro.errors import AlphabetMismatchError
from repro.markov.builders import uniform_iid
from repro.automata.regex import regex_to_dfa, regex_to_nfa
from repro.lahar.monitor import (
    StreamingMonitor,
    occurrence_profile,
    prefix_acceptance_profile,
    unanchored_match_dfa,
)
from repro.serve.alerts import ThresholdWatch

from tests.conftest import make_fraction_timestep, make_sequence


def brute_prefix_profile(sequence, predicate):
    profile = []
    for i in range(1, sequence.length + 1):
        mass = 0
        for world, prob in sequence.worlds():
            if predicate(world[:i]):
                mass += prob
        profile.append(mass)
    return profile


def test_prefix_acceptance_profile_matches_brute() -> None:
    rng = random.Random(12)
    sequence = make_sequence("ab", 5, rng)
    dfa = regex_to_dfa(".*b", "ab")
    profile = prefix_acceptance_profile(sequence, dfa)
    expected = brute_prefix_profile(sequence, dfa.accepts)
    assert len(profile) == 5
    for got, want in zip(profile, expected):
        assert math.isclose(got, want, abs_tol=1e-9)


def test_prefix_profile_exact_fractions() -> None:
    sequence = uniform_iid("ab", 4, exact=True)
    dfa = regex_to_dfa("a.*", "ab")  # starts with a
    profile = prefix_acceptance_profile(sequence, dfa)
    assert profile == [Fraction(1, 2)] * 4


def test_unanchored_match_dfa_language() -> None:
    pattern = regex_to_nfa("ab", "ab")
    dfa = unanchored_match_dfa(pattern)
    assert dfa.accepts("ab")
    assert dfa.accepts("bab")
    assert dfa.accepts("aab")
    assert not dfa.accepts("aba")  # must END with the match
    assert not dfa.accepts("a")
    assert not dfa.accepts("")


def test_unanchored_epsilon_pattern_matches_everywhere() -> None:
    pattern = regex_to_nfa("", "ab")
    dfa = unanchored_match_dfa(pattern)
    assert dfa.accepts("")
    assert dfa.accepts("ab")


def test_occurrence_profile_matches_brute() -> None:
    rng = random.Random(21)
    sequence = make_sequence("ab", 5, rng)
    pattern = regex_to_nfa("ab", "ab")

    def fires(prefix) -> bool:
        text = "".join(prefix)
        return text.endswith("ab")

    profile = occurrence_profile(sequence, pattern)
    expected = brute_prefix_profile(sequence, fires)
    for got, want in zip(profile, expected):
        assert math.isclose(got, want, abs_tol=1e-9)


def test_monotone_event_profile_is_monotone() -> None:
    """'Seen a b so far' can only become more likely over time."""
    rng = random.Random(33)
    sequence = make_sequence("ab", 6, rng)
    seen_b = regex_to_dfa(".*b.*", "ab")
    profile = prefix_acceptance_profile(sequence, seen_b)
    assert all(profile[i] <= profile[i + 1] + 1e-12 for i in range(len(profile) - 1))


def test_alphabet_mismatch() -> None:
    sequence = uniform_iid("ab", 2)
    with pytest.raises(AlphabetMismatchError):
        prefix_acceptance_profile(sequence, regex_to_dfa("a", "abc"))


# ---------------------------------------------------------------------------
# StreamingMonitor: one product-DP layer per append
# ---------------------------------------------------------------------------


def test_streaming_monitor_tracks_occurrence_profile_exactly(rng) -> None:
    """Each appended timestep lands bit-identically on the from-scratch
    profile of the grown sequence (exact Fraction arithmetic)."""
    from tests.conftest import make_fraction_sequence

    sequence = make_fraction_sequence("ab", 3, rng)
    pattern = regex_to_nfa("ab", "ab")
    monitor = StreamingMonitor.occurrence(sequence, pattern)
    assert monitor.value == occurrence_profile(sequence, pattern)[-1]
    for _ in range(4):
        transition = make_fraction_timestep("ab", rng)
        sequence = sequence.extended(transition)
        value = monitor.append(transition)
        assert monitor.length == sequence.length
        assert value == occurrence_profile(sequence, pattern)[-1]


def test_streaming_monitor_prefix_acceptance(rng) -> None:
    sequence = uniform_iid("ab", 2, exact=True)
    dfa = regex_to_dfa("a.*", "ab")  # starts with a
    monitor = StreamingMonitor(sequence, dfa)
    assert monitor.value == Fraction(1, 2)
    grown = sequence
    for _ in range(3):
        transition = make_fraction_timestep("ab", random.Random(7))
        grown = grown.extended(transition)
        monitor.append(transition)
    assert monitor.value == prefix_acceptance_profile(grown, dfa)[-1]


def test_streaming_monitor_checks_alphabet() -> None:
    with pytest.raises(AlphabetMismatchError):
        StreamingMonitor(uniform_iid("ab", 2), regex_to_dfa("a", "abc"))


# ---------------------------------------------------------------------------
# ThresholdWatch: fire once per upward crossing, hysteresis on re-arm
# ---------------------------------------------------------------------------


def test_threshold_fires_exactly_once_per_upward_crossing() -> None:
    watch = ThresholdWatch(Fraction(1, 2))
    fired = [watch.observe(v) for v in (
        Fraction(1, 4),   # below: armed, no fire
        Fraction(1, 2),   # crossing: fires
        Fraction(3, 4),   # still above: no second fire
        Fraction(1, 4),   # drops below: re-arms silently
        Fraction(2, 3),   # second crossing: fires again
    )]
    assert fired == [False, True, False, False, True]


def test_threshold_hysteresis_band_suppresses_jitter() -> None:
    watch = ThresholdWatch(Fraction(1, 2), rearm=Fraction(1, 4))
    assert watch.observe(Fraction(1, 2)) is True
    # jitter between rearm and threshold: disarmed the whole time
    assert watch.observe(Fraction(2, 5)) is False
    assert watch.observe(Fraction(3, 5)) is False
    assert watch.observe(Fraction(2, 5)) is False
    # only a dip below the re-arm level re-arms...
    assert watch.observe(Fraction(1, 5)) is False
    # ...so the next crossing fires again
    assert watch.observe(Fraction(1, 2)) is True


def test_threshold_registration_at_or_above_starts_disarmed() -> None:
    watch = ThresholdWatch(Fraction(1, 2), initial=Fraction(3, 4))
    assert not watch.armed  # registration alone never fires
    assert watch.observe(Fraction(3, 4)) is False
    assert watch.observe(Fraction(1, 4)) is False  # re-arms
    assert watch.observe(Fraction(1, 2)) is True


def test_threshold_rearm_above_threshold_rejected() -> None:
    from repro.errors import ReproError

    with pytest.raises(ReproError, match="re-arm"):
        ThresholdWatch(Fraction(1, 2), rearm=Fraction(3, 4))
