"""Evidence ranking / lineage-style explanations."""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.markov.builders import uniform_iid
from repro.automata.nfa import NFA
from repro.transducers.library import collapse_transducer
from repro.transducers.transducer import Transducer
from repro.confidence.brute_force import brute_force_answers
from repro.enumeration.evidence import (
    best_evidence_for_answer,
    enumerate_evidences,
    explain,
)

from tests.conftest import make_random_deterministic_transducer, make_sequence


def brute_evidences(sequence, transducer, answer):
    return sorted(
        (
            (prob, world)
            for world, prob in sequence.worlds()
            if tuple(answer) in transducer.transduce(world)
        ),
        key=lambda item: -item[0],
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_enumerate_evidences_matches_brute(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    answers = brute_force_answers(sequence, transducer)
    for answer in list(answers)[:3]:
        expected = brute_evidences(sequence, transducer, answer)
        produced = list(enumerate_evidences(sequence, transducer, answer))
        assert len(produced) == len(expected)
        # Same worlds, decreasing probabilities.
        assert {w for _p, w in produced} == {w for _p, w in expected}
        probs = [p for p, _w in produced]
        assert all(probs[i] >= probs[i + 1] - 1e-12 for i in range(len(probs) - 1))
        for got, want in zip(probs, [p for p, _w in expected]):
            assert math.isclose(got, want, abs_tol=1e-12)


def test_probabilities_sum_to_confidence() -> None:
    rng = random.Random(5)
    sequence = make_sequence("ab", 4, rng)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    answers = brute_force_answers(sequence, transducer)
    for answer, confidence in list(answers.items())[:4]:
        total = sum(p for p, _w in enumerate_evidences(sequence, transducer, answer))
        assert math.isclose(total, confidence, abs_tol=1e-9)


def test_first_evidence_is_emax() -> None:
    rng = random.Random(7)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    from repro.confidence.brute_force import brute_force_emax

    emax = brute_force_emax(sequence, transducer)
    for answer in list(emax)[:4]:
        found = best_evidence_for_answer(sequence, transducer, answer)
        assert found is not None
        score, world = found
        assert math.isclose(score, emax[answer], abs_tol=1e-12)
        assert tuple(answer) in transducer.transduce(world)


def test_explain_truncates_and_orders() -> None:
    sequence = uniform_iid("ab", 5, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "X"})  # one answer, 32 evidences
    top = explain(sequence, transducer, ("X",) * 5, k=4)
    assert len(top) == 4
    assert all(p == top[0][0] for p, _w in top)  # uniform: all evidences equal


def test_nondeterministic_evidences() -> None:
    """A world counts once even with several accepting runs emitting o."""
    nfa = NFA("a", {0, 1, 2}, 0, {1, 2}, {(0, "a"): {1, 2}})
    transducer = Transducer(nfa, {(0, "a", 1): ("x",), (0, "a", 2): ("x",)})
    sequence = uniform_iid("a", 1, exact=True)
    evidences = list(enumerate_evidences(sequence, transducer, ("x",)))
    assert evidences == [(1, ("a",))]


def test_no_evidence_for_non_answer() -> None:
    sequence = uniform_iid("ab", 3)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    assert list(enumerate_evidences(sequence, transducer, ("Z",) * 3)) == []
    assert best_evidence_for_answer(sequence, transducer, ("Z",) * 3) is None
