"""Myhill–Nerode minimality of Hopcroft's output, checked extensionally."""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.automata.determinize import determinize
from repro.automata.minimize import minimize

from tests.conftest import make_random_dfa, make_random_nfa

ALPHABET = "ab"
PROBE_LENGTH = 6


def nerode_classes(dfa, probe_length: int) -> int:
    """Number of distinguishable reachable states, by probing all strings
    up to ``probe_length`` (sound for small automata: distinguishing
    strings need at most |Q| - 1 symbols)."""
    probes = [
        tuple(p)
        for length in range(probe_length + 1)
        for p in itertools.product(ALPHABET, repeat=length)
    ]
    signatures = set()
    for state in dfa.reachable_states():
        signature = tuple(
            dfa.run(probe, start=state) in dfa.accepting for probe in probes
        )
        signatures.add(signature)
    return len(signatures)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_minimized_dfa_has_nerode_many_states(seed: int) -> None:
    rng = random.Random(seed)
    dfa = make_random_dfa(ALPHABET, 5, rng)
    minimal = minimize(dfa)
    assert len(minimal.states) == nerode_classes(dfa, PROBE_LENGTH)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_minimized_determinized_nfa(seed: int) -> None:
    rng = random.Random(seed)
    nfa = make_random_nfa(ALPHABET, 4, rng)
    dfa = determinize(nfa)
    minimal = minimize(dfa)
    assert len(minimal.states) == nerode_classes(dfa, PROBE_LENGTH)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_minimize_is_idempotent_in_size(seed: int) -> None:
    rng = random.Random(seed)
    dfa = make_random_dfa(ALPHABET, 6, rng)
    once = minimize(dfa)
    twice = minimize(once)
    assert len(once.states) == len(twice.states)
