"""Myhill–Nerode minimality of Hopcroft's output, checked extensionally."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata.determinize import determinize
from repro.automata.minimize import minimize

from tests.conftest import make_random_dfa, make_random_nfa

ALPHABET = "ab"


def nerode_classes(dfa) -> int:
    """Number of distinguishable reachable states, by Moore-style
    signature refinement run to a fixpoint.

    After round ``k`` two states share a class iff no string of length
    ``<= k`` distinguishes them; the class count is monotone and can
    only stabilize at the Nerode partition, so the fixpoint is exact for
    *any* automaton size (a fixed probe length is not: a determinized
    ``n``-state NFA can need distinguishing strings of ``2^n - 1``
    symbols).
    """
    states = sorted(dfa.reachable_states(), key=repr)
    classes = {state: int(state in dfa.accepting) for state in states}
    while True:
        keys = {
            state: (
                classes[state],
                tuple(classes[dfa.step(state, symbol)] for symbol in ALPHABET),
            )
            for state in states
        }
        ids: dict = {}
        refined = {state: ids.setdefault(keys[state], len(ids)) for state in states}
        if len(set(refined.values())) == len(set(classes.values())):
            return len(set(refined.values()))
        classes = refined


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_minimized_dfa_has_nerode_many_states(seed: int) -> None:
    rng = random.Random(seed)
    dfa = make_random_dfa(ALPHABET, 5, rng)
    minimal = minimize(dfa)
    assert len(minimal.states) == nerode_classes(dfa)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_minimized_determinized_nfa(seed: int) -> None:
    rng = random.Random(seed)
    nfa = make_random_nfa(ALPHABET, 4, rng)
    dfa = determinize(nfa)
    minimal = minimize(dfa)
    assert len(minimal.states) == nerode_classes(dfa)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_minimize_is_idempotent_in_size(seed: int) -> None:
    rng = random.Random(seed)
    dfa = make_random_dfa(ALPHABET, 6, rng)
    once = minimize(dfa)
    twice = minimize(once)
    assert len(once.states) == len(twice.states)
