"""DOT export sanity checks (Figures 1-2 regeneration)."""

from __future__ import annotations

from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.automata.regex import regex_to_dfa, regex_to_nfa
from repro.viz.dot import automaton_to_dot, sequence_to_dot, transducer_to_dot


def test_sequence_to_dot_contains_figure_1_shape() -> None:
    dot = sequence_to_dot(hospital_sequence().as_float())
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert '"r1a@1"' in dot
    assert "0.7" in dot  # the stated initial probability
    assert "start ->" in dot
    # Only positive-probability edges are drawn.
    assert dot.count("->") > 10


def test_sequence_dot_skips_unreachable_nodes() -> None:
    dot = sequence_to_dot(hospital_sequence())
    # r2b is unreachable at position 2 in our reconstruction.
    assert '"r2b@2"' not in dot


def test_automaton_to_dot() -> None:
    dot = automaton_to_dot(regex_to_dfa("a*b", "ab"))
    assert "doublecircle" in dot
    assert "circle" in dot
    nfa_dot = automaton_to_dot(regex_to_nfa("a|b", "ab"))
    assert nfa_dot.startswith("digraph")


def test_transducer_to_dot_figure_2_labels() -> None:
    dot = transducer_to_dot(room_change_transducer())
    # Figure 2 style: grouped symbols with emissions after a colon.
    assert " : 1" in dot
    assert " : ε" in dot
    assert '"q0"' in dot and '"q_lambda"' in dot
    assert "doublecircle" in dot  # accepting states


def test_quoting_of_special_characters() -> None:
    from repro.automata.dfa import DFA

    dfa = DFA('a"', {'s"'}, 's"', {'s"'}, {('s"', "a"): 's"', ('s"', '"'): 's"'})
    dot = automaton_to_dot(dfa)
    assert '\\"' in dot
