"""Answer-distribution statistics for deterministic transducers."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidTransducerError
from repro.markov.builders import uniform_iid
from repro.automata.nfa import NFA
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.transducers.library import collapse_transducer
from repro.transducers.transducer import Transducer
from repro.confidence.statistics import (
    acceptance_probability,
    expected_output_length,
    output_length_distribution,
    symbol_emission_expectations,
)

from tests.conftest import make_random_deterministic_transducer, make_sequence


def brute_length_distribution(sequence, transducer):
    lengths: dict = {}
    rejected = 0
    for world, prob in sequence.worlds():
        output = transducer.transduce_deterministic(world)
        if output is None:
            rejected += prob
        else:
            lengths[len(output)] = lengths.get(len(output), 0) + prob
    return lengths, rejected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_length_distribution_matches_brute(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    lengths, rejected = output_length_distribution(sequence, transducer)
    expected_lengths, expected_rejected = brute_length_distribution(
        sequence, transducer
    )
    assert set(lengths) == set(expected_lengths)
    for length, mass in lengths.items():
        assert math.isclose(mass, expected_lengths[length], abs_tol=1e-9)
    assert math.isclose(rejected, expected_rejected, abs_tol=1e-9)


def test_running_example_statistics() -> None:
    mu = hospital_sequence()
    query = room_change_transducer()
    lengths, rejected = output_length_distribution(mu, query)
    # The rejected mass is the probability of never visiting the lab.
    never_lab = sum(
        prob
        for world, prob in mu.worlds()
        if all(symbol not in ("la", "lb") for symbol in world)
    )
    assert rejected == never_lab
    # Distribution sums to 1 overall (exact rationals).
    assert sum(lengths.values()) + rejected == 1
    # conf(12) contributes to length 2.
    assert lengths[2] >= Fraction("0.4038")


def test_expected_length_mealy_is_n() -> None:
    sequence = uniform_iid("ab", 7, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    assert expected_output_length(sequence, transducer) == 7


def test_expected_length_conditional_vs_unconditional() -> None:
    mu = hospital_sequence()
    query = room_change_transducer()
    conditional = expected_output_length(mu, query, conditional=True)
    unconditional = expected_output_length(mu, query, conditional=False)
    assert unconditional <= conditional  # rejection mass only shrinks the mean


def test_acceptance_probability() -> None:
    mu = hospital_sequence()
    query = room_change_transducer()
    accept = acceptance_probability(mu, query)
    _lengths, rejected = output_length_distribution(mu, query)
    assert accept + rejected == 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_symbol_expectations_match_brute(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    expectations = symbol_emission_expectations(sequence, transducer)
    for out_symbol, expectation in expectations.items():
        brute = sum(
            prob * transducer.transduce_deterministic(world).count(out_symbol)
            for world, prob in sequence.worlds()
            if transducer.transduce_deterministic(world) is not None
        )
        assert math.isclose(expectation, brute, abs_tol=1e-9), out_symbol


def test_symbol_expectations_sum_to_expected_length() -> None:
    mu = hospital_sequence()
    query = room_change_transducer()
    expectations = symbol_emission_expectations(mu, query)
    unconditional_mean = expected_output_length(mu, query, conditional=False)
    assert sum(expectations.values()) == unconditional_mean


def test_rejects_nondeterministic() -> None:
    sequence = uniform_iid("a", 2)
    nondeterministic = Transducer(
        NFA("a", {0, 1}, 0, {0, 1}, {(0, "a"): {0, 1}}), {}
    )
    with pytest.raises(InvalidTransducerError):
        output_length_distribution(sequence, nondeterministic)
    with pytest.raises(InvalidTransducerError):
        symbol_emission_expectations(sequence, nondeterministic)
