"""The serve wire protocol: frames, requests, and exact number encoding."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.serve.protocol import (
    PROTOCOL,
    ProtocolError,
    decode_frame,
    decode_transition,
    decode_value,
    encode_frame,
    encode_transition,
    encode_value,
    event_frame,
    parse_request,
    response_error,
    response_ok,
)


def test_frame_roundtrip_is_one_line() -> None:
    frame = {"id": 3, "cmd": "ping", "params": {"x": [1, "a"]}}
    wire = encode_frame(frame)
    assert wire.endswith(b"\n")
    assert wire.count(b"\n") == 1
    assert decode_frame(wire) == frame
    assert decode_frame(wire.decode("utf-8")) == frame


def test_decode_frame_rejects_garbage() -> None:
    with pytest.raises(ProtocolError, match="invalid JSON"):
        decode_frame(b"{nope\n")
    with pytest.raises(ProtocolError, match="must be an object"):
        decode_frame(b"[1,2]\n")


def test_parse_request_validates_shape() -> None:
    request = parse_request({"id": 9, "cmd": "append", "params": {"stream": "s"}})
    assert (request.id, request.cmd) == (9, "append")
    assert request.params == {"stream": "s"}
    assert parse_request({"cmd": "ping"}).params == {}
    with pytest.raises(ProtocolError, match="cmd"):
        parse_request({"id": 1, "params": {}})
    with pytest.raises(ProtocolError, match="params"):
        parse_request({"cmd": "ping", "params": [1]})


def test_response_and_event_frames() -> None:
    assert response_ok(4, {"a": 1}) == {"id": 4, "ok": True, "result": {"a": 1}}
    error = response_error(None, "boom")
    assert error == {"id": None, "ok": False, "error": "boom"}
    assert event_frame("alert", {"standing": "w"}) == {
        "event": "alert",
        "data": {"standing": "w"},
    }
    assert PROTOCOL == "repro-serve/1"


def test_values_roundtrip_exactly() -> None:
    third = Fraction(1, 3)
    assert decode_value(encode_value(third)) == third
    assert encode_value(third) == "1/3"
    assert decode_value(encode_value(0.25)) == 0.25


def test_transition_roundtrip_preserves_fractions() -> None:
    transition = {
        "a": {"a": Fraction(1, 3), "b": Fraction(2, 3)},
        "b": {"a": Fraction(1, 2), "b": Fraction(1, 2)},
    }
    decoded = decode_transition(encode_transition(transition))
    assert decoded == transition
    assert all(
        isinstance(p, Fraction) for row in decoded.values() for p in row.values()
    )


def test_decode_transition_rejects_malformed() -> None:
    with pytest.raises(ProtocolError, match="transition"):
        decode_transition([1, 2])
    with pytest.raises(ProtocolError, match="malformed"):
        decode_transition({"a": [0.5, 0.5]})
