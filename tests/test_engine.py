"""The core evaluation facade: dispatch, orders, refusals."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ReproError
from repro.markov.builders import uniform_iid
from repro.automata.nfa import NFA
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.library import collapse_transducer, identity_mealy
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.transducers.transducer import Transducer
from repro.confidence.brute_force import brute_force_answers
from repro.core.engine import compute_confidence, evaluate, top_k
from repro.core.results import Answer, Order

from tests.conftest import make_sequence

ALPHABET = "ab"


def simple_projector() -> SProjector:
    return SProjector(
        sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET)
    )


def test_compute_confidence_dispatch() -> None:
    rng = random.Random(1)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = simple_projector()
    indexed = IndexedSProjector(projector.prefix, projector.pattern, projector.suffix)
    transducer = collapse_transducer({"a": "X", "b": "Y"})

    bf_t = brute_force_answers(sequence, transducer)
    for output, confidence in bf_t.items():
        assert math.isclose(
            compute_confidence(sequence, transducer, output), confidence, abs_tol=1e-9
        )
    bf_p = brute_force_answers(sequence, projector)
    for output, confidence in bf_p.items():
        assert math.isclose(
            compute_confidence(sequence, projector, output), confidence, abs_tol=1e-9
        )
    bf_i = brute_force_answers(sequence, indexed)
    for answer, confidence in bf_i.items():
        assert math.isclose(
            compute_confidence(sequence, indexed, answer), confidence, abs_tol=1e-9
        )


def test_compute_confidence_nondeterministic_gate() -> None:
    # Non-uniform nondeterministic transducer: refused without opt-in.
    nfa = NFA("a", {0, 1}, 0, {0, 1}, {(0, "a"): {0, 1}})
    transducer = Transducer(nfa, {(0, "a", 1): ("x", "y")})
    sequence = uniform_iid("a", 2, exact=True)
    with pytest.raises(ReproError):
        compute_confidence(sequence, transducer, ("x", "y"), allow_exponential=False)
    # With opt-in, the brute-force oracle runs: the single world "aa" has a
    # run 0 -> 0 -> 1 whose second step emits ("x", "y").
    assert compute_confidence(sequence, transducer, ("x", "y")) == 1


def test_unranked_order_all_query_types() -> None:
    rng = random.Random(2)
    sequence = make_sequence(ALPHABET, 3, rng)
    projector = simple_projector()
    indexed = IndexedSProjector(projector.prefix, projector.pattern, projector.suffix)
    transducer = identity_mealy(ALPHABET)

    for query in (transducer, projector, indexed):
        expected = brute_force_answers(sequence, query)
        answers = list(evaluate(sequence, query, order=Order.UNRANKED))
        assert {a.output for a in answers} == set(expected)
        for a in answers:
            assert math.isclose(a.confidence, expected[a.output], abs_tol=1e-9)
            assert a.order is Order.UNRANKED
            assert a.score is None


def test_emax_order_accepts_string_name() -> None:
    rng = random.Random(3)
    sequence = make_sequence(ALPHABET, 3, rng)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    answers = list(evaluate(sequence, transducer, order="emax"))
    scores = [a.score for a in answers]
    assert scores == sorted(scores, reverse=True)


def test_emax_order_indexed_projector_via_compilation() -> None:
    rng = random.Random(4)
    sequence = make_sequence(ALPHABET, 3, rng)
    projector = simple_projector()
    indexed = IndexedSProjector(projector.prefix, projector.pattern, projector.suffix)
    expected = brute_force_answers(sequence, indexed)
    answers = list(evaluate(sequence, indexed, order="emax"))
    assert {a.output for a in answers} == set(expected)
    for a in answers:
        assert math.isclose(a.confidence, expected[a.output], abs_tol=1e-9)


def test_imax_order_requires_plain_sprojector() -> None:
    rng = random.Random(5)
    sequence = make_sequence(ALPHABET, 3, rng)
    projector = simple_projector()
    answers = list(evaluate(sequence, projector, order="imax"))
    assert answers  # runs fine
    with pytest.raises(ReproError):
        list(evaluate(sequence, identity_mealy(ALPHABET), order="imax"))
    indexed = IndexedSProjector(projector.prefix, projector.pattern, projector.suffix)
    with pytest.raises(ReproError):
        list(evaluate(sequence, indexed, order="imax"))


def test_confidence_order_native_only_for_indexed() -> None:
    rng = random.Random(6)
    sequence = make_sequence(ALPHABET, 3, rng)
    projector = simple_projector()
    indexed = IndexedSProjector(projector.prefix, projector.pattern, projector.suffix)
    ranked = list(evaluate(sequence, indexed, order="confidence"))
    confidences = [a.confidence for a in ranked]
    assert confidences == sorted(confidences, reverse=True)
    with pytest.raises(ReproError):
        list(evaluate(sequence, identity_mealy(ALPHABET), order="confidence"))


def test_confidence_order_brute_force_optin() -> None:
    rng = random.Random(7)
    sequence = make_sequence(ALPHABET, 3, rng)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    expected = brute_force_answers(sequence, transducer)
    ranked = list(
        evaluate(sequence, transducer, order="confidence", allow_exponential=True)
    )
    assert {a.output for a in ranked} == set(expected)
    confidences = [a.confidence for a in ranked]
    assert confidences == sorted(confidences, reverse=True)


def test_limit_is_top_k() -> None:
    rng = random.Random(8)
    sequence = make_sequence(ALPHABET, 4, rng)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    limited = list(evaluate(sequence, transducer, order="emax", limit=2))
    assert len(limited) == 2


def test_top_k_defaults_per_class() -> None:
    rng = random.Random(9)
    sequence = make_sequence(ALPHABET, 3, rng)
    projector = simple_projector()
    indexed = IndexedSProjector(projector.prefix, projector.pattern, projector.suffix)
    assert all(a.order is Order.EMAX for a in top_k(sequence, identity_mealy(ALPHABET), 2))
    assert all(a.order is Order.IMAX for a in top_k(sequence, projector, 2))
    assert all(a.order is Order.CONFIDENCE for a in top_k(sequence, indexed, 2))


def test_with_confidence_false_skips_computation() -> None:
    rng = random.Random(10)
    sequence = make_sequence(ALPHABET, 3, rng)
    answers = list(
        evaluate(sequence, identity_mealy(ALPHABET), order="emax", with_confidence=False)
    )
    assert all(a.confidence is None for a in answers)


def test_rendered() -> None:
    assert Answer(("1", "2"), None, None, Order.UNRANKED).rendered() == "12"
    assert Answer((), None, None, Order.UNRANKED).rendered() == "ε"
    assert Answer((("a",), 3), None, None, Order.CONFIDENCE).rendered() == "(a, 3)"


def test_unsupported_query_type() -> None:
    sequence = uniform_iid(ALPHABET, 2)
    with pytest.raises(TypeError):
        compute_confidence(sequence, object(), ())
