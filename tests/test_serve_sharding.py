"""Stable stream sharding and cross-shard reads (serial == pooled)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.lahar.database import MarkovStreamDatabase
from repro.parallel import WorkerPool
from repro.serve.sharding import ShardedDatabase, shard_of
from repro.transducers.library import collapse_transducer

from tests.conftest import make_fraction_sequence, make_fraction_timestep

ALPHABET = "ab"


def collapse():
    return collapse_transducer({"a": "X", "b": "Y"})


def populated(rng, shards: int = 3, streams: int = 6) -> ShardedDatabase:
    db = ShardedDatabase(shards)
    for i in range(streams):
        db.register_stream(f"s{i}", make_fraction_sequence(ALPHABET, 3, rng))
    return db


def test_shard_of_is_stable_and_validated() -> None:
    # blake2b routing: same input, same shard, every process, every run
    assert shard_of("cart-17", 4) == shard_of("cart-17", 4)
    assert 0 <= shard_of("cart-17", 4) < 4
    assert shard_of("anything", 1) == 0
    with pytest.raises(ReproError):
        shard_of("x", 0)


def test_streams_route_to_their_shard(rng) -> None:
    db = populated(rng)
    for name in db.streams():
        index = db.shard_index(name)
        assert name in db.shard(index).streams()
        assert db.has_stream(name)
    assert sum(len(db.shard(i).streams()) for i in range(3)) == 6
    db.drop_stream("s0")
    assert not db.has_stream("s0")
    with pytest.raises(ReproError, match="unknown stream"):
        db.stream("s0")


def test_append_lands_on_owning_shard_only(rng) -> None:
    db = populated(rng)
    before = {name: db.stream(name).length for name in db.streams()}
    grown = db.append("s1", make_fraction_timestep(ALPHABET, rng))
    assert grown.length == before["s1"] + 1
    for name, length in before.items():
        if name != "s1":
            assert db.stream(name).length == length


def test_query_catalog_is_service_wide(rng) -> None:
    db = populated(rng)
    db.register_query("c", collapse())
    assert db.queries() == ["c"]
    assert db.resolve_query("c") is db.resolve_query("c")
    with pytest.raises(ReproError, match="unknown query"):
        db.resolve_query("nope")
    with pytest.raises(ReproError, match="non-empty"):
        db.register_query("", collapse())


def test_shards_share_one_plan_cache(rng) -> None:
    db = populated(rng)
    for name in db.streams():
        list(db.query(name, collapse()))
    assert db.plan_cache.misses == 1  # one shape, planned once, all shards


def test_top_k_across_pooled_matches_serial_and_flat(rng) -> None:
    db = populated(rng)
    flat = MarkovStreamDatabase()
    for name in db.streams():
        flat.register_stream(name, db.stream(name))
    want = [
        (sa.stream, sa.answer.output, sa.answer.score)
        for sa in flat.top_k_across(collapse(), 5, order="emax")
    ]
    serial = [
        (sa.stream, sa.answer.output, sa.answer.score)
        for sa in db.top_k_across(collapse(), 5, order="emax")
    ]
    with WorkerPool(2) as pool:
        pooled = [
            (sa.stream, sa.answer.output, sa.answer.score)
            for sa in db.top_k_across(collapse(), 5, order="emax", pool=pool)
        ]
        assert pool.stats.tasks == len(db.shard_chunks())
    assert serial == want
    assert pooled == want


def test_batch_confidence_pooled_matches_serial(rng) -> None:
    db = populated(rng, streams=4)
    output = ("X",) * db.stream("s0").length
    serial = db.batch_confidence(collapse(), output)
    with WorkerPool(2) as pool:
        pooled = db.batch_confidence(collapse(), output, pool=pool)
    assert pooled == serial
    assert set(serial) == set(db.streams())


def test_shard_chunks_cover_the_corpus(rng) -> None:
    db = populated(rng)
    chunks = db.shard_chunks()
    names = sorted(name for chunk in chunks for name, _sequence in chunk)
    assert names == db.streams()
    for chunk in chunks:
        owners = {db.shard_index(name) for name, _sequence in chunk}
        assert len(owners) == 1


def test_stats_reports_occupancy(rng) -> None:
    db = populated(rng)
    db.register_query("c", collapse())
    stats = db.stats()
    assert stats["shards"] == 3
    assert stats["streams"] == 6
    assert sum(stats["streams_per_shard"]) == 6
    assert stats["queries"] == 1
    assert "plans" not in stats["plan_cache"]
    with pytest.raises(ReproError):
        ShardedDatabase(0)
