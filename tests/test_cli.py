"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.io.json_format import write_query, write_sequence
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.sprojector import IndexedSProjector


@pytest.fixture
def files(tmp_path):
    seq_path = tmp_path / "mu.json"
    query_path = tmp_path / "query.json"
    write_sequence(hospital_sequence(), seq_path)
    write_query(room_change_transducer(), query_path)
    return str(seq_path), str(query_path)


def test_info(files, capsys) -> None:
    seq, query = files
    assert main(["info", "--sequence", seq, "--query", query]) == 0
    out = capsys.readouterr().out
    assert "length 5" in out
    assert "deterministic" in out
    assert "selective" in out


def test_sample(files, capsys) -> None:
    seq, _query = files
    assert main(["sample", "--sequence", seq, "--count", "3", "--seed", "1"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 3
    assert all(len(line.split()) == 5 for line in lines)


def test_evaluate_emax(files, capsys) -> None:
    seq, query = files
    assert (
        main(
            [
                "evaluate",
                "--sequence", seq,
                "--query", query,
                "--order", "emax",
                "--limit", "2",
            ]
        )
        == 0
    )
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("12")
    assert "confidence=0.4038" in lines[0]


def test_confidence(files, capsys) -> None:
    seq, query = files
    assert (
        main(["confidence", "--sequence", seq, "--query", query, "--answer", "1,2"])
        == 0
    )
    assert capsys.readouterr().out.strip() == "0.4038"


def test_confidence_indexed_requires_index(tmp_path, capsys) -> None:
    alphabet = ("r1a", "r1b", "r2a", "r2b", "la", "lb")
    projector = IndexedSProjector(
        sigma_star(alphabet),
        regex_to_dfa(".", alphabet),
        sigma_star(alphabet),
    )
    seq_path = tmp_path / "mu.json"
    query_path = tmp_path / "p.json"
    write_sequence(hospital_sequence(), seq_path)
    write_query(projector, query_path)
    code = main(
        ["confidence", "--sequence", str(seq_path), "--query", str(query_path),
         "--answer", "r1a"]
    )
    assert code == 2  # missing --index is a user error
    assert "index" in capsys.readouterr().err
    assert (
        main(
            ["confidence", "--sequence", str(seq_path), "--query", str(query_path),
             "--answer", "r1a", "--index", "1"]
        )
        == 0
    )
    value = float(capsys.readouterr().out)
    assert abs(value - 0.7) < 1e-9  # Pr(S_1 = r1a)


def test_top_k(files, capsys) -> None:
    seq, query = files
    assert main(["top-k", "--sequence", seq, "--query", query, "-k", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("12")


def test_profile(files, capsys) -> None:
    seq, query = files
    assert main(["profile", "--sequence", seq, "--query", query]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 5  # one row per position
    for line in lines:
        position, probability, _bar = line.split("\t")
        assert 0.0 <= float(probability) <= 1.0


def test_dot(files, capsys) -> None:
    seq, query = files
    assert main(["dot", "--sequence", seq]) == 0
    assert capsys.readouterr().out.startswith("digraph")
    assert main(["dot", "--query", query]) == 0
    assert "doublecircle" in capsys.readouterr().out


def test_dot_requires_input(capsys) -> None:
    assert main(["dot"]) == 2
    assert "error" in capsys.readouterr().err
