"""Weighted-DAG path enumeration (the Theorem 5.7 workhorse)."""

from __future__ import annotations

import itertools
import random
from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.enumeration.constraints import PrefixConstraint
from repro.enumeration.pathenum import WeightedDAG


def brute_paths(dag: WeightedDAG, source, sink):
    """All source→sink paths by DFS, as (weight, labels)."""
    results = []

    def walk(node, weight, labels):
        if node == sink:
            results.append((weight, tuple(labels)))
            return
        for target, edge_weight, label in dag.out_edges(node):
            walk(target, weight * edge_weight, labels + [label])

    walk(source, 1, [])
    return results


def layered_random_dag(rng: random.Random, layers: int = 4, width: int = 3) -> WeightedDAG:
    dag = WeightedDAG()
    dag.add_node("s")
    dag.add_node("t")
    nodes = [["s"]] + [
        [f"n{layer}_{i}" for i in range(width)] for layer in range(layers)
    ] + [["t"]]
    label_counter = itertools.count()
    for level, next_level in zip(nodes, nodes[1:]):
        for u in level:
            for v in next_level:
                if rng.random() < 0.7:
                    weight = Fraction(rng.randint(1, 8), 10)
                    dag.add_edge(u, v, weight, f"e{next(label_counter)}")
    return dag


def test_topological_order_and_cycle_detection() -> None:
    dag = WeightedDAG()
    dag.add_edge("a", "b", 1)
    dag.add_edge("b", "c", 1)
    order = dag.topological_order()
    assert order.index("a") < order.index("b") < order.index("c")
    cyclic = WeightedDAG()
    cyclic.add_edge("a", "b", 1)
    cyclic.add_edge("b", "a", 1)
    with pytest.raises(ReproError):
        cyclic.topological_order()


def test_zero_weight_edges_dropped() -> None:
    dag = WeightedDAG()
    dag.add_edge("a", "b", 0)
    assert dag.num_edges == 0


def test_potentials() -> None:
    dag = WeightedDAG()
    dag.add_edge("s", "m", Fraction(1, 2))
    dag.add_edge("m", "t", Fraction(1, 3))
    dag.add_edge("s", "t", Fraction(1, 10))
    potential = dag.potentials("t")
    assert potential["t"] == 1
    assert potential["m"] == Fraction(1, 3)
    assert potential["s"] == Fraction(1, 6)


def test_paths_decreasing_matches_brute_force() -> None:
    rng = random.Random(7)
    for _ in range(5):
        dag = layered_random_dag(rng)
        expected = sorted(brute_paths(dag, "s", "t"), key=lambda p: -p[0])
        produced = list(dag.paths_decreasing("s", "t"))
        assert len(produced) == len(expected)
        # Same multiset of (weight, labels); weights in non-increasing order.
        assert sorted(produced) == sorted(expected)
        weights = [w for w, _l in produced]
        assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))


def test_paths_decreasing_no_path() -> None:
    dag = WeightedDAG()
    dag.add_node("s")
    dag.add_node("t")
    dag.add_edge("s", "x", Fraction(1, 2))
    assert list(dag.paths_decreasing("s", "t")) == []


def test_parallel_edges_are_distinct_paths() -> None:
    dag = WeightedDAG()
    dag.add_edge("s", "t", Fraction(1, 2), "hi")
    dag.add_edge("s", "t", Fraction(1, 3), "lo")
    paths = list(dag.paths_decreasing("s", "t"))
    assert paths == [(Fraction(1, 2), ("hi",)), (Fraction(1, 3), ("lo",))]


def test_best_path_constrained() -> None:
    # Edges labeled with their emitted symbol; constraint on the string.
    dag = WeightedDAG()
    dag.add_edge("s", "a1", Fraction(1, 2), ("sym", "a"))
    dag.add_edge("s", "b1", Fraction(1, 3), ("sym", "b"))
    dag.add_edge("a1", "t", Fraction(1, 2), ("sym", "a"))
    dag.add_edge("b1", "t", Fraction(1, 1), ("sym", "b"))

    def emitted(label):
        return (label[1],)

    unconstrained = dag.best_path_constrained("s", "t", PrefixConstraint(), emitted)
    assert unconstrained[0] == Fraction(1, 3)  # path bb: 1/3 * 1 > 1/4
    starts_a = dag.best_path_constrained(
        "s", "t", PrefixConstraint.with_prefix(("a",)), emitted
    )
    assert starts_a[0] == Fraction(1, 4)
    assert [emitted(l)[0] for l in starts_a[1]] == ["a", "a"]
    exact_ab = dag.best_path_constrained(
        "s", "t", PrefixConstraint.exact_string(("a", "b")), emitted
    )
    assert exact_ab is None  # no a-then-b path exists


def test_best_path_constrained_matches_filtered_brute() -> None:
    rng = random.Random(11)
    dag = WeightedDAG()
    # Random layered DAG with symbol labels.
    symbols = "xy"
    for layer in range(3):
        for i in range(2):
            for j in range(2):
                u = "s" if layer == 0 else f"n{layer}_{i}"
                v = "t" if layer == 2 else f"n{layer + 1}_{j}"
                if rng.random() < 0.8:
                    dag.add_edge(
                        u, v, Fraction(rng.randint(1, 5), 6), ("sym", rng.choice(symbols))
                    )

    def emitted(label):
        return (label[1],)

    for prefix in [(), ("x",), ("x", "y"), ("y", "y", "y")]:
        constraint = PrefixConstraint.with_prefix(prefix)
        matching = [
            (w, labels)
            for w, labels in brute_paths(dag, "s", "t")
            if constraint.admits(tuple(emitted(l)[0] for l in labels))
        ]
        found = dag.best_path_constrained("s", "t", constraint, emitted)
        if not matching:
            assert found is None
        else:
            assert found[0] == max(w for w, _l in matching)
