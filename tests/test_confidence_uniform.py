"""Theorem 4.8: subset-DP confidence for uniform nondeterministic transducers."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidTransducerError
from repro.markov.builders import uniform_iid
from repro.automata.nfa import NFA
from repro.transducers.transducer import Transducer
from repro.confidence.brute_force import brute_force_answers
from repro.confidence.uniform_subset import confidence_uniform

from tests.conftest import make_random_uniform_transducer, make_sequence


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), k=st.integers(1, 2), length=st.integers(1, 4))
def test_matches_brute_force(seed: int, k: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", length, rng)
    transducer = make_random_uniform_transducer("ab", 3, rng, k=k)
    expected = brute_force_answers(sequence, transducer)
    for output, confidence in expected.items():
        computed = confidence_uniform(sequence, transducer, output)
        assert math.isclose(computed, confidence, abs_tol=1e-9), output


def test_wrong_length_output_is_zero() -> None:
    rng = random.Random(0)
    transducer = make_random_uniform_transducer("ab", 2, rng, k=2)
    sequence = uniform_iid("ab", 3)
    assert confidence_uniform(sequence, transducer, ("x",) * 5) == 0


def test_zero_uniform_accept_probability() -> None:
    # 0-uniform: conf(()) = Pr(S in L(A)) even for a nondeterministic A.
    nfa = NFA(
        "ab",
        {0, 1},
        0,
        {1},
        {(0, "a"): {0, 1}, (0, "b"): {0}},  # nondeterministic 'ends after an a'
    )
    transducer = Transducer(nfa, {})
    sequence = uniform_iid("ab", 3, exact=True)
    expected = sum(
        prob for world, prob in sequence.worlds() if nfa.accepts(world)
    )
    assert confidence_uniform(sequence, transducer, ()) == expected


def test_no_double_counting_with_multiple_accepting_runs() -> None:
    """A world with several accepting runs emitting the same output must be
    counted once — the defining subtlety of the subset construction."""
    nfa = NFA("a", {0, 1, 2}, 0, {1, 2}, {(0, "a"): {1, 2}})
    transducer = Transducer(nfa, {(0, "a", 1): ("x",), (0, "a", 2): ("x",)})
    sequence = uniform_iid("a", 1, exact=True)
    # The single world has two accepting runs, both emitting "x".
    assert confidence_uniform(sequence, transducer, ("x",)) == 1


def test_rejects_non_uniform() -> None:
    nfa = NFA("a", {0, 1}, 0, {0, 1}, {(0, "a"): {0, 1}})
    transducer = Transducer(nfa, {(0, "a", 1): ("x", "y")})
    with pytest.raises(InvalidTransducerError):
        confidence_uniform(uniform_iid("a", 2), transducer, ("x",))


def test_exact_fractions() -> None:
    nfa = NFA("ab", {0, 1}, 0, {1}, {(0, "a"): {0, 1}, (0, "b"): {0}, (1, "a"): {1}, (1, "b"): {1}})
    omega = {triple: ("1",) for triple in
             [(q, s, t) for (q, s), ts in nfa.delta_dict().items() for t in ts]}
    transducer = Transducer(nfa, omega)
    sequence = uniform_iid("ab", 4, exact=True)
    value = confidence_uniform(sequence, transducer, ("1",) * 4)
    brute = brute_force_answers(sequence, transducer).get(("1",) * 4, Fraction(0))
    assert value == brute
    assert isinstance(value, Fraction)
