"""The paper's running example, reproduced exactly (Figures 1-2, Table 1).

Every number the paper states about the hospital example is asserted here
with exact rational arithmetic: the Table 1 probabilities and outputs, the
conf(12) = 0.4038 computation of Example 3.4, the E_max value of
Example 4.2, and the transducer-class observations of Example 3.3.
"""

from __future__ import annotations

from fractions import Fraction

from repro.examples_data.hospital import (
    CONF_12,
    TABLE_1_ROWS,
    hospital_sequence,
    room_change_transducer,
)
from repro.confidence.brute_force import (
    brute_force_answers,
    brute_force_emax,
    brute_force_top_answer,
)
from repro.confidence.deterministic import confidence_deterministic
from repro.core.engine import evaluate, top_k
from repro.enumeration.emax import enumerate_emax
from repro.enumeration.unranked import enumerate_unranked
from repro.semiring import VITERBI


def test_table_1_probabilities_exact() -> None:
    mu = hospital_sequence()
    for name, world, probability, _output in TABLE_1_ROWS:
        assert mu.prob_of(world) == probability, name


def test_table_1_outputs() -> None:
    transducer = room_change_transducer()
    for name, world, _probability, output in TABLE_1_ROWS:
        result = transducer.transduce_deterministic(world)
        if output is None:
            assert result is None, name  # "N/A": rejected by A
        elif output == "ε":
            assert result == (), name
        else:
            assert result == tuple(output), name


def test_example_3_2_factorization_of_s() -> None:
    mu = hospital_sequence()
    factors = (
        mu.initial_prob("r1a"),
        mu.transition_prob(1, "r1a", "la"),
        mu.transition_prob(2, "la", "la"),
        mu.transition_prob(3, "la", "r1a"),
        mu.transition_prob(4, "r1a", "r2a"),
    )
    assert factors == (
        Fraction("0.7"),
        Fraction("0.9"),
        Fraction("0.9"),
        Fraction("0.7"),
        Fraction(1),
    )


def test_stated_figure_1_probabilities() -> None:
    mu = hospital_sequence()
    assert mu.initial_prob("r1a") == Fraction("0.7")
    assert mu.transition_prob(3, "la", "lb") == Fraction("0.1")


def test_example_3_4_confidence_of_12() -> None:
    mu = hospital_sequence()
    transducer = room_change_transducer()
    assert confidence_deterministic(mu, transducer, ("1", "2")) == CONF_12
    assert CONF_12 == Fraction("0.4038")


def test_worlds_transduced_into_12_are_exactly_s_t_u() -> None:
    mu = hospital_sequence()
    transducer = room_change_transducer()
    witnesses = {
        world
        for world, prob in mu.worlds()
        if transducer.transduce_deterministic(world) == ("1", "2")
    }
    expected = {world for name, world, _p, out in TABLE_1_ROWS if out == "12"}
    assert witnesses == expected


def test_example_3_4_answer_set_contains_stated_answers() -> None:
    mu = hospital_sequence()
    transducer = room_change_transducer()
    answers = set(enumerate_unranked(mu, transducer))
    assert ("1", "2") in answers
    assert ("2", "1", "λ") in answers
    assert () in answers


def test_example_3_3_transducer_class() -> None:
    transducer = room_change_transducer()
    assert transducer.is_deterministic()
    assert transducer.is_selective()
    assert not transducer.is_uniform()
    assert set(transducer.output_alphabet) == {"1", "2", "λ"}
    assert len(transducer.nfa.states) == 4


def test_acceptance_means_visiting_the_lab() -> None:
    transducer = room_change_transducer()
    assert transducer.transduce_deterministic(("r1a",) * 5) is None
    assert transducer.transduce_deterministic(("r1a", "la", "r1a", "r1a", "r1a")) == ("1",)


def test_example_4_2_emax_of_12() -> None:
    mu = hospital_sequence()
    transducer = room_change_transducer()
    emax = confidence_deterministic(mu, transducer, ("1", "2"), semiring=VITERBI)
    assert emax == Fraction("0.3969")
    assert brute_force_emax(mu, transducer)[("1", "2")] == Fraction("0.3969")


def test_emax_enumeration_starts_with_12() -> None:
    mu = hospital_sequence()
    transducer = room_change_transducer()
    ranked = list(enumerate_emax(mu, transducer))
    assert ranked[0] == (Fraction("0.3969"), ("1", "2"))
    scores = [score for score, _o in ranked]
    assert scores == sorted(scores, reverse=True)
    assert {o for _s, o in ranked} == set(brute_force_answers(mu, transducer))


def test_top_answer_by_confidence_is_12() -> None:
    mu = hospital_sequence()
    transducer = room_change_transducer()
    answer, confidence = brute_force_top_answer(mu, transducer)
    assert answer == ("1", "2")
    assert confidence == CONF_12


def test_engine_end_to_end() -> None:
    mu = hospital_sequence()
    transducer = room_change_transducer()
    answers = top_k(mu, transducer, 2)
    assert answers[0].output == ("1", "2")
    assert answers[0].confidence == CONF_12
    assert answers[0].rendered() == "12"
    unranked = list(evaluate(mu, transducer, order="unranked"))
    assert {a.output for a in unranked} == set(
        brute_force_answers(mu, transducer)
    )
