"""The automaton algebra: products, complement, reversal, concatenation."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidAutomatonError
from repro.automata.operations import (
    chain_automaton,
    complement,
    concatenate,
    difference,
    empty_string_only,
    intersect,
    reverse,
    sigma_star,
    union,
)
from repro.automata.regex import regex_to_dfa, regex_to_nfa

from tests.conftest import make_random_dfa, make_random_nfa


def all_strings(alphabet: str, max_length: int):
    for length in range(max_length + 1):
        yield from itertools.product(alphabet, repeat=length)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_boolean_algebra(seed: int) -> None:
    rng = random.Random(seed)
    left = make_random_dfa("ab", 4, rng)
    right = make_random_dfa("ab", 4, rng)
    both = intersect(left, right)
    either = union(left, right)
    minus = difference(left, right)
    neg = complement(left)
    for string in all_strings("ab", 5):
        in_l, in_r = left.accepts(string), right.accepts(string)
        assert both.accepts(string) == (in_l and in_r)
        assert either.accepts(string) == (in_l or in_r)
        assert minus.accepts(string) == (in_l and not in_r)
        assert neg.accepts(string) == (not in_l)


def test_alphabet_mismatch_raises() -> None:
    with pytest.raises(InvalidAutomatonError):
        intersect(regex_to_dfa("a", "a"), regex_to_dfa("a", "ab"))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_reverse(seed: int) -> None:
    rng = random.Random(seed)
    nfa = make_random_nfa("ab", 4, rng)
    rev = reverse(nfa)
    for string in all_strings("ab", 5):
        assert rev.accepts(string) == nfa.accepts(tuple(reversed(string)))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_concatenate(seed: int) -> None:
    rng = random.Random(seed)
    first = make_random_nfa("ab", 3, rng)
    second = make_random_nfa("ab", 3, rng)
    concat = concatenate(first, second)
    for string in all_strings("ab", 5):
        expected = any(
            first.accepts(string[:i]) and second.accepts(string[i:])
            for i in range(len(string) + 1)
        )
        assert concat.accepts(string) == expected, string


def test_concatenate_empty_string_cases() -> None:
    eps = regex_to_nfa("", "ab")  # accepts only epsilon
    a = regex_to_nfa("a", "ab")
    assert concatenate(eps, a).accepts("a")
    assert concatenate(a, eps).accepts("a")
    assert concatenate(eps, eps).accepts("")
    assert not concatenate(eps, eps).accepts("a")


def test_chain_automaton() -> None:
    chain = chain_automaton(("a", "b", "a"), "ab")
    assert chain.accepts("aba")
    assert not chain.accepts("ab")
    assert not chain.accepts("abaa")
    empty_chain = chain_automaton((), "ab")
    assert empty_chain.accepts("")
    assert not empty_chain.accepts("a")


def test_chain_automaton_rejects_foreign_symbols() -> None:
    with pytest.raises(InvalidAutomatonError):
        chain_automaton(("z",), "ab")


def test_sigma_star_and_empty_string_only() -> None:
    star = sigma_star("ab")
    assert star.accepts_everything()
    eps_only = empty_string_only("ab")
    assert eps_only.accepts("")
    assert not eps_only.accepts("a")
    assert not eps_only.accepts("ba")


def test_bae_concatenation_for_sprojector_language() -> None:
    """The Theorem 5.5 shape: L(B) . {o} . L(E)."""
    alphabet = "ab"
    b = regex_to_nfa(".*", alphabet)
    e = regex_to_nfa("b*", alphabet)
    o = ("a", "b")
    language = concatenate(concatenate(b, chain_automaton(o, alphabet)), e)
    for string in all_strings(alphabet, 6):
        expected = any(
            string[i : i + 2] == o and all(c == "b" for c in string[i + 2 :])
            for i in range(len(string) - 1)
        )
        assert language.accepts(string) == expected, string
