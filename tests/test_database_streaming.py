"""MarkovStreamDatabase: appends, plan caching, and the top-k fixes."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.automata.nfa import NFA
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.core.engine import evaluate, top_k
from repro.lahar.database import MarkovStreamDatabase
from repro.runtime.cache import PlanCache
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import IndexedSProjector
from repro.transducers.transducer import Transducer

from tests.conftest import (
    make_fraction_sequence,
    make_fraction_timestep,
    make_sequence,
)

ALPHABET = "ab"


def collapse():
    return collapse_transducer({"a": "X", "b": "Y"})


def general_transducer() -> Transducer:
    nfa = NFA(
        ALPHABET,
        ["p", "q"],
        "p",
        {"p", "q"},
        {("p", "a"): {"p", "q"}, ("p", "b"): {"p"}, ("q", "a"): {"q"}, ("q", "b"): {"q"}},
    )
    omega = {move: ("x",) for move in nfa.transitions()}
    omega[("p", "a", "q")] = ()
    return Transducer(nfa, omega)


def answers_of(iterator):
    return [(a.output, a.confidence) for a in iterator]


def make_db(rng, length: int = 3) -> MarkovStreamDatabase:
    db = MarkovStreamDatabase()
    db.register_stream("tag", make_fraction_sequence(ALPHABET, length, rng))
    return db


def test_append_grows_stream_and_matches_scratch(rng) -> None:
    db = make_db(rng)
    query = collapse()
    before = answers_of(db.query("tag", query))  # attaches the evaluator
    assert before == answers_of(evaluate(db.stream("tag"), query))
    for _ in range(3):
        grown = db.append("tag", make_fraction_timestep(ALPHABET, rng))
        assert db.stream("tag").length == grown.length
        assert answers_of(db.query("tag", query)) == answers_of(
            evaluate(db.stream("tag"), query)
        )


def test_warm_reads_reuse_evaluator_and_plan(rng) -> None:
    db = make_db(rng)
    query = collapse()
    first = answers_of(db.query("tag", query))
    evaluator = db.streaming_evaluator("tag", query)
    assert answers_of(db.query("tag", collapse())) == first
    # Same live evaluator, same cached plan, across separately built queries.
    assert db.streaming_evaluator("tag", collapse()) is evaluator
    assert db.plan(collapse()) is evaluator.plan
    assert db.plan_cache.hits > 0


def test_streaming_evaluator_opt_in_for_nondeterministic(rng) -> None:
    db = make_db(rng)
    query = general_transducer()
    assert not db.plan(query).supports_streaming()
    evaluator = db.streaming_evaluator("tag", query)  # explicit opt-in works
    db.append("tag", make_fraction_timestep(ALPHABET, rng))
    assert evaluator.confidences() == {
        a.output: a.confidence
        for a in evaluate(db.stream("tag"), query, allow_exponential=True)
    }


def test_register_stream_replacement_resets_evaluators(rng) -> None:
    db = make_db(rng)
    query = collapse()
    db.query("tag", query)
    replacement = make_fraction_sequence(ALPHABET, 4, rng)
    db.register_stream("tag", replacement)
    assert answers_of(db.query("tag", query)) == answers_of(
        evaluate(replacement, query)
    )


def test_drop_stream_detaches_evaluators(rng) -> None:
    db = make_db(rng)
    db.query("tag", collapse())
    db.drop_stream("tag")
    with pytest.raises(ReproError):
        db.append("tag", make_fraction_timestep(ALPHABET, rng))


def test_append_rejects_invalid_timestep_atomically(rng) -> None:
    """A malformed timestep must not mutate the stream OR the attached
    evaluators — validation happens before anything moves."""
    db = make_db(rng)
    query = collapse()
    before_answers = answers_of(db.query("tag", query))  # attaches evaluator
    before_length = db.stream("tag").length
    bad = make_fraction_timestep(ALPHABET, rng)
    bad["a"] = {symbol: p / 2 for symbol, p in bad["a"].items()}  # sums to 1/2
    with pytest.raises(ReproError):
        db.append("tag", bad)
    assert db.stream("tag").length == before_length
    assert answers_of(db.query("tag", query)) == before_answers
    # and the database is not wedged: a good append still lands warm
    db.append("tag", make_fraction_timestep(ALPHABET, rng))
    assert answers_of(db.query("tag", query)) == answers_of(
        evaluate(db.stream("tag"), query)
    )


def test_append_rolls_back_all_evaluators_when_one_fails(rng) -> None:
    """If advancing evaluator N fails, evaluators 1..N-1 are rolled back:
    no evaluator can end up one layer ahead of its stream."""
    db = make_db(rng)
    healthy = db.streaming_evaluator("tag", collapse())
    poisoned = db.streaming_evaluator("tag", general_transducer())
    db.query("tag", collapse())
    before = healthy.confidences()
    before_length = db.stream("tag").length

    boom = RuntimeError("evaluator meltdown")
    original = poisoned.append
    poisoned.append = lambda transition: (_ for _ in ()).throw(boom)
    with pytest.raises(RuntimeError, match="meltdown"):
        db.append("tag", make_fraction_timestep(ALPHABET, rng))
    poisoned.append = original

    # nothing moved: stream, healthy evaluator, poisoned evaluator
    assert db.stream("tag").length == before_length
    assert healthy.length == before_length
    assert poisoned.length == before_length
    assert healthy.confidences() == before
    # and the next good append advances everyone in lockstep
    db.append("tag", make_fraction_timestep(ALPHABET, rng))
    assert healthy.length == db.stream("tag").length
    assert poisoned.length == db.stream("tag").length
    assert healthy.confidences() == {
        a.output: a.confidence for a in evaluate(db.stream("tag"), collapse())
    }


def test_query_min_confidence_passes_through(rng) -> None:
    db = make_db(rng)
    query = collapse()
    full = answers_of(db.query("tag", query))
    theta = sorted(confidence for _, confidence in full)[len(full) // 2]
    got = answers_of(db.query("tag", query, min_confidence=theta))
    assert got == [(o, c) for o, c in full if c >= theta]


def test_top_k_plumbs_allow_exponential(rng) -> None:
    """The stream-level top_k used to drop allow_exponential on the floor,
    so oracle-backed orders were unreachable through the database."""
    db = make_db(rng)
    query = collapse()
    with pytest.raises(ReproError, match="allow_exponential"):
        db.top_k("tag", query, 3, order="confidence")
    got = db.top_k("tag", query, 3, order="confidence", allow_exponential=True)
    want = evaluate(
        db.stream("tag"), query, order="confidence", limit=3, allow_exponential=True
    )
    assert answers_of(got) == answers_of(want)


def test_top_k_matches_engine_default_order(rng) -> None:
    db = make_db(rng)
    query = collapse()
    assert answers_of(db.top_k("tag", query, 3)) == answers_of(
        top_k(db.stream("tag"), query, 3)
    )


def test_top_k_across_unranked_is_deterministic() -> None:
    rng = random.Random(29)
    db = MarkovStreamDatabase()
    for name in ("s2", "s1"):
        db.register_stream(name, make_sequence(ALPHABET, 3, rng))
    merged = db.top_k_across(collapse(), 100, order="unranked")
    assert merged and all(sa.answer.score is None for sa in merged)
    keys = [(sa.stream, sa.answer.rendered()) for sa in merged]
    assert keys == sorted(keys)


def test_top_k_across_ranked_merge(rng) -> None:
    db = MarkovStreamDatabase()
    sequences = {name: make_fraction_sequence(ALPHABET, 3, rng) for name in ("s1", "s2")}
    for name, sequence in sequences.items():
        db.register_stream(name, sequence)
    merged = db.top_k_across(collapse(), 3, order="emax")
    scores = [sa.answer.score for sa in merged]
    assert len(merged) == 3
    assert scores == sorted(scores, reverse=True)
    best = max(
        answer.score
        for sequence in sequences.values()
        for answer in top_k(sequence, collapse(), 1)
    )
    assert merged[0].answer.score == best


def test_shared_plan_cache_across_databases(rng) -> None:
    cache = PlanCache()
    first = MarkovStreamDatabase(plan_cache=cache)
    second = MarkovStreamDatabase(plan_cache=cache)
    assert first.plan(collapse()) is second.plan(collapse())
    assert cache.misses == 1


def test_indexed_query_streams_through_database(rng) -> None:
    db = make_db(rng)
    query = IndexedSProjector(
        sigma_star(ALPHABET), regex_to_dfa("a", ALPHABET), sigma_star(ALPHABET)
    )
    db.query("tag", query)
    db.append("tag", make_fraction_timestep(ALPHABET, rng))
    assert answers_of(db.query("tag", query)) == answers_of(
        evaluate(db.stream("tag"), query)
    )
