"""A randomized cross-validation sweep over the full query-class matrix.

Each trial draws a random small Markov sequence and a random query of one
of the four classes, then checks every applicable algorithm against the
possible-world oracle: confidence values, answer-set completeness, and
order monotonicity. This complements the per-module hypothesis tests with
whole-stack randomized coverage under one roof.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.confidence.brute_force import brute_force_answers, brute_force_emax
from repro.confidence.deterministic import confidence_deterministic
from repro.confidence.indexed import confidence_indexed
from repro.confidence.sprojector import confidence_sprojector
from repro.confidence.uniform_subset import confidence_uniform
from repro.enumeration.emax import enumerate_emax
from repro.enumeration.indexed_ranked import enumerate_indexed_ranked
from repro.enumeration.sprojector_ranked import enumerate_sprojector_imax
from repro.enumeration.unranked import enumerate_unranked
from repro.transducers.sprojector import IndexedSProjector, SProjector

from repro.oracle.generators import (
    make_random_deterministic_transducer,
    make_random_dfa,
    make_random_uniform_transducer,
    make_sequence,
)


def check_deterministic(seq, rng) -> None:
    alpha = tuple(sorted(seq.alphabet, key=repr))
    transducer = make_random_deterministic_transducer(alpha, rng.randint(2, 4), rng)
    reference = brute_force_answers(seq, transducer)
    assert set(enumerate_unranked(seq, transducer)) == set(reference)
    for output, confidence in reference.items():
        assert math.isclose(
            confidence_deterministic(seq, transducer, output), confidence, abs_tol=1e-9
        )
    emax_reference = brute_force_emax(seq, transducer)
    stream = list(enumerate_emax(seq, transducer))
    assert {o for _s, o in stream} == set(emax_reference)
    scores = [s for s, _o in stream]
    assert all(scores[i] >= scores[i + 1] - 1e-12 for i in range(len(scores) - 1))


def check_uniform(seq, rng) -> None:
    alpha = tuple(sorted(seq.alphabet, key=repr))
    transducer = make_random_uniform_transducer(
        alpha, rng.randint(2, 4), rng, k=rng.randint(1, 2)
    )
    reference = brute_force_answers(seq, transducer)
    assert set(enumerate_unranked(seq, transducer)) == set(reference)
    for output, confidence in reference.items():
        assert math.isclose(
            confidence_uniform(seq, transducer, output), confidence, abs_tol=1e-9
        )


def check_sprojector(seq, rng) -> None:
    alpha = tuple(sorted(seq.alphabet, key=repr))
    projector = SProjector(
        make_random_dfa(alpha, rng.randint(1, 3), rng),
        make_random_dfa(alpha, rng.randint(1, 3), rng),
        make_random_dfa(alpha, rng.randint(1, 3), rng),
    )
    reference = brute_force_answers(seq, projector)
    for output, confidence in reference.items():
        assert math.isclose(
            confidence_sprojector(seq, projector, output), confidence, abs_tol=1e-9
        )
    stream = list(enumerate_sprojector_imax(seq, projector))
    assert {o for _s, o in stream} == set(reference)
    for score, output in stream:
        assert score <= reference[output] + 1e-9 <= seq.length * score + 1e-9


def check_indexed(seq, rng) -> None:
    alpha = tuple(sorted(seq.alphabet, key=repr))
    projector = IndexedSProjector(
        make_random_dfa(alpha, rng.randint(1, 3), rng),
        make_random_dfa(alpha, rng.randint(1, 3), rng),
        make_random_dfa(alpha, rng.randint(1, 3), rng),
    )
    reference = brute_force_answers(seq, projector)
    ranked = list(enumerate_indexed_ranked(seq, projector))
    assert {answer for _c, answer in ranked} == set(reference)
    for confidence, (output, index) in ranked:
        assert math.isclose(confidence, reference[(output, index)], abs_tol=1e-9)
        assert math.isclose(
            confidence_indexed(seq, projector, output, index),
            confidence,
            abs_tol=1e-9,
        )
    confidences = [c for c, _a in ranked]
    assert all(
        confidences[i] >= confidences[i + 1] - 1e-12
        for i in range(len(confidences) - 1)
    )


CHECKS = (check_deterministic, check_uniform, check_sprojector, check_indexed)


@pytest.mark.parametrize("trial", range(40))
def test_fuzz_matrix(trial: int) -> None:
    rng = random.Random(990_000 + trial)
    n = rng.randint(1, 6)
    alphabet = "abc"[: rng.randint(2, 3)]
    sequence = make_sequence(alphabet, n, rng, branching=rng.choice([2, None]))
    CHECKS[trial % len(CHECKS)](sequence, rng)
