"""Lemma 5.10 / Theorem 5.2: I_max-ranked s-projector enumeration."""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.markov.builders import uniform_iid
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.confidence.brute_force import brute_force_answers
from repro.enumeration.sprojector_ranked import (
    enumerate_sprojector_imax,
    enumerate_sprojector_imax_naive,
    top_answer_imax,
)

from tests.conftest import make_random_dfa, make_sequence

ALPHABET = "abc"


def random_projector(rng: random.Random) -> SProjector:
    return SProjector(
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
    )


def brute_imax(sequence, projector):
    indexed = brute_force_answers(
        sequence, IndexedSProjector(projector.prefix, projector.pattern, projector.suffix)
    )
    scores: dict = {}
    for (output, _index), confidence in indexed.items():
        scores[output] = max(scores.get(output, 0), confidence)
    return scores


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 5))
def test_scores_order_and_dedup(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence(ALPHABET, length, rng)
    projector = random_projector(rng)
    expected = brute_imax(sequence, projector)
    produced = list(enumerate_sprojector_imax(sequence, projector))
    answers = [answer for _s, answer in produced]
    assert len(answers) == len(set(answers))  # no duplicate output strings
    assert set(answers) == set(expected)
    for score, answer in produced:
        assert math.isclose(score, expected[answer], abs_tol=1e-9), answer
    scores = [s for s, _a in produced]
    assert all(scores[i] >= scores[i + 1] - 1e-12 for i in range(len(scores) - 1))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_proposition_5_9_sandwich(seed: int) -> None:
    """I_max(o) <= conf(o) <= n * I_max(o) for every answer."""
    rng = random.Random(seed)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = random_projector(rng)
    confidences = brute_force_answers(sequence, projector)
    for score, answer, confidence in enumerate_sprojector_imax(
        sequence, projector, with_confidence=True
    ):
        assert math.isclose(confidence, confidences[answer], abs_tol=1e-9)
        assert score <= confidence + 1e-9
        assert confidence <= sequence.length * score + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_n_approximate_order(seed: int) -> None:
    """The stream is n-approximately decreasing in confidence (Thm 5.2)."""
    rng = random.Random(seed)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = random_projector(rng)
    confidences = brute_force_answers(sequence, projector)
    produced = [answer for _s, answer in enumerate_sprojector_imax(sequence, projector)]
    n = sequence.length
    for i, early in enumerate(produced):
        for late in produced[i + 1 :]:
            assert n * confidences[early] >= confidences[late] - 1e-9


def test_top_answer_imax() -> None:
    rng = random.Random(21)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = random_projector(rng)
    expected = brute_imax(sequence, projector)
    found = top_answer_imax(sequence, projector)
    if not expected:
        assert found is None
    else:
        score, _answer = found
        assert math.isclose(score, max(expected.values()), abs_tol=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_naive_dedupe_variant_agrees(seed: int) -> None:
    """Section 5.2's naive dedupe baseline produces the same scored set
    and the same non-increasing order as the Lawler-based enumerator."""
    rng = random.Random(seed)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = random_projector(rng)
    lawler = {o: s for s, o in enumerate_sprojector_imax(sequence, projector)}
    naive_stream = list(enumerate_sprojector_imax_naive(sequence, projector))
    naive = {o: s for s, o in naive_stream}
    assert set(naive) == set(lawler)
    for output, score in naive.items():
        assert math.isclose(score, lawler[output], abs_tol=1e-9)
    scores = [s for s, _o in naive_stream]
    assert all(scores[i] >= scores[i + 1] - 1e-12 for i in range(len(scores) - 1))


def test_lazy_on_large_instance() -> None:
    sequence = uniform_iid("ab", 30)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("a+", "ab"), sigma_star("ab")
    )
    iterator = enumerate_sprojector_imax(sequence, projector)
    top = [next(iterator) for _ in range(3)]
    assert [a for _s, a in top][0] == ("a",)
