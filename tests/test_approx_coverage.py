"""FPRAS coverage: every hardness family gets at least one estimator case,
and the approx engine is a covered cell of the oracle verify matrix."""

from __future__ import annotations

from fractions import Fraction
from itertools import product

import pytest

from repro.approx.fpras import approximate_confidence
from repro.automata.nfa import NFA
from repro.confidence.brute_force import brute_force_confidence
from repro.hardness.counting import (
    count_dnf_models,
    nfa_counting_instance,
    two_dnf_counting_instance,
)
from repro.hardness.gap_instances import (
    amplified_gap_instance,
    mealy_gap_instance,
    projector_gap_instance,
)
from repro.hardness.independent_set import occurrence_gap_instance
from repro.hardness.max3dnf import Max3DnfInstance
from repro.oracle.harness import verify

# ------------------------------------------------- gap_instances families


@pytest.mark.parametrize(
    "label, build",
    [
        ("mealy", lambda: mealy_gap_instance(5)),
        ("projector", lambda: projector_gap_instance(5)),
        ("amplified-mealy", lambda: amplified_gap_instance(mealy_gap_instance(3), 2)),
        (
            "amplified-projector",
            lambda: amplified_gap_instance(projector_gap_instance(3), 2),
        ),
    ],
)
def test_every_gap_family_has_an_fpras_case(label: str, build) -> None:
    gap = build()
    # The E_max-top confidence is exact in closed form for every family;
    # best_confidence is only a blockwise *lower bound* on the amplified
    # projector family (answer a^k gains splits across copies), so the
    # best answer is refereed by exact brute force instead.
    estimate = approximate_confidence(
        gap.sequence, gap.query, gap.emax_top_answer,
        epsilon=0.1, delta=0.05, seed=11,
    )
    assert estimate.certified, label
    assert estimate.contains(gap.emax_top_confidence), label
    exact_best = brute_force_confidence(gap.sequence, gap.query, gap.best_answer)
    assert exact_best >= gap.best_confidence
    estimate = approximate_confidence(
        gap.sequence, gap.query, gap.best_answer,
        epsilon=0.1, delta=0.05, seed=11,
    )
    assert estimate.certified, label
    assert estimate.contains(exact_best), (label, gap.best_answer)


# --------------------------------------- independent_set (s-projector) family


def test_occurrence_gap_family_has_an_fpras_case() -> None:
    occ = occurrence_gap_instance(5)
    exact = brute_force_confidence(occ.sequence, occ.projector, occ.answer)
    estimate = approximate_confidence(
        occ.sequence, occ.projector, occ.answer, epsilon=0.1, delta=0.05, seed=13
    )
    assert estimate.certified
    assert estimate.contains(exact)


# --------------------------------------------- counting (Theorem 4.9) chain


def test_two_dnf_reduction_has_an_fpras_case() -> None:
    clauses = [(1, 1), (2, 2), (1, 2), (2, 1)]
    instance = two_dnf_counting_instance(clauses, 2, 2)
    exact = Fraction(count_dnf_models(clauses, 2, 2), instance.scale)
    estimate = approximate_confidence(
        instance.sequence, instance.transducer, instance.answer,
        epsilon=0.1, delta=0.05, seed=17,
    )
    assert estimate.certified
    assert estimate.contains(exact)


def test_plain_nfa_counting_has_an_fpras_case() -> None:
    # |L(A) ∩ {0,1}^4| for A = "contains two consecutive 1s" — an
    # ambiguous NFA (the witness pair can be guessed at several offsets).
    nfa = NFA.from_transitions(
        ("0", "1"),
        "s",
        {"hit"},
        [
            ("s", "0", "s"),
            ("s", "1", "s"),
            ("s", "1", "one"),
            ("one", "1", "hit"),
            ("hit", "0", "hit"),
            ("hit", "1", "hit"),
        ],
    )
    instance = nfa_counting_instance(nfa, 4)
    words = [
        bits for bits in product("01", repeat=4) if "11" in "".join(bits)
    ]
    exact = Fraction(len(words), instance.scale)
    estimate = approximate_confidence(
        instance.sequence, instance.transducer, instance.answer,
        epsilon=0.1, delta=0.05, seed=19,
    )
    assert estimate.certified
    assert estimate.contains(exact)


# ------------------------------------------------- max3dnf (Theorem 4.4/4.5)


def three_dnf_to_nfa(instance: Max3DnfInstance) -> NFA:
    """Encode the 3-DNF's models as fixed-length bit strings, the same
    clause-guessing shape as :func:`repro.hardness.counting.dnf_to_nfa`
    but with three literals of either polarity per clause."""
    length = instance.num_vars
    triples = []
    for c, clause in enumerate(instance.clauses):
        required = {var + 1: "1" if polarity else "0" for var, polarity in clause}
        for pos in range(length):
            for bit in ("0", "1"):
                need = required.get(pos + 1)
                if need is not None and bit != need:
                    continue
                source = ("c", c, pos) if pos > 0 else "start"
                triples.append((source, bit, ("c", c, pos + 1)))
    accepting = {("c", c, length) for c in range(len(instance.clauses))}
    return NFA.from_transitions(("0", "1"), "start", accepting, triples)


def test_max3dnf_reduction_has_an_fpras_case() -> None:
    # Overlapping clauses so several guesses accept the same model —
    # exactly the ambiguity regime the union-of-runs correction exists for.
    formula = Max3DnfInstance(
        num_vars=5,
        clauses=(
            ((0, True), (1, True), (2, True)),
            ((0, True), (2, True), (3, False)),
            ((1, False), (3, True), (4, True)),
        ),
    )
    models = sum(
        1
        for bits in product((False, True), repeat=formula.num_vars)
        if formula.num_satisfied(bits) >= 1
    )
    instance = nfa_counting_instance(three_dnf_to_nfa(formula), formula.num_vars)
    exact = Fraction(models, instance.scale)
    estimate = approximate_confidence(
        instance.sequence, instance.transducer, instance.answer,
        epsilon=0.1, delta=0.05, seed=23,
    )
    assert estimate.certified
    assert estimate.contains(exact)
    # The sampler really worked: the clause-guessing product is ambiguous.
    assert estimate.method == "dklr"
    assert estimate.run_weight > float(exact)


# ------------------------------------------------ the verify coverage matrix


def test_verify_matrix_covers_the_approx_cell() -> None:
    report = verify(seed=3, max_rounds=2, classes=("general",))
    assert report.ok, [diff.kind for diff in report.diffs]
    assert ("general", "approx") in report.coverage
    assert ("general", "approx") not in report.untested_cells()
    assert "approx" in report.matrix_report()
