"""Boundary cases across the stack: n = 1, unary alphabets, point masses,
long emissions, empty outputs."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.markov.builders import iid, uniform_iid
from repro.markov.sequence import MarkovSequence
from repro.automata.nfa import NFA
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.library import collapse_transducer, identity_mealy
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.transducers.transducer import Transducer
from repro.confidence.brute_force import brute_force_answers
from repro.confidence.deterministic import confidence_deterministic
from repro.confidence.indexed import confidence_indexed
from repro.confidence.sprojector import confidence_sprojector
from repro.enumeration.emax import enumerate_emax
from repro.enumeration.indexed_ranked import enumerate_indexed_ranked
from repro.enumeration.unranked import enumerate_unranked
from repro.core.engine import evaluate


def test_length_one_sequence_all_paths() -> None:
    mu = iid({"a": Fraction(2, 3), "b": Fraction(1, 3)}, 1)
    query = identity_mealy("ab")
    assert set(enumerate_unranked(mu, query)) == {("a",), ("b",)}
    assert confidence_deterministic(mu, query, ("a",)) == Fraction(2, 3)
    ranked = list(enumerate_emax(mu, query))
    assert ranked[0] == (Fraction(2, 3), ("a",))

    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("a", "ab"), sigma_star("ab")
    )
    assert confidence_sprojector(mu, projector, ("a",)) == Fraction(2, 3)
    indexed = list(enumerate_indexed_ranked(mu, projector))
    assert (Fraction(2, 3), (("a",), 1)) in indexed


def test_unary_alphabet() -> None:
    mu = uniform_iid("a", 4, exact=True)
    query = identity_mealy("a")
    assert list(enumerate_unranked(mu, query)) == [("a",) * 4]
    assert confidence_deterministic(mu, query, ("a",) * 4) == 1


def test_point_mass_sequence() -> None:
    mu = MarkovSequence(
        "ab",
        {"a": 1},
        [{"a": {"b": 1}, "b": {"a": 1}}, {"a": {"b": 1}, "b": {"a": 1}}],
    )
    assert mu.support_size() == 1
    query = collapse_transducer({"a": "X", "b": "Y"})
    answers = list(evaluate(mu, query, order="emax"))
    assert len(answers) == 1
    assert answers[0].output == ("X", "Y", "X")
    assert answers[0].confidence == 1


def test_emission_longer_than_sequence_output() -> None:
    """One transition emitting three symbols; answers of length 3n."""
    nfa = NFA("a", {0}, 0, {0}, {(0, "a"): {0}})
    query = Transducer(nfa, {(0, "a", 0): ("x", "y", "z")})
    mu = uniform_iid("a", 2, exact=True)
    assert confidence_deterministic(mu, query, ("x", "y", "z") * 2) == 1
    assert confidence_deterministic(mu, query, ("x", "y")) == 0
    assert set(enumerate_unranked(mu, query)) == {("x", "y", "z") * 2}


def test_all_empty_emissions_single_epsilon_answer() -> None:
    from repro.transducers.library import accept_filter

    mu = uniform_iid("ab", 3, exact=True)
    query = accept_filter(regex_to_dfa(".*", "ab"))
    answers = list(evaluate(mu, query, order="emax"))
    assert len(answers) == 1
    assert answers[0].output == ()
    assert answers[0].confidence == 1
    # E_max of the epsilon answer is the modal world's probability.
    assert answers[0].score == Fraction(1, 8)


def test_indexed_projector_whole_string_match() -> None:
    mu = uniform_iid("ab", 3, exact=True)
    projector = SProjector(
        regex_to_dfa("", "ab"),  # empty prefix only
        regex_to_dfa("[ab]{3}", "ab"),  # whole string
        regex_to_dfa("", "ab"),  # empty suffix only
    )
    indexed = dict(
        (answer, conf) for conf, answer in enumerate_indexed_ranked(mu, projector)
    )
    assert len(indexed) == 8
    for (output, position), conf in indexed.items():
        assert position == 1 and len(output) == 3
        assert conf == Fraction(1, 8)


def test_indexed_confidence_position_boundaries() -> None:
    mu = uniform_iid("ab", 3, exact=True)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("b", "ab"), sigma_star("ab")
    )
    for position in (1, 2, 3):
        assert confidence_indexed(mu, projector, ("b",), position) == Fraction(1, 2)
    assert confidence_indexed(mu, projector, ("b",), 4) == 0


def test_selective_transducer_rejecting_everything() -> None:
    from repro.transducers.library import accept_filter

    mu = uniform_iid("ab", 2)
    query = accept_filter(regex_to_dfa("aaa", "ab"))
    assert list(evaluate(mu, query)) == []
    assert list(enumerate_emax(mu, query)) == []


def test_brute_force_matches_on_every_edge_case() -> None:
    cases = [
        (uniform_iid("a", 1, exact=True), identity_mealy("a")),
        (uniform_iid("ab", 1, exact=True), collapse_transducer({"a": "X", "b": "X"})),
    ]
    for mu, query in cases:
        bf = brute_force_answers(mu, query)
        assert set(enumerate_unranked(mu, query)) == set(bf)
        for answer, conf in bf.items():
            assert confidence_deterministic(mu, query, answer) == conf
