"""PlanCache: LRU bounds, counters, and structural sharing."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.runtime.cache import PlanCache, default_plan_cache, plan_for
from repro.runtime.plan import QueryPlan
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import SProjector

ALPHABET = "ab"


def projector(regex: str) -> SProjector:
    return SProjector(
        sigma_star(ALPHABET), regex_to_dfa(regex, ALPHABET), sigma_star(ALPHABET)
    )


def test_hit_returns_same_plan_object() -> None:
    cache = PlanCache()
    first = cache.get(projector("a+"))
    second = cache.get(projector("a+"))  # separately constructed, same shape
    assert second is first
    assert (cache.hits, cache.misses) == (1, 1)
    assert projector("a+") in cache
    assert len(cache) == 1


def test_lru_eviction_is_bounded_and_counted() -> None:
    cache = PlanCache(capacity=2)
    a = cache.get(projector("a+"))
    cache.get(projector("b+"))
    cache.get(projector("ab"))  # evicts the least recently used ("a+")
    assert len(cache) == 2
    assert cache.evictions == 1
    assert projector("a+") not in cache
    assert cache.get(projector("a+")) is not a  # rebuilt after eviction


def test_lru_recency_updates_on_hit() -> None:
    cache = PlanCache(capacity=2)
    cache.get(projector("a+"))
    cache.get(projector("b+"))
    cache.get(projector("a+"))  # refresh "a+" so "b+" is now oldest
    cache.get(projector("ab"))
    assert projector("a+") in cache
    assert projector("b+") not in cache


def test_capacity_must_be_positive() -> None:
    with pytest.raises(ReproError):
        PlanCache(capacity=0)


def test_clear_resets_counters() -> None:
    cache = PlanCache()
    cache.get(projector("a+"))
    cache.get(projector("a+"))
    cache.clear()
    assert len(cache) == 0
    assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)


def test_stats_exposes_plan_counters() -> None:
    cache = PlanCache()
    cache.get(collapse_transducer({"a": "X", "b": "Y"}))
    stats = cache.stats()
    assert stats["size"] == 1
    assert stats["misses"] == 1
    (plan_stats,) = stats["plans"].values()
    assert set(plan_stats) >= {"evaluations", "answers", "seconds", "dp_cells"}


def test_plan_for_passes_plans_through() -> None:
    plan = QueryPlan.build(projector("a+"))
    assert plan_for(plan) is plan
    cache = PlanCache()
    assert plan_for(projector("a+"), cache) is cache.get(projector("a+"))


def test_default_cache_is_a_process_singleton() -> None:
    assert default_plan_cache() is default_plan_cache()
    plan = plan_for(projector("ba"))
    assert default_plan_cache().get(projector("ba")) is plan

def test_concurrent_access_is_consistent() -> None:
    """Hammer one cache from many threads: counters must balance exactly.

    The cache serves the parallel subsystem's merge threads, so the
    OrderedDict mutations and the counters are lock-guarded; without the
    lock this test loses updates or corrupts the dict.
    """
    import threading

    cache = PlanCache(capacity=4)
    regexes = ["a+", "b+", "ab", "ba", "a*b", "b*a"]
    calls_per_thread = 30
    errors: list[BaseException] = []

    def hammer(offset: int) -> None:
        try:
            for i in range(calls_per_thread):
                regex = regexes[(offset + i) % len(regexes)]
                plan = cache.get(projector(regex))
                assert plan.kind is not None
        except BaseException as error:  # noqa: BLE001 - recorded for the assert
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert cache.hits + cache.misses == 8 * calls_per_thread
    assert len(cache) <= cache.capacity
    assert cache.misses - cache.evictions == len(cache)
