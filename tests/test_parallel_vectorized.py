"""The batched dense DP: one numpy contraction per step, many streams.

Cross-checks :func:`confidence_dense_batch` against the scalar dense DP
and the exact sparse DP stream-by-stream, and exercises the eligibility
gate that keeps the float-only fast path away from exact corpora.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import InvalidTransducerError, ReproError
from repro.confidence.dense import confidence_deterministic_dense
from repro.confidence.deterministic import confidence_deterministic
from repro.examples_data.hospital import room_change_transducer
from repro.parallel import (
    WorkerPool,
    confidence_dense_batch,
    confidence_dense_batch_named,
    dense_batch_eligible,
)
from repro.runtime.executor import run_evaluate
from repro.runtime.plan import QueryPlan
from repro.transducers.library import collapse_transducer
from repro.transducers.transducer import Transducer

from tests.conftest import make_fraction_sequence, make_sequence

ALPHABET = "ab"


def _query():
    return collapse_transducer({"a": "X", "b": "Y"})


def float_corpus(count: int, length: int = 4, seed: int = 7) -> dict:
    rng = random.Random(seed)
    return {
        f"f{i:02d}": make_sequence(ALPHABET, length, rng) for i in range(count)
    }


def some_output(corpus) -> tuple:
    plan = QueryPlan.build(_query())
    return next(iter(run_evaluate(plan, next(iter(corpus.values()))))).output


def test_batch_matches_scalar_dense_and_exact() -> None:
    corpus = float_corpus(16)
    query = _query()
    output = some_output(corpus)
    streams = list(corpus.values())
    batched = confidence_dense_batch(streams, query, output)
    assert len(batched) == 16
    for sequence, value in zip(streams, batched):
        scalar = confidence_deterministic_dense(sequence, query, output)
        exact = confidence_deterministic(sequence, query, output)
        assert value == pytest.approx(scalar, abs=1e-12)
        assert value == pytest.approx(float(exact), rel=1e-9, abs=1e-12)


def test_named_wrapper_preserves_corpus_keys() -> None:
    corpus = float_corpus(5)
    output = some_output(corpus)
    named = confidence_dense_batch_named(corpus, _query(), output)
    assert list(named) == list(corpus)
    assert list(named.values()) == confidence_dense_batch(
        list(corpus.values()), _query(), output
    )


def test_wrong_length_output_is_all_zeros() -> None:
    corpus = float_corpus(3, length=4)
    # A 1-uniform transducer on length-4 streams emits exactly 4 symbols.
    assert confidence_dense_batch(list(corpus.values()), _query(), ("X",)) == [
        0.0,
        0.0,
        0.0,
    ]


def test_empty_batch_and_mismatched_lengths_raise() -> None:
    with pytest.raises(ReproError):
        confidence_dense_batch([], _query(), ("X",))
    rng = random.Random(3)
    uneven = [make_sequence(ALPHABET, 3, rng), make_sequence(ALPHABET, 4, rng)]
    with pytest.raises(ReproError):
        confidence_dense_batch(uneven, _query(), ("X", "X", "X"))


def test_nondeterministic_transducer_rejected() -> None:
    from repro.automata.nfa import NFA

    nfa = NFA(
        ALPHABET,
        ["p", "q"],
        "p",
        {"p", "q"},
        {("p", "a"): {"p", "q"}, ("p", "b"): {"p"}, ("q", "a"): {"q"}},
    )
    query = Transducer(nfa, {m: ("x",) for m in nfa.transitions()})
    corpus = float_corpus(2, length=2)
    with pytest.raises(InvalidTransducerError):
        confidence_dense_batch(list(corpus.values()), query, ("x", "x"))


def test_eligibility_gate() -> None:
    plan = QueryPlan.build(_query())
    floats = list(float_corpus(4).values())
    assert dense_batch_eligible(plan, floats)
    # Exact Fraction streams: refused unless the caller opts out.
    rng = random.Random(5)
    exact = [make_fraction_sequence(ALPHABET, 4, rng) for _ in range(3)]
    assert not dense_batch_eligible(plan, exact)
    assert dense_batch_eligible(plan, exact, require_float=False)
    # Unequal lengths / empty corpus.
    assert not dense_batch_eligible(plan, floats + [make_sequence(ALPHABET, 2, rng)])
    assert not dense_batch_eligible(plan, [])
    # Deterministic but not uniform: emission lengths vary.
    hospital_plan = QueryPlan.build(room_change_transducer())
    assert hospital_plan.uniformity is None
    assert not dense_batch_eligible(hospital_plan, floats)


def test_pool_auto_dispatch_uses_vectorized_path() -> None:
    corpus = float_corpus(8)
    output = some_output(corpus)
    with WorkerPool(2) as pool:
        values = pool.batch_confidence(_query(), corpus, output, vectorized="auto")
        assert pool.stats.vectorized_batches == 1
        assert pool.stats.tasks == 0  # no process fan-out needed
    for name, sequence in corpus.items():
        assert values[name] == pytest.approx(
            confidence_deterministic_dense(sequence, _query(), output), abs=1e-12
        )


def test_pool_never_dispatch_stays_exact() -> None:
    rng = random.Random(21)
    corpus = {f"e{i}": make_fraction_sequence(ALPHABET, 3, rng) for i in range(4)}
    output = some_output(corpus)
    with WorkerPool(2, chunk_size=2) as pool:
        auto = pool.batch_confidence(_query(), corpus, output, vectorized="auto")
        assert pool.stats.vectorized_batches == 0  # exact corpus: gate refuses
    for name, sequence in corpus.items():
        expected = confidence_deterministic(sequence, _query(), output)
        assert auto[name] == expected  # Fraction == Fraction, bit-exact


def test_forced_vectorized_downgrades_exact_corpus() -> None:
    rng = random.Random(22)
    corpus = {f"e{i}": make_fraction_sequence(ALPHABET, 3, rng) for i in range(3)}
    output = some_output(corpus)
    with WorkerPool(1) as pool:
        forced = pool.batch_confidence(_query(), corpus, output, vectorized=True)
        assert pool.stats.vectorized_batches == 1
    for name, sequence in corpus.items():
        exact = confidence_deterministic(sequence, _query(), output)
        assert isinstance(forced[name], float)
        assert forced[name] == pytest.approx(float(exact), rel=1e-9, abs=1e-12)
