"""run_evaluate / run_top_k / batch_top_k against the engine facade."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.core.engine import evaluate, top_k
from repro.core.results import Order
from repro.runtime.cache import PlanCache
from repro.runtime.executor import batch_top_k, plan_confidence, run_evaluate, run_top_k
from repro.runtime.plan import QueryPlan
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import IndexedSProjector, SProjector

from tests.conftest import make_fraction_sequence, make_sequence

ALPHABET = "ab"


def projector(indexed: bool = False) -> SProjector:
    cls = IndexedSProjector if indexed else SProjector
    return cls(sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET))


def collapse():
    return collapse_transducer({"a": "X", "b": "Y"})


def as_tuples(answers):
    return [(a.output, a.confidence, a.score) for a in answers]


@pytest.mark.parametrize(
    "build,order",
    [
        (collapse, "unranked"),
        (collapse, "emax"),
        (projector, "unranked"),
        (projector, "imax"),
        (lambda: projector(indexed=True), "confidence"),
    ],
)
def test_prebuilt_plan_matches_engine(build, order) -> None:
    rng = random.Random(11)
    sequence = make_sequence(ALPHABET, 4, rng)
    query = build()
    plan = QueryPlan.build(query)
    assert as_tuples(run_evaluate(plan, sequence, order=order)) == as_tuples(
        evaluate(sequence, query, order=order)
    )


def test_plan_confidence_matches_engine_dispatch() -> None:
    rng = random.Random(3)
    sequence = make_fraction_sequence(ALPHABET, 4, rng)
    for build in (collapse, projector, lambda: projector(indexed=True)):
        query = build()
        plan = QueryPlan.build(query)
        for answer in evaluate(sequence, query, allow_exponential=True):
            assert plan_confidence(plan, sequence, answer.output) == answer.confidence


def test_run_top_k_uses_plan_default_order() -> None:
    rng = random.Random(5)
    sequence = make_sequence(ALPHABET, 4, rng)
    plan = QueryPlan.build(collapse())
    answers = run_top_k(plan, sequence, 3)
    assert [a.order for a in answers] == [Order.EMAX] * len(answers)
    assert as_tuples(answers) == as_tuples(top_k(sequence, collapse(), 3))


def test_limit_truncates() -> None:
    rng = random.Random(7)
    sequence = make_sequence(ALPHABET, 4, rng)
    full = list(run_evaluate(QueryPlan.build(collapse()), sequence))
    assert len(full) > 2
    limited = list(run_evaluate(QueryPlan.build(collapse()), sequence, limit=2))
    assert as_tuples(limited) == as_tuples(full)[:2]


def test_confidence_order_gated_for_non_indexed() -> None:
    rng = random.Random(9)
    sequence = make_sequence(ALPHABET, 3, rng)
    plan = QueryPlan.build(collapse())
    with pytest.raises(ReproError, match="intractable"):
        list(run_evaluate(plan, sequence, order="confidence"))
    oracle = list(run_evaluate(plan, sequence, order="confidence", allow_exponential=True))
    confidences = [a.confidence for a in oracle]
    assert confidences == sorted(confidences, reverse=True)


def test_imax_rejected_for_transducers() -> None:
    rng = random.Random(9)
    sequence = make_sequence(ALPHABET, 3, rng)
    with pytest.raises(ReproError, match="s-projector"):
        list(run_evaluate(QueryPlan.build(collapse()), sequence, order="imax"))


def test_stats_record_evaluations_and_answers() -> None:
    rng = random.Random(13)
    sequence = make_sequence(ALPHABET, 3, rng)
    plan = QueryPlan.build(collapse())
    produced = list(run_evaluate(plan, sequence))
    assert plan.stats.evaluations == 1
    assert plan.stats.answers == len(produced)
    assert plan.stats.seconds >= 0.0
    list(run_evaluate(plan, sequence, limit=1))
    assert plan.stats.evaluations == 2


def test_batch_top_k_merges_by_score() -> None:
    rng = random.Random(17)
    sequences = {name: make_sequence(ALPHABET, 4, rng) for name in ("s1", "s2", "s3")}
    plan = QueryPlan.build(collapse())
    merged = batch_top_k(plan, sequences, 4, order="emax")
    # Global top-4 of the per-stream top-4 candidate pool, by score.
    pool = [
        (name, answer)
        for name, sequence in sequences.items()
        for answer in run_top_k(plan, sequence, 4, order="emax")
    ]
    pool.sort(key=lambda item: (-item[1].score, item[0], item[1].rendered()))
    assert [(n, as_tuples([a])[0]) for n, a in merged] == [
        (n, as_tuples([a])[0]) for n, a in pool[:4]
    ]
    scores = [answer.score for _, answer in merged]
    assert scores == sorted(scores, reverse=True)


def test_batch_top_k_sorts_unranked_answers_last() -> None:
    """score=None must not masquerade as score 0 (it used to sort first
    among, and tie with, genuinely ranked answers)."""
    rng = random.Random(19)
    sequences = {name: make_sequence(ALPHABET, 3, rng) for name in ("b", "a")}
    plan = QueryPlan.build(collapse())
    merged = batch_top_k(plan, sequences, 100, order="unranked")
    assert merged and all(answer.score is None for _, answer in merged)
    keys = [(name, answer.rendered()) for name, answer in merged]
    assert keys == sorted(keys)  # deterministic (stream, output) tiebreak
    # Repeated runs are stable.
    assert keys == [
        (name, answer.rendered())
        for name, answer in batch_top_k(plan, sequences, 100, order="unranked")
    ]


def test_batch_top_k_shares_one_plan() -> None:
    rng = random.Random(23)
    sequences = {name: make_sequence(ALPHABET, 3, rng) for name in ("s1", "s2")}
    cache = PlanCache()
    batch_top_k(collapse(), sequences, 2, cache=cache)
    assert (cache.misses, len(cache)) == (1, 1)

@pytest.mark.parametrize("order", ["emax", "unranked"])
def test_batch_top_k_deferred_confidence_matches_eager(order) -> None:
    """The deterministic-plan batch path defers confidence until after the
    merge (one shared-trie DP per surviving stream); the merged answers
    must be exactly what eager per-stream evaluation produces."""
    rng = random.Random(29)
    sequences = {
        name: make_fraction_sequence(ALPHABET, 4, rng)
        for name in ("s1", "s2", "s3", "s4")
    }
    plan = QueryPlan.build(collapse())
    merged = batch_top_k(plan, sequences, 5, order=order)
    assert merged and all(answer.confidence is not None for _, answer in merged)

    # Eager replication: per-stream ranked answers, then the same merge.
    from repro.runtime.executor import _merge_rank

    candidates = [
        (name, answer)
        for name, sequence in sequences.items()
        for answer in run_top_k(plan, sequence, 5, order=order)
    ]
    candidates.sort(key=_merge_rank)
    expected = candidates[:5]
    assert [(n, a.output, a.score) for n, a in merged] == [
        (n, a.output, a.score) for n, a in expected
    ]
    # Exact Fraction equality: the trie DP computes the same numbers.
    assert [a.confidence for _, a in merged] == [a.confidence for _, a in expected]
