"""Prefix constraints and the layered product DP (has_answer / best_evidence)."""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.confidence.brute_force import brute_force_answers, brute_force_emax
from repro.enumeration.constraints import END, PrefixConstraint, best_evidence, has_answer

from tests.conftest import make_random_deterministic_transducer, make_sequence


def test_admits_semantics() -> None:
    c = PrefixConstraint(prefix=("x",), forbidden=frozenset({"y"}))
    assert c.admits(("x",))
    assert c.admits(("x", "x"))
    assert not c.admits(("x", "y"))
    assert not c.admits(("y",))
    assert not c.admits(())

    end_forbidden = PrefixConstraint(prefix=("x",), forbidden=frozenset({END}))
    assert not end_forbidden.admits(("x",))
    assert end_forbidden.admits(("x", "y"))

    exact = PrefixConstraint.exact_string(("x", "y"))
    assert exact.admits(("x", "y"))
    assert not exact.admits(("x", "y", "z"))
    assert not exact.admits(("x",))


def test_advance_and_final_ok() -> None:
    c = PrefixConstraint(prefix=("x", "y"), forbidden=frozenset({"z"}))
    assert c.advance(0, ("x",)) == 1
    assert c.advance(0, ("x", "y")) == 2
    assert c.advance(0, ("y",)) is None
    assert c.advance(2, ("z",)) is None  # forbidden next
    assert c.advance(2, ("x",)) == 3  # past
    assert c.advance(3, ("z",)) == 3  # anything past the boundary
    assert not c.final_ok(1)
    assert c.final_ok(2)
    assert c.final_ok(3)


def test_advance_multi_symbol_emission_crossing_boundary() -> None:
    c = PrefixConstraint(prefix=("x",), forbidden=frozenset({"y"}))
    # Emission "xy": matches prefix then hits forbidden next symbol.
    assert c.advance(0, ("x", "y")) is None
    assert c.advance(0, ("x", "z")) == 2


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_partition_is_a_partition(data) -> None:
    """partition_after splits the subspace exactly (checked extensionally)."""
    alphabet = ("p", "q")
    prefix = tuple(data.draw(st.lists(st.sampled_from(alphabet), max_size=2)))
    forbidden = frozenset(data.draw(st.sets(st.sampled_from([*alphabet, END]), max_size=2)))
    constraint = PrefixConstraint(prefix=prefix, forbidden=forbidden)
    answer_pool = [
        tuple(candidate)
        for length in range(4)
        for candidate in __import__("itertools").product(alphabet, repeat=length)
    ]
    admitted = [o for o in answer_pool if constraint.admits(o)]
    if not admitted:
        return
    answer = data.draw(st.sampled_from(admitted))
    children = constraint.partition_after(answer, alphabet)
    for candidate in answer_pool:
        memberships = sum(1 for child in children if child.admits(candidate))
        if candidate == answer:
            assert memberships == 0
        elif constraint.admits(candidate):
            assert memberships == 1, (candidate, answer, constraint)
        else:
            assert memberships == 0, (candidate, answer, constraint)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_has_answer_matches_brute_force(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    answers = set(brute_force_answers(sequence, transducer))
    assert has_answer(sequence, transducer) == bool(answers)
    for answer in list(answers)[:5]:
        assert has_answer(
            sequence, transducer, PrefixConstraint.exact_string(answer)
        )
        assert has_answer(
            sequence, transducer, PrefixConstraint.with_prefix(answer[:1])
        )
    assert not has_answer(
        sequence, transducer, PrefixConstraint.exact_string(("nope",) * 3)
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_best_evidence_unconstrained_matches_brute(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    emax = brute_force_emax(sequence, transducer)
    found = best_evidence(sequence, transducer)
    if not emax:
        assert found is None
        return
    score, output, world = found
    assert math.isclose(score, max(emax.values()), abs_tol=1e-9)
    # The witness world really is transduced into the output with that prob.
    assert output in transducer.transduce(world)
    assert math.isclose(sequence.prob_of(world), score, abs_tol=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_best_evidence_respects_constraints(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    emax = brute_force_emax(sequence, transducer)
    for answer in list(emax)[:3]:
        constraint = PrefixConstraint.exact_string(answer)
        found = best_evidence(sequence, transducer, constraint)
        assert found is not None
        score, output, _world = found
        assert output == answer
        assert math.isclose(score, emax[answer], abs_tol=1e-9)
