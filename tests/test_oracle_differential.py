"""The differential runner (repro.oracle.differential)."""

from __future__ import annotations

import pytest

from repro.confidence.brute_force import brute_force_answers, brute_force_confidence
from repro.oracle.differential import check_instance, pick_probes
from repro.oracle.generators import CLASS_LABELS, generate_instance
from repro.oracle.registry import ENGINES, VerifyContext


@pytest.mark.parametrize("label", CLASS_LABELS)
@pytest.mark.parametrize("trial", [0, 1, 2])
def test_all_engines_agree_on_seeded_instances(label, trial) -> None:
    instance = generate_instance(label, seed=23, trial=trial)
    result = check_instance(instance)
    assert result.ok, "\n".join(diff.describe() for diff in result.diffs)
    assert result.probes > 0
    assert (label, "brute-force") in result.coverage
    assert (label, "runtime") in result.coverage


def test_coverage_only_records_applicable_engines() -> None:
    instance = generate_instance("sprojector", seed=1)
    result = check_instance(instance)
    names = {name for _label, name in result.coverage}
    assert "dense" not in names
    assert "vectorized" not in names
    assert "log-space" not in names
    assert result.engines_run == len(names)


def test_probe_set_includes_an_impossible_answer() -> None:
    for label in CLASS_LABELS:
        instance = generate_instance(label, seed=2)
        reference = brute_force_answers(
            instance.sequence.as_fraction(), instance.query
        )
        probes = pick_probes(instance, reference, limit=3)
        zero = probes[-1]
        assert zero not in reference, label
        # The zero probe must actually be *evaluable* by the semantic
        # definition (in-alphabet for s-projectors), scoring exactly 0.
        assert brute_force_confidence(instance.sequence, instance.query, zero) == 0


def test_probes_are_ranked_by_confidence() -> None:
    instance = generate_instance("deterministic", seed=6)
    reference = brute_force_answers(instance.sequence.as_fraction(), instance.query)
    probes = pick_probes(instance, reference, limit=2)
    confidences = [reference[answer] for answer in probes[:-1]]
    assert confidences == sorted(confidences, reverse=True)
    assert len(probes) <= 3


def test_shared_context_is_left_open() -> None:
    instance = generate_instance("uniform", seed=3)
    with VerifyContext() as context:
        first = check_instance(instance, context)
        second = check_instance(instance, context, ENGINES, probe_limit=1)
        assert first.ok and second.ok
        assert second.probes <= first.probes
