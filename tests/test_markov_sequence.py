"""The Markov-sequence data model: Equation (1) semantics and transforms."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidDistributionError, InvalidMarkovSequenceError
from repro.markov.builders import iid, random_sequence, uniform_iid
from repro.markov.sequence import MarkovSequence


@pytest.fixture
def simple() -> MarkovSequence:
    half = Fraction(1, 2)
    return MarkovSequence(
        "ab",
        {"a": Fraction(3, 4), "b": Fraction(1, 4)},
        [
            {"a": {"a": half, "b": half}, "b": {"b": Fraction(1)}},
        ],
    )


def test_length_and_alphabet(simple: MarkovSequence) -> None:
    assert len(simple) == 2
    assert simple.alphabet == frozenset("ab")
    assert simple.symbols == ("a", "b")


def test_prob_of_equation_1(simple: MarkovSequence) -> None:
    assert simple.prob_of(("a", "a")) == Fraction(3, 8)
    assert simple.prob_of(("a", "b")) == Fraction(3, 8)
    assert simple.prob_of(("b", "b")) == Fraction(1, 4)
    assert simple.prob_of(("b", "a")) == 0


def test_prob_of_wrong_length(simple: MarkovSequence) -> None:
    with pytest.raises(InvalidMarkovSequenceError):
        simple.prob_of(("a",))


def test_worlds_enumerate_support(simple: MarkovSequence) -> None:
    worlds = dict(simple.worlds())
    assert worlds == {
        ("a", "a"): Fraction(3, 8),
        ("a", "b"): Fraction(3, 8),
        ("b", "b"): Fraction(1, 4),
    }
    assert sum(worlds.values()) == 1


def test_support_size(simple: MarkovSequence) -> None:
    assert simple.support_size() == 3


def test_marginals(simple: MarkovSequence) -> None:
    marginals = simple.marginals()
    assert marginals[0] == {"a": Fraction(3, 4), "b": Fraction(1, 4)}
    assert marginals[1]["b"] == Fraction(3, 8) + Fraction(1, 4)
    assert sum(marginals[1].values()) == 1


def test_successors_predecessors(simple: MarkovSequence) -> None:
    assert dict(simple.successors(1, "b")) == {"b": Fraction(1)}
    assert dict(simple.predecessors(1, "b")) == {
        "a": Fraction(1, 2),
        "b": Fraction(1),
    }
    with pytest.raises(IndexError):
        list(simple.successors(2, "a"))


def test_validation_rows_must_sum_to_one() -> None:
    with pytest.raises(InvalidDistributionError):
        MarkovSequence("ab", {"a": 1}, [{"a": {"a": 0.5}, "b": {"b": 1.0}}])
    with pytest.raises(InvalidMarkovSequenceError):
        MarkovSequence("ab", {"a": 1}, [{"a": {"a": 1.0}}])  # missing row for b
    with pytest.raises(InvalidDistributionError):
        MarkovSequence("ab", {"a": 0.5, "b": 0.6}, [])


def test_validation_unknown_symbols() -> None:
    with pytest.raises(InvalidMarkovSequenceError):
        MarkovSequence("ab", {"z": 1}, [])
    with pytest.raises(InvalidMarkovSequenceError):
        MarkovSequence("ab", {"a": 1}, [{"a": {"z": 1.0}, "b": {"b": 1.0}}])


def test_exact_validation_is_exact() -> None:
    third = Fraction(1, 3)
    MarkovSequence("abc", {"a": third, "b": third, "c": third}, [])
    with pytest.raises(InvalidDistributionError):
        MarkovSequence("ab", {"a": Fraction(1, 3), "b": Fraction(1, 3)}, [])


def test_sample_stays_in_support(simple: MarkovSequence) -> None:
    rng = random.Random(5)
    support = {w for w, _p in simple.worlds()}
    for _ in range(50):
        assert simple.sample(rng) in support


def test_sample_frequencies_roughly_match() -> None:
    sequence = iid({"a": 0.8, "b": 0.2}, 1)
    rng = random.Random(42)
    draws = [sequence.sample(rng)[0] for _ in range(4000)]
    frequency = draws.count("a") / len(draws)
    assert abs(frequency - 0.8) < 0.03


def test_as_float_and_as_fraction_roundtrip(simple: MarkovSequence) -> None:
    floated = simple.as_float()
    assert isinstance(floated.initial_prob("a"), float)
    back = floated.as_fraction()
    assert back.prob_of(("a", "a")) == Fraction(3, 8)


def test_as_fraction_renormalizes_float_drift() -> None:
    sequence = random_sequence("abc", 4, random.Random(1))
    exact = sequence.as_fraction()
    total = sum(p for _w, p in exact.worlds())
    assert total == 1  # exactly


def test_concat_independent_and_power(simple: MarkovSequence) -> None:
    doubled = simple.power(2)
    assert len(doubled) == 4
    for (w1, p1) in simple.worlds():
        for (w2, p2) in simple.worlds():
            assert doubled.prob_of(w1 + w2) == p1 * p2


def test_concat_requires_same_alphabet(simple: MarkovSequence) -> None:
    other = uniform_iid("abc", 2)
    with pytest.raises(InvalidMarkovSequenceError):
        simple.concat_independent(other)


def test_window_marginal() -> None:
    rng = random.Random(13)
    sequence = random_sequence("ab", 5, rng)
    window = sequence.window(2, 4)
    assert window.length == 3
    # Window probabilities equal summed full-world probabilities.
    for segment, _p in window.worlds():
        expected = sum(
            prob
            for world, prob in sequence.worlds()
            if world[1:4] == segment
        )
        assert math.isclose(float(window.prob_of(segment)), expected, abs_tol=1e-9)


def test_window_validation(simple: MarkovSequence) -> None:
    with pytest.raises(InvalidMarkovSequenceError):
        simple.window(0, 1)
    with pytest.raises(InvalidMarkovSequenceError):
        simple.window(2, 1)
    with pytest.raises(InvalidMarkovSequenceError):
        simple.window(1, 3)


def test_prefix(simple: MarkovSequence) -> None:
    one = simple.prefix(1)
    assert len(one) == 1
    assert one.prob_of(("a",)) == Fraction(3, 4)
    with pytest.raises(InvalidMarkovSequenceError):
        simple.prefix(3)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 5))
def test_random_sequences_are_distributions(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = random_sequence("abc", length, rng, branching=2)
    total = sum(p for _w, p in sequence.worlds())
    assert math.isclose(total, 1.0, abs_tol=1e-9)
    marginals = sequence.marginals()
    assert all(math.isclose(sum(m.values()), 1.0, abs_tol=1e-9) for m in marginals)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_marginals_match_world_aggregation(seed: int) -> None:
    rng = random.Random(seed)
    sequence = random_sequence("ab", 4, rng)
    marginals = sequence.marginals()
    for position in range(4):
        for symbol in "ab":
            aggregated = sum(
                p for w, p in sequence.worlds() if w[position] == symbol
            )
            assert math.isclose(marginals[position].get(symbol, 0.0), aggregated, abs_tol=1e-9)
