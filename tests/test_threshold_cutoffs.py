"""Early-stop cutoffs of the min_confidence filter, per order.

Each ranked order admits a sound early stop (``apply_threshold``):

* CONFIDENCE — the stream is exactly decreasing; stop at the first
  answer below the threshold.
* EMAX — ``conf(o) <= support_size * E_max(o)`` (each world contributes
  at most its probability, and there are ``support_size`` worlds), so
  scores below ``theta / support_size`` end the scan.
* IMAX — Proposition 5.9: ``conf(o) <= n * I_max(o)``, so scores below
  ``theta / n`` end the scan.

These tests verify not only *what* is yielded but *how much of the
answer stream is consumed*, using a counting spy around a synthetic
generator — an early stop that silently degrades to full consumption
would still pass a results-only test.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.confidence.brute_force import brute_force_answers
from repro.core.engine import _apply_threshold, evaluate
from repro.core.results import Answer, Order
from repro.markov.builders import uniform_iid
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import IndexedSProjector, SProjector

from tests.conftest import make_fraction_sequence

ALPHABET = "ab"


def spy(answers, consumed: list):
    for answer in answers:
        consumed.append(answer)
        yield answer


def ranked(order: Order, *pairs) -> list[Answer]:
    """Synthetic (score, confidence) answer stream for one order."""
    return [
        Answer(("o", i), confidence, score, order)
        for i, (score, confidence) in enumerate(pairs)
    ]


def test_confidence_order_stops_at_first_below() -> None:
    sequence = uniform_iid(ALPHABET, 3, exact=True)
    answers = ranked(
        Order.CONFIDENCE,
        (Fraction(3, 4), Fraction(3, 4)),
        (Fraction(1, 2), Fraction(1, 2)),
        (Fraction(1, 4), Fraction(1, 4)),
        (Fraction(1, 8), Fraction(1, 8)),
    )
    consumed: list = []
    out = list(
        _apply_threshold(
            sequence, Order.CONFIDENCE, spy(answers, consumed), Fraction(1, 2)
        )
    )
    assert [a.confidence for a in out] == [Fraction(3, 4), Fraction(1, 2)]
    # Stops on the first sub-threshold answer; the fourth is never pulled.
    assert len(consumed) == 3


def test_emax_cutoff_is_theta_over_support_size() -> None:
    sequence = uniform_iid(ALPHABET, 3, exact=True)
    assert sequence.support_size() == 8
    theta = Fraction(1, 2)  # cutoff = theta / 8 = 1/16
    answers = ranked(
        Order.EMAX,
        (Fraction(1, 2), Fraction(1, 2)),   # yielded
        (Fraction(1, 8), Fraction(1, 4)),   # above cutoff, conf below theta: skipped
        (Fraction(1, 32), Fraction(1, 4)),  # below cutoff 1/16: scan ends
        (Fraction(1, 64), Fraction(1, 1)),  # unreachable
    )
    consumed: list = []
    out = list(_apply_threshold(sequence, Order.EMAX, spy(answers, consumed), theta))
    assert [a.output for a in out] == [("o", 0)]
    assert len(consumed) == 3


def test_imax_cutoff_is_theta_over_n() -> None:
    sequence = uniform_iid(ALPHABET, 3, exact=True)
    theta = Fraction(1, 2)  # cutoff = theta / n = 1/6
    answers = ranked(
        Order.IMAX,
        (Fraction(1, 2), Fraction(1, 2)),   # yielded
        (Fraction(1, 4), Fraction(1, 4)),   # above cutoff, conf below theta: skipped
        (Fraction(1, 12), Fraction(1, 4)),  # below cutoff 1/6: scan ends
        (Fraction(1, 24), Fraction(1, 1)),  # unreachable
    )
    consumed: list = []
    out = list(_apply_threshold(sequence, Order.IMAX, spy(answers, consumed), theta))
    assert [a.output for a in out] == [("o", 0)]
    assert len(consumed) == 3


def test_unranked_filters_without_early_stop() -> None:
    """No sound cutoff exists without scores: everything is consumed."""
    sequence = uniform_iid(ALPHABET, 3, exact=True)
    answers = [
        Answer(("o", i), confidence, None, Order.UNRANKED)
        for i, confidence in enumerate(
            [Fraction(1, 4), Fraction(3, 4), Fraction(1, 8), Fraction(1, 2)]
        )
    ]
    consumed: list = []
    out = list(
        _apply_threshold(
            sequence, Order.UNRANKED, spy(answers, consumed), Fraction(1, 2)
        )
    )
    assert [a.confidence for a in out] == [Fraction(3, 4), Fraction(1, 2)]
    assert len(consumed) == 4


def projector(indexed: bool) -> SProjector:
    cls = IndexedSProjector if indexed else SProjector
    return cls(sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET))


@pytest.mark.parametrize(
    "build,order",
    [
        (lambda: collapse_transducer({"a": "X", "b": "Y"}), "emax"),
        (lambda: projector(indexed=False), "imax"),
        (lambda: projector(indexed=True), "confidence"),
    ],
)
def test_fraction_thresholds_end_to_end(build, order) -> None:
    """Exact-arithmetic integration: each ranked order with a Fraction
    threshold returns exactly the brute-force answers at or above it."""
    rng = random.Random(31)
    sequence = make_fraction_sequence(ALPHABET, 4, rng)
    query = build()
    oracle = brute_force_answers(sequence, query)
    theta = sorted(oracle.values())[len(oracle) // 2]
    assert isinstance(theta, Fraction)
    produced = {
        a.output: a.confidence
        for a in evaluate(sequence, query, order=order, min_confidence=theta)
    }
    assert produced == {
        answer: confidence
        for answer, confidence in oracle.items()
        if confidence >= theta
    }


def test_min_confidence_requires_confidences() -> None:
    sequence = uniform_iid(ALPHABET, 3, exact=True)
    query = collapse_transducer({"a": "X", "b": "Y"})
    with pytest.raises(ReproError, match="with_confidence"):
        list(
            evaluate(
                sequence,
                query,
                order="emax",
                with_confidence=False,
                min_confidence=Fraction(1, 2),
            )
        )
