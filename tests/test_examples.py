"""Every example script must run cleanly (they are part of the deliverable)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: pathlib.Path, tmp_path) -> None:
    arguments = [sys.executable, str(script)]
    if script.name == "hospital_rfid.py":
        arguments += ["--dot", str(tmp_path)]
    result = subprocess.run(
        arguments, capture_output=True, text=True, timeout=180
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
    if script.name == "hospital_rfid.py":
        assert (tmp_path / "figure1_markov_sequence.dot").exists()
        assert (tmp_path / "figure2_transducer.dot").exists()


def test_examples_exist() -> None:
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "hospital_rfid.py",
        "rfid_smoothing.py",
        "text_extraction.py",
        "stream_warehouse.py",
    } <= names
