"""Transducer semantics and class predicates (Section 3.1.1)."""

from __future__ import annotations

import random

import pytest

from repro.errors import AlphabetMismatchError, InvalidTransducerError
from repro.markov.builders import uniform_iid
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.transducers.library import (
    accept_filter,
    collapse_transducer,
    identity_mealy,
    projector_from_dfa,
    relabel_mealy,
)
from repro.transducers.transducer import Transducer


def two_state_dfa() -> DFA:
    return DFA(
        "ab",
        {0, 1},
        0,
        {1},
        {(0, "a"): 1, (0, "b"): 0, (1, "a"): 1, (1, "b"): 0},
    )


def test_identity_mealy_copies_input() -> None:
    t = identity_mealy("ab")
    assert t.transduce_deterministic(("a", "b", "a")) == ("a", "b", "a")
    assert t.is_mealy()
    assert t.is_projector()
    assert not t.is_selective()


def test_relabel_and_collapse() -> None:
    t = relabel_mealy({"a": "X", "b": "Y"})
    assert t.transduce_deterministic(("a", "b")) == ("X", "Y")
    c = collapse_transducer({"a": "Z", "b": "Z"})
    assert c.transduce_deterministic(("a", "b")) == ("Z", "Z")
    assert c.is_mealy()
    assert not c.is_projector()


def test_accept_filter_is_0_uniform() -> None:
    t = accept_filter(two_state_dfa())
    assert t.uniformity() == 0
    assert t.is_selective()
    assert t.transduce_deterministic(("a",)) == ()
    assert t.transduce_deterministic(("b",)) is None  # rejected


def test_projector_from_dfa() -> None:
    t = projector_from_dfa(two_state_dfa(), keep={"a"})
    assert t.is_projector()
    assert t.transduce_deterministic(("b", "a")) == ("a",)
    assert t.transduce_deterministic(("a", "b")) is None
    with pytest.raises(InvalidTransducerError):
        projector_from_dfa(two_state_dfa(), keep={"z"})


def test_uniformity_detection() -> None:
    assert identity_mealy("ab").uniformity() == 1
    dfa = two_state_dfa()
    mixed = Transducer.from_dfa(dfa, {(0, "a", 1): ("x", "y"), (1, "a", 1): ()})
    assert mixed.uniformity() is None
    assert not mixed.is_uniform()
    empty = Transducer(NFA("a", {0}, 0, {0}, {}), {})
    assert empty.uniformity() == 0


def test_string_emissions_are_split_per_character() -> None:
    dfa = two_state_dfa()
    t = Transducer.from_dfa(dfa, {(0, "a", 1): "xy"})
    assert t.emission(0, "a", 1) == ("x", "y")
    assert t.transduce_deterministic(("a",)) == ("x", "y")


def test_single_symbol_emission_wrapping() -> None:
    dfa = two_state_dfa()
    t = Transducer.from_dfa(dfa, {(0, "a", 1): 7})
    assert t.emission(0, "a", 1) == (7,)


def test_nondeterministic_transduce_collects_all_outputs() -> None:
    nfa = NFA(
        "a",
        {0, 1, 2},
        0,
        {1, 2},
        {(0, "a"): {1, 2}},
    )
    t = Transducer(nfa, {(0, "a", 1): ("x",), (0, "a", 2): ("y",)})
    assert t.transduce(("a",)) == {("x",), ("y",)}
    assert not t.is_deterministic()
    with pytest.raises(InvalidTransducerError):
        t.transduce_deterministic(("a",))


def test_transductions_pairs_runs_with_outputs() -> None:
    nfa = NFA("a", {0, 1, 2}, 0, {1, 2}, {(0, "a"): {1, 2}})
    t = Transducer(nfa, {(0, "a", 1): ("x",)})
    pairs = dict(t.transductions(("a",)))
    assert pairs == {(1,): ("x",), (2,): ()}


def test_transduce_empty_string() -> None:
    accepting_init = Transducer(NFA("a", {0}, 0, {0}, {(0, "a"): {0}}), {})
    assert accepting_init.transduce(()) == {()}
    rejecting_init = Transducer(NFA("a", {0, 1}, 0, {1}, {(0, "a"): {1}}), {})
    assert rejecting_init.transduce(()) == set()


def test_mealy_constructor_and_predicate() -> None:
    dfa = two_state_dfa()
    output = {(q, s): f"{q}{s}" for q in dfa.states for s in dfa.alphabet}
    mealy = Transducer.mealy(dfa, output)
    assert mealy.is_mealy()
    assert mealy.uniformity() == 1
    assert not mealy.is_selective()
    assert mealy.transduce_deterministic(("a", "b")) == ("0a", "1b")


def test_selectivity() -> None:
    dfa = two_state_dfa()
    t = Transducer.from_dfa(dfa, {})
    assert t.is_selective()  # F = {1} != Q


def test_omega_validation() -> None:
    nfa = NFA("a", {0}, 0, {0}, {(0, "a"): {0}})
    with pytest.raises(InvalidTransducerError):
        Transducer(nfa, {(0, "a", 99): ("x",)})
    with pytest.raises(InvalidTransducerError):
        Transducer(nfa, {(0, "z", 0): ("x",)})


def test_output_alphabet_is_image_of_omega() -> None:
    dfa = two_state_dfa()
    t = Transducer.from_dfa(dfa, {(0, "a", 1): ("p", "q"), (1, "a", 1): ("p",)})
    assert set(t.output_alphabet) == {"p", "q"}


def test_check_alphabet() -> None:
    t = identity_mealy("ab")
    t.check_alphabet(uniform_iid("ab", 2).alphabet)
    with pytest.raises(AlphabetMismatchError):
        t.check_alphabet(uniform_iid("abc", 2).alphabet)


def test_moves(rng: random.Random) -> None:
    t = identity_mealy("ab")
    moves = list(t.moves("q", "a"))
    assert moves == [("q", ("a",))]
