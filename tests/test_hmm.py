"""HMMs and the HMM → Markov-sequence translation (experiment X1)."""

from __future__ import annotations

import itertools
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidDistributionError, InvalidMarkovSequenceError
from repro.markov.hmm import HMM


def make_weather_hmm() -> HMM:
    return HMM(
        initial={"H": 0.6, "C": 0.4},
        transition={"H": {"H": 0.7, "C": 0.3}, "C": {"H": 0.4, "C": 0.6}},
        emission={
            "H": {"1": 0.1, "2": 0.4, "3": 0.5},
            "C": {"1": 0.5, "2": 0.4, "3": 0.1},
        },
    )


def make_random_hmm(rng: random.Random, num_states: int = 3, num_obs: int = 2) -> HMM:
    states = [f"s{i}" for i in range(num_states)]
    observations = [f"o{i}" for i in range(num_obs)]

    def row(keys):
        weights = [rng.random() + 0.05 for _ in keys]
        total = sum(weights)
        values = {k: w / total for k, w in zip(keys, weights)}
        top = max(values, key=values.get)
        values[top] += 1.0 - sum(values.values())
        return values

    return HMM(
        initial=row(states),
        transition={s: row(states) for s in states},
        emission={s: row(observations) for s in states},
    )


def brute_joint(hmm: HMM, hidden, observations) -> float:
    prob = hmm.initial.get(hidden[0], 0.0) * hmm.emission[hidden[0]].get(
        observations[0], 0.0
    )
    for i in range(1, len(observations)):
        prob *= hmm.transition[hidden[i - 1]].get(hidden[i], 0.0)
        prob *= hmm.emission[hidden[i]].get(observations[i], 0.0)
    return prob


def test_forward_likelihood_matches_brute() -> None:
    hmm = make_weather_hmm()
    obs = ("3", "1", "2")
    brute = sum(
        brute_joint(hmm, hidden, obs)
        for hidden in itertools.product(hmm.states, repeat=len(obs))
    )
    assert math.isclose(math.exp(hmm.log_likelihood(obs)), brute)


def test_forward_alphas_are_filtering_distributions() -> None:
    hmm = make_weather_hmm()
    alphas, _ = hmm.forward(("3", "1"))
    for level in alphas:
        assert math.isclose(sum(level.values()), 1.0)


def test_posterior_marginals_match_brute() -> None:
    hmm = make_weather_hmm()
    obs = ("3", "1", "3")
    marginals = hmm.posterior_marginals(obs)
    total = sum(
        brute_joint(hmm, hidden, obs)
        for hidden in itertools.product(hmm.states, repeat=3)
    )
    for position in range(3):
        for state in hmm.states:
            brute = (
                sum(
                    brute_joint(hmm, hidden, obs)
                    for hidden in itertools.product(hmm.states, repeat=3)
                    if hidden[position] == state
                )
                / total
            )
            assert math.isclose(marginals[position][state], brute, abs_tol=1e-9)


def test_viterbi_matches_brute() -> None:
    hmm = make_weather_hmm()
    obs = ("3", "1", "3", "2")
    path, log_score = hmm.viterbi(obs)
    best = max(
        itertools.product(hmm.states, repeat=len(obs)),
        key=lambda hidden: brute_joint(hmm, hidden, obs),
    )
    assert path == best
    assert math.isclose(math.exp(log_score), brute_joint(hmm, best, obs))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 4))
def test_translation_reproduces_posterior(seed: int, length: int) -> None:
    """The core claim of experiment X1: mu.prob_of(h) == Pr(h | obs)."""
    rng = random.Random(seed)
    hmm = make_random_hmm(rng)
    _hidden, obs = hmm.sample(length, rng)
    mu = hmm.to_markov_sequence(obs)
    total = sum(
        brute_joint(hmm, hidden, obs)
        for hidden in itertools.product(hmm.states, repeat=length)
    )
    assert total > 0
    for hidden in itertools.product(hmm.states, repeat=length):
        posterior = brute_joint(hmm, hidden, obs) / total
        assert math.isclose(mu.prob_of(hidden), posterior, abs_tol=1e-9)


def test_translation_is_a_valid_markov_sequence() -> None:
    hmm = make_weather_hmm()
    mu = hmm.to_markov_sequence(("1", "3", "2", "2"))
    assert math.isclose(sum(p for _w, p in mu.worlds()), 1.0, abs_tol=1e-9)


def test_zero_likelihood_observation_rejected() -> None:
    hmm = HMM(
        initial={"s": 1.0},
        transition={"s": {"s": 1.0}},
        emission={"s": {"x": 1.0, "y": 0.0}},
    )
    with pytest.raises(InvalidMarkovSequenceError):
        hmm.to_markov_sequence(("y",))
    assert hmm.log_likelihood(("y",)) == -math.inf


def test_empty_observations_rejected() -> None:
    hmm = make_weather_hmm()
    with pytest.raises(InvalidMarkovSequenceError):
        hmm.forward(())


def test_invalid_rows_rejected() -> None:
    with pytest.raises(InvalidDistributionError):
        HMM(
            initial={"s": 0.5},
            transition={"s": {"s": 1.0}},
            emission={"s": {"x": 1.0}},
        )
    with pytest.raises(InvalidDistributionError):
        HMM(
            initial={"s": 1.0},
            transition={"s": {"s": 0.7}},
            emission={"s": {"x": 1.0}},
        )
    with pytest.raises(InvalidDistributionError):
        HMM(
            initial={"s": 1.0},
            transition={"s": {"s": 1.0}},
            emission={},
        )


def test_sample_shapes() -> None:
    hmm = make_weather_hmm()
    rng = random.Random(7)
    hidden, observed = hmm.sample(5, rng)
    assert len(hidden) == len(observed) == 5
    assert set(hidden) <= set(hmm.states)
    assert set(observed) <= set(hmm.observations)
