"""Fault injection for the worker pool.

Workers that raise, hang past the timeout, or die outright
(``BrokenProcessPool``) must never change *results* — only the stats
record that the batch degraded (retries, timeouts, broken pools, serial
fallbacks). Every injected worker below is a module-level function so it
pickles across the process boundary.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.parallel import WorkerPool
from repro.parallel.worker import execute_chunk
from repro.runtime.executor import batch_top_k
from repro.runtime.plan import QueryPlan
from repro.transducers.library import collapse_transducer

from tests.conftest import make_fraction_sequence

ALPHABET = "ab"


def _query():
    return collapse_transducer({"a": "X", "b": "Y"})


def _corpus(streams: int = 4, length: int = 3, seed: int = 11) -> dict:
    rng = random.Random(seed)
    return {
        f"s{i}": make_fraction_sequence(ALPHABET, length, rng)
        for i in range(streams)
    }


def _serial(corpus, k: int = 4):
    pairs = batch_top_k(QueryPlan.build(_query()), corpus, k)
    return [(n, a.output, a.confidence, a.score) for n, a in pairs]


def _key(pairs):
    return [(n, a.output, a.confidence, a.score) for n, a in pairs]


# --- injected workers (module-level: must pickle) -------------------------


def _raise_worker(task):  # pragma: no cover - runs in worker processes
    raise RuntimeError("injected worker failure")


def _hang_worker(task):  # pragma: no cover - runs in worker processes
    time.sleep(2.0)
    return execute_chunk(task)


def _crash_worker(task):  # pragma: no cover - runs in worker processes
    os._exit(1)


def _poison_worker(task):  # pragma: no cover - runs in worker processes
    if any(name == "poison" for name, _sequence in task.items):
        raise RuntimeError("injected poison stream")
    return execute_chunk(task)


# --- the faults -----------------------------------------------------------


def test_raising_worker_retries_then_falls_back() -> None:
    corpus = _corpus(4)
    with WorkerPool(
        2, chunk_size=2, max_retries=1, retry_backoff=0.001, _worker_fn=_raise_worker
    ) as pool:
        result = pool.batch_top_k(_query(), corpus, 4)
        stats = pool.stats
        # 2 chunks x (1 attempt + 1 retry), all raising, then serial rescue.
        assert stats.worker_errors == 4
        assert stats.retries == 2
        assert stats.serial_fallbacks == 2
        assert stats.completed == 0
    assert _key(result) == _serial(corpus)


def test_hanging_worker_times_out_and_answers_serially() -> None:
    corpus = _corpus(2)
    with WorkerPool(
        2, chunk_size=2, task_timeout=0.2, _worker_fn=_hang_worker
    ) as pool:
        start = time.perf_counter()
        result = pool.batch_top_k(_query(), corpus, 4)
        elapsed = time.perf_counter() - start
        stats = pool.stats
        assert stats.timeouts == 1
        assert stats.serial_fallbacks == 1
        assert stats.completed == 0
        assert pool._executor is None  # hung worker retired the executor
    assert elapsed < 1.9  # answered before the hung worker would have
    assert _key(result) == _serial(corpus)


def test_broken_pool_retries_with_backoff_then_falls_back() -> None:
    corpus = _corpus(2)
    with WorkerPool(
        2, chunk_size=2, max_retries=1, retry_backoff=0.01, _worker_fn=_crash_worker
    ) as pool:
        result = pool.batch_top_k(_query(), corpus, 4)
        stats = pool.stats
        # The pool broke on the first attempt, was re-created for the
        # retry, broke again, and the chunk was rescued serially.
        assert stats.broken_pools == 2
        assert stats.retries == 1
        assert stats.serial_fallbacks == 1
        assert stats.completed == 0
    assert _key(result) == _serial(corpus)


def test_broken_pool_recovers_mid_batch_with_partial_results() -> None:
    # One poisoned chunk; the rest complete in workers. With no retry
    # budget, the batch reports partial worker results plus exactly one
    # serial rescue — and the merged answers are still exact.
    corpus = _corpus(3)
    corpus["poison"] = make_fraction_sequence(ALPHABET, 3, random.Random(99))
    with WorkerPool(
        2, chunk_size=1, max_retries=0, _worker_fn=_poison_worker
    ) as pool:
        result = pool.batch_top_k(_query(), corpus, 6)
        stats = pool.stats
        assert stats.completed == 3  # partial results from live workers
        assert stats.worker_errors == 1
        assert stats.serial_fallbacks == 1
    serial = batch_top_k(QueryPlan.build(_query()), corpus, 6)
    assert _key(result) == _key(serial)


def test_no_executor_available_degrades_to_serial(monkeypatch) -> None:
    corpus = _corpus(4)
    with WorkerPool(2, chunk_size=2) as pool:
        monkeypatch.setattr(pool, "_ensure_executor", lambda: None)
        result = pool.batch_top_k(_query(), corpus, 4)
        stats = pool.stats
        assert stats.serial_fallbacks == 2
        assert stats.tasks == 0
    assert _key(result) == _serial(corpus)


def test_stats_dict_reflects_fault_counters() -> None:
    corpus = _corpus(2)
    with WorkerPool(
        2, chunk_size=2, max_retries=0, retry_backoff=0.001, _worker_fn=_raise_worker
    ) as pool:
        pool.batch_top_k(_query(), corpus, 2)
        snapshot = pool.stats.as_dict()
    assert snapshot["worker_errors"] == 1
    assert snapshot["serial_fallbacks"] == 1
    assert snapshot["retries"] == 0
    assert snapshot["chunks"] == 1  # only the serial rescue computed it
