"""Database persistence and answer sampling."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.lahar.database import MarkovStreamDatabase
from repro.lahar.persistence import load_database, save_database
from repro.markov.builders import hospital_model, uniform_iid
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.sprojector import SProjector
from repro.confidence.montecarlo import sample_answer
from repro.transducers.library import collapse_transducer


def build_db() -> MarkovStreamDatabase:
    db = MarkovStreamDatabase()
    db.register_stream("cart/17", hospital_sequence())
    db.register_stream("cart/23", hospital_model(2, 4, random.Random(1)))
    db.register_query("room trace", room_change_transducer())
    alphabet = ("r1a", "r1b", "r2a", "r2b", "la", "lb")
    db.register_query(
        "lab visits",
        SProjector(sigma_star(alphabet), regex_to_dfa("(la|lb)+", alphabet), sigma_star(alphabet)),
    )
    return db


def test_save_and_load_roundtrip(tmp_path) -> None:
    db = build_db()
    save_database(db, tmp_path / "warehouse")
    loaded = load_database(tmp_path / "warehouse")
    assert loaded.streams() == db.streams()
    assert loaded.queries() == db.queries()
    # Semantics preserved: the running example still evaluates exactly.
    top = loaded.top_k("cart/17", "room trace", 1)[0]
    assert top.output == ("1", "2")
    assert top.confidence == Fraction("0.4038")


def test_slug_collisions_resolved(tmp_path) -> None:
    db = MarkovStreamDatabase()
    db.register_stream("a b", uniform_iid("xy", 2))
    db.register_stream("a-b", uniform_iid("xy", 3))
    save_database(db, tmp_path)
    loaded = load_database(tmp_path)
    assert loaded.streams() == ["a b", "a-b"]
    assert loaded.stream("a b").length == 2
    assert loaded.stream("a-b").length == 3


def test_load_missing_catalog(tmp_path) -> None:
    with pytest.raises(ReproError):
        load_database(tmp_path / "nope")


def test_sample_answer_deterministic_frequencies() -> None:
    sequence = uniform_iid("ab", 3, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    rng = random.Random(0)
    counts: dict = {}
    for _ in range(2000):
        answer = sample_answer(sequence, transducer, rng)
        counts[answer] = counts.get(answer, 0) + 1
    # Uniform: 8 answers, each with confidence 1/8.
    assert len(counts) == 8
    for count in counts.values():
        assert abs(count - 250) < 120


def test_sample_answer_rejection() -> None:
    from repro.transducers.library import accept_filter

    sequence = uniform_iid("ab", 3)
    never = accept_filter(regex_to_dfa("aaaa", "ab"))  # rejects all length-3
    assert sample_answer(sequence, never, random.Random(1), max_attempts=50) is None


def test_sample_answer_sprojector() -> None:
    sequence = uniform_iid("ab", 3)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("a", "ab"), sigma_star("ab")
    )
    answer = sample_answer(sequence, projector, random.Random(2))
    assert answer in (("a",), None) or answer == ("a",)


def test_save_leaves_no_temp_files(tmp_path) -> None:
    save_database(build_db(), tmp_path / "warehouse")
    assert not list((tmp_path / "warehouse").rglob("*.tmp"))


def test_save_sweeps_stale_temp_files(tmp_path) -> None:
    root = tmp_path / "warehouse"
    save_database(build_db(), root)
    # a previous crashed save left litter behind
    (root / "catalog.json.tmp").write_text("{torn")
    (root / "streams" / "ghost.json.tmp").write_text("{torn")
    (root / "queries" / "ghost.json.tmp").write_text("{torn")
    save_database(build_db(), root)
    assert not list(root.rglob("*.tmp"))
    assert load_database(root).streams() == build_db().streams()


def test_crash_before_catalog_preserves_previous_save(
    tmp_path, monkeypatch
) -> None:
    """The catalog is the commit point: a save that dies before
    publishing it leaves the previous generation fully loadable."""
    import repro.lahar.persistence as persistence

    root = tmp_path / "warehouse"
    save_database(build_db(), root)
    before = load_database(root)

    bigger = build_db()
    bigger.register_stream("cart/99", uniform_iid("ab", 3))
    real_publish = persistence._publish

    def crashing_publish(tmp, final):
        if final.name == "catalog.json":
            raise OSError("simulated crash before the commit point")
        real_publish(tmp, final)

    monkeypatch.setattr(persistence, "_publish", crashing_publish)
    with pytest.raises(OSError, match="simulated crash"):
        save_database(bigger, root)

    # every document landed atomically, but the catalog — and therefore
    # the loadable database — is still the previous generation
    loaded = load_database(root)
    assert loaded.streams() == before.streams()
    assert loaded.queries() == before.queries()
