"""Confidence-threshold queries."""

from __future__ import annotations

import math
import random

import pytest

from repro.markov.builders import uniform_iid
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import IndexedSProjector
from repro.confidence.brute_force import brute_force_answers
from repro.enumeration.threshold import (
    indexed_answers_above,
    transducer_answers_above,
)

from tests.conftest import make_random_deterministic_transducer, make_sequence

ALPHABET = "ab"


def test_indexed_answers_above_exact() -> None:
    rng = random.Random(2)
    sequence = make_sequence(ALPHABET, 5, rng)
    projector = IndexedSProjector(
        sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET)
    )
    expected = brute_force_answers(sequence, projector)
    theta = sorted(expected.values())[len(expected) // 2]
    produced = dict(
        (answer, confidence)
        for confidence, answer in indexed_answers_above(sequence, projector, theta)
    )
    want = {a: c for a, c in expected.items() if c >= theta - 1e-12}
    assert set(produced) == set(want)
    for answer, confidence in produced.items():
        assert math.isclose(confidence, expected[answer], abs_tol=1e-9)


def test_indexed_threshold_streams_in_order() -> None:
    rng = random.Random(3)
    sequence = make_sequence(ALPHABET, 5, rng)
    projector = IndexedSProjector(
        sigma_star(ALPHABET), regex_to_dfa("a", ALPHABET), sigma_star(ALPHABET)
    )
    confidences = [c for c, _a in indexed_answers_above(sequence, projector, 0.0)]
    assert confidences == sorted(confidences, reverse=True)


def test_transducer_answers_above_complete() -> None:
    rng = random.Random(5)
    for _ in range(4):
        sequence = make_sequence(ALPHABET, 4, rng)
        transducer = make_random_deterministic_transducer(ALPHABET, 3, rng)
        expected = brute_force_answers(sequence, transducer)
        if not expected:
            continue
        theta = max(expected.values()) / 2
        produced = dict(
            (answer, confidence)
            for confidence, answer in transducer_answers_above(
                sequence, transducer, theta
            )
        )
        want = {a for a, c in expected.items() if c >= theta - 1e-12}
        assert set(produced) == want


def test_transducer_threshold_high_theta_empty() -> None:
    sequence = uniform_iid(ALPHABET, 4, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    assert list(transducer_answers_above(sequence, transducer, 0.9)) == []


def test_transducer_threshold_rejects_nonpositive_theta() -> None:
    sequence = uniform_iid(ALPHABET, 2)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    with pytest.raises(ValueError):
        list(transducer_answers_above(sequence, transducer, 0))


def test_k_best_worlds_matches_brute() -> None:
    from repro.markov.analysis import k_best_worlds

    rng = random.Random(11)
    for _ in range(4):
        sequence = make_sequence("abc", 4, rng, branching=2)
        ranked = k_best_worlds(sequence, 6)
        brute = sorted(sequence.worlds(), key=lambda wp: -wp[1])[:6]
        assert [w for w, _p in ranked] != []
        got_scores = [p for _w, p in ranked]
        want_scores = [p for _w, p in brute]
        for got, want in zip(got_scores, want_scores):
            assert math.isclose(got, want, abs_tol=1e-12)
        assert got_scores == sorted(got_scores, reverse=True)
        # Worlds themselves are distinct and valid.
        worlds = [w for w, _p in ranked]
        assert len(worlds) == len(set(worlds))
        for world, prob in ranked:
            assert math.isclose(sequence.prob_of(world), prob, abs_tol=1e-12)


def test_k_best_worlds_k_larger_than_support() -> None:
    from repro.markov.analysis import k_best_worlds
    from repro.markov.builders import iid

    sequence = iid({"a": 0.7, "b": 0.3}, 2)
    ranked = k_best_worlds(sequence, 10)
    assert len(ranked) == 4  # entire support, no duplicates
