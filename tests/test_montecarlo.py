"""Monte Carlo confidence estimation (the practical #P fallback)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.markov.builders import uniform_iid
from repro.automata.nfa import NFA
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import SProjector
from repro.transducers.transducer import Transducer
from repro.confidence.brute_force import brute_force_confidence
from repro.confidence.montecarlo import (
    ConfidenceEstimate,
    estimate_confidence,
    estimate_samples_needed,
)

from tests.conftest import make_sequence


def test_estimate_close_to_exact_deterministic() -> None:
    rng = random.Random(100)
    sequence = make_sequence("ab", 5, rng)
    query = collapse_transducer({"a": "X", "b": "Y"})
    answer = query.transduce_deterministic(sequence.sample(rng))
    exact = brute_force_confidence(sequence, query, answer)
    estimate = estimate_confidence(
        sequence, query, answer, samples=4000, rng=random.Random(0)
    )
    assert abs(estimate.estimate - exact) <= estimate.half_width


def test_estimate_for_nondeterministic_transducer() -> None:
    """The FP^#P-complete case: sampling still works."""
    nfa = NFA(
        "ab",
        {0, 1},
        0,
        {0, 1},
        {(0, "a"): {0, 1}, (0, "b"): {0}, (1, "a"): {1}, (1, "b"): {1}},
    )
    query = Transducer(nfa, {(0, "a", 1): ("m",)})
    sequence = uniform_iid("ab", 4)
    answer = ("m",)
    exact = brute_force_confidence(sequence, query, answer)
    estimate = estimate_confidence(
        sequence, query, answer, samples=4000, rng=random.Random(7)
    )
    assert abs(estimate.estimate - exact) <= estimate.half_width


def test_estimate_for_sprojector() -> None:
    sequence = uniform_iid("ab", 4)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("ab", "ab"), sigma_star("ab")
    )
    exact = brute_force_confidence(sequence, projector, ("a", "b"))
    estimate = estimate_confidence(
        sequence, projector, ("a", "b"), samples=4000, rng=random.Random(3)
    )
    assert abs(estimate.estimate - exact) <= estimate.half_width


def test_interval_properties() -> None:
    estimate = ConfidenceEstimate(estimate=0.5, samples=100, hits=50, delta=0.05)
    low, high = estimate.interval
    assert 0.0 <= low < 0.5 < high <= 1.0
    tighter = ConfidenceEstimate(estimate=0.5, samples=10_000, hits=5000, delta=0.05)
    assert tighter.half_width < estimate.half_width


def test_zero_probability_answer() -> None:
    sequence = uniform_iid("ab", 3)
    query = collapse_transducer({"a": "X", "b": "Y"})
    estimate = estimate_confidence(
        sequence, query, ("Z", "Z", "Z"), samples=200, rng=random.Random(1)
    )
    assert estimate.estimate == 0.0
    assert estimate.hits == 0


def test_samples_needed_monotonicity() -> None:
    assert estimate_samples_needed(0.01) > estimate_samples_needed(0.1)
    assert estimate_samples_needed(0.1, delta=0.01) > estimate_samples_needed(
        0.1, delta=0.1
    )


def test_interval_brackets_exact_value_at_stated_level() -> None:
    """The Hoeffding interval holds at (well above) its stated 1 - delta.

    40 independent seeded estimations of the same confidence; with
    delta = 0.1 the interval may exclude the exact value in at most ~10%
    of runs, so over 40 trials anything below 36 hits signals a broken
    half-width formula rather than sampling noise (Hoeffding is loose:
    empirical coverage is essentially 100%).
    """
    rng = random.Random(55)
    sequence = make_sequence("ab", 4, rng)
    query = collapse_transducer({"a": "X", "b": "Y"})
    answer = query.transduce_deterministic(sequence.sample(rng))
    exact = brute_force_confidence(sequence, query, answer)
    trials = 40
    hits = 0
    for trial in range(trials):
        estimate = estimate_confidence(
            sequence,
            query,
            answer,
            samples=400,
            rng=random.Random(7000 + trial),
            delta=0.1,
        )
        if abs(estimate.estimate - exact) <= estimate.half_width:
            hits += 1
    assert hits >= 36


def test_degenerate_confidence_one() -> None:
    # A single-symbol iid sequence has exactly one world, so the collapsed
    # output is certain: the estimator must return exactly 1.
    sequence = uniform_iid("a", 3)
    query = collapse_transducer({"a": "X"})
    estimate = estimate_confidence(
        sequence, query, ("X", "X", "X"), samples=150, rng=random.Random(2)
    )
    assert estimate.estimate == 1.0
    assert estimate.hits == estimate.samples
    low, high = estimate.interval
    assert high == 1.0  # clipped at the probability ceiling
    assert 0.0 <= low <= 1.0


def test_degenerate_confidence_zero_interval_clipped() -> None:
    sequence = uniform_iid("ab", 3)
    query = collapse_transducer({"a": "X", "b": "Y"})
    estimate = estimate_confidence(
        sequence, query, ("Z",), samples=150, rng=random.Random(2)
    )
    assert estimate.estimate == 0.0
    low, high = estimate.interval
    assert low == 0.0  # clipped at the probability floor
    assert high <= 1.0


def test_parameter_validation() -> None:
    sequence = uniform_iid("ab", 2)
    query = collapse_transducer({"a": "X", "b": "Y"})
    with pytest.raises(ReproError):
        estimate_confidence(sequence, query, ("X", "X"), samples=0)
    with pytest.raises(ReproError):
        estimate_confidence(sequence, query, ("X", "X"), samples=10, delta=1.5)
    with pytest.raises(ReproError):
        estimate_samples_needed(0.0)


def test_samples_needed_achieves_chernoff_coverage() -> None:
    """``estimate_samples_needed(ε, δ)`` samples really deliver the
    additive (ε, δ) contract, measured empirically.

    The budget for ε=0.15, δ=0.25 is 47 samples; across 200 seeded
    trials of a p=1/2 answer the ±ε interval must contain p in at least
    a 1−δ fraction (the Hoeffding budget is conservative — normal
    approximation puts true coverage near 96% — so 150/200 is a
    flake-free floor far above noise but far below a broken bound).
    """
    epsilon, delta = 0.15, 0.25
    budget = estimate_samples_needed(epsilon, delta)
    assert budget == 47
    sequence = uniform_iid("ab", 1)
    query = collapse_transducer({"a": "X", "b": "Y"})
    answer = ("X",)  # exact confidence 1/2
    trials = 200
    covered = 0
    for trial in range(trials):
        estimate = estimate_confidence(
            sequence,
            query,
            answer,
            samples=budget,
            rng=random.Random(31_000 + trial),
            delta=delta,
        )
        if abs(estimate.estimate - 0.5) <= epsilon:
            covered += 1
    assert covered >= trials * (1 - delta)


def test_estimate_rejects_degenerate_inputs() -> None:
    sequence = uniform_iid("ab", 2)
    query = collapse_transducer({"a": "X", "b": "Y"})
    for delta in (0.0, -1.0, 1.0, float("nan")):
        with pytest.raises(ReproError):
            estimate_confidence(sequence, query, ("X", "X"), samples=5, delta=delta)


def test_samples_needed_rejects_degenerate_inputs() -> None:
    for epsilon in (0.0, -0.5, 1.0, float("nan")):
        with pytest.raises(ReproError):
            estimate_samples_needed(epsilon)
    for delta in (0.0, -0.5, 1.0, float("nan")):
        with pytest.raises(ReproError):
            estimate_samples_needed(0.1, delta=delta)
    # In (0, 1) but squares to 0.0: must raise, not divide by zero.
    with pytest.raises(ReproError, match="underflow"):
        estimate_samples_needed(1e-200)


def test_confidence_estimate_validates_on_construction() -> None:
    with pytest.raises(ReproError):
        ConfidenceEstimate(estimate=0.5, samples=0, hits=0, delta=0.05)
    with pytest.raises(ReproError):
        ConfidenceEstimate(estimate=0.5, samples=10, hits=11, delta=0.05)
    with pytest.raises(ReproError):
        ConfidenceEstimate(estimate=0.5, samples=10, hits=-1, delta=0.05)
    with pytest.raises(ReproError):
        ConfidenceEstimate(estimate=0.5, samples=10, hits=5, delta=float("nan"))


def test_sample_answer_rejects_nonpositive_attempts() -> None:
    from repro.confidence.montecarlo import sample_answer

    sequence = uniform_iid("ab", 2)
    query = collapse_transducer({"a": "X", "b": "Y"})
    with pytest.raises(ReproError):
        sample_answer(sequence, query, rng=random.Random(1), max_attempts=0)
