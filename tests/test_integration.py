"""Cross-cutting integration tests: the full class/order/arithmetic matrix.

These exercise the engine the way a downstream user would: random data,
every query class, every compatible enumeration order, float and exact
arithmetic — asserting the mutual-consistency facts that tie the paper's
results together.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest

from repro.markov.builders import random_sequence
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.confidence.brute_force import brute_force_answers
from repro.core.engine import evaluate, top_k
from repro.core.results import Order

from tests.conftest import make_random_deterministic_transducer

ALPHABET = "ab"


def queries(rng: random.Random):
    projector = SProjector(
        sigma_star(ALPHABET), regex_to_dfa("a+b?", ALPHABET), sigma_star(ALPHABET)
    )
    return {
        "mealy": collapse_transducer({"a": "X", "b": "Y"}),
        "deterministic": make_random_deterministic_transducer(ALPHABET, 3, rng),
        "sprojector": projector,
        "indexed": IndexedSProjector(
            projector.prefix, projector.pattern, projector.suffix
        ),
    }


def compatible_orders(kind: str) -> list[Order]:
    if kind == "indexed":
        return [Order.UNRANKED, Order.EMAX, Order.CONFIDENCE]
    if kind == "sprojector":
        return [Order.UNRANKED, Order.EMAX, Order.IMAX]
    return [Order.UNRANKED, Order.EMAX]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_all_orders_agree_on_answers_and_confidences(seed: int) -> None:
    rng = random.Random(seed)
    sequence = random_sequence(ALPHABET, 5, rng)
    for kind, query in queries(rng).items():
        reference = brute_force_answers(sequence, query)
        for order in compatible_orders(kind):
            answers = list(evaluate(sequence, query, order=order))
            produced = {a.output: a.confidence for a in answers}
            assert set(produced) == set(reference), (kind, order)
            for output, confidence in produced.items():
                assert math.isclose(
                    float(confidence), float(reference[output]), abs_tol=1e-9
                ), (kind, order, output)
            # Ranked orders must be monotone in their scores.
            if order is not Order.UNRANKED:
                scores = [a.score for a in answers]
                assert all(
                    scores[i] >= scores[i + 1] - 1e-12
                    for i in range(len(scores) - 1)
                ), (kind, order)


@pytest.mark.parametrize("seed", [3, 4])
def test_topk_prefixes_are_consistent(seed: int) -> None:
    """top_k(k) is a prefix of top_k(k+2) under every default order."""
    rng = random.Random(seed)
    sequence = random_sequence(ALPHABET, 5, rng)
    for kind, query in queries(rng).items():
        small = top_k(sequence, query, 2)
        large = top_k(sequence, query, 4)
        assert [a.output for a in small] == [a.output for a in large][: len(small)], kind


def test_exact_arithmetic_through_the_whole_engine() -> None:
    """Exact rational data in, exact rational confidences out, summing to
    exactly the acceptance probability."""
    rng = random.Random(5)
    sequence = random_sequence(ALPHABET, 5, rng).as_fraction()
    query = collapse_transducer({"a": "X", "b": "Y"})
    answers = list(evaluate(sequence, query, order="emax"))
    total = sum(a.confidence for a in answers)
    assert isinstance(total, Fraction)
    assert total == 1  # non-selective query: every world contributes


def test_float_and_exact_agree_through_engine() -> None:
    rng = random.Random(6)
    float_sequence = random_sequence(ALPHABET, 4, rng)
    exact_sequence = float_sequence.as_fraction()
    query = collapse_transducer({"a": "X", "b": "Y"})
    float_answers = {
        a.output: a.confidence for a in evaluate(float_sequence, query)
    }
    exact_answers = {
        a.output: a.confidence for a in evaluate(exact_sequence, query)
    }
    assert set(float_answers) == set(exact_answers)
    for output in float_answers:
        assert math.isclose(
            float_answers[output], float(exact_answers[output]), abs_tol=1e-6
        )


def test_serialization_roundtrip_through_engine(tmp_path) -> None:
    """Save sequence+query to JSON, load, evaluate: identical results."""
    from repro.io.json_format import read_query, read_sequence, write_query, write_sequence

    rng = random.Random(7)
    sequence = random_sequence(ALPHABET, 4, rng).as_fraction()
    query = collapse_transducer({"a": "X", "b": "Y"})
    write_sequence(sequence, tmp_path / "mu.json")
    write_query(query, tmp_path / "q.json")
    loaded_sequence = read_sequence(tmp_path / "mu.json")
    loaded_query = read_query(tmp_path / "q.json")
    original = {a.output: a.confidence for a in evaluate(sequence, query)}
    reloaded = {
        a.output: a.confidence
        for a in evaluate(loaded_sequence, loaded_query)
    }
    assert original == reloaded


def test_hmm_to_engine_pipeline() -> None:
    """HMM → smoothing → engine: answers are a valid sub-distribution."""
    from repro.markov.hmm import HMM

    hmm = HMM(
        initial={"u": 0.5, "v": 0.5},
        transition={"u": {"u": 0.9, "v": 0.1}, "v": {"u": 0.2, "v": 0.8}},
        emission={"u": {"0": 0.7, "1": 0.3}, "v": {"0": 0.2, "1": 0.8}},
    )
    rng = random.Random(8)
    _hidden, observations = hmm.sample(6, rng)
    mu = hmm.to_markov_sequence(observations)
    query = collapse_transducer({"u": "U", "v": "V"})
    answers = list(evaluate(mu, query, order="emax"))
    total = sum(a.confidence for a in answers)
    assert math.isclose(total, 1.0, abs_tol=1e-9)
    # The E_max top answer's evidence is the Viterbi decode.
    viterbi_path, _ = hmm.viterbi(observations)
    expected_top = tuple("U" if s == "u" else "V" for s in viterbi_path)
    assert answers[0].output == expected_top
