"""Approximate confidence over the serve protocol.

The ``confidence`` command answers one-shot exact or FPRAS reads, and a
standing query registered with ``epsilon`` is FPRAS-backed: every wire
artifact that carries a sampled value is marked ``approximate`` so no
client can mistake an estimate for the exact Fraction engine's output.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.engine import compute_confidence
from repro.io.json_format import query_to_dict, sequence_to_dict
from repro.serve import ServeClient, ServeError, ServerThread
from repro.serve.protocol import decode_value, encode_transition

from tests.test_serve_e2e import (
    contains_ab_query,
    rare_b_sequence,
    rare_b_timestep,
)


@pytest.fixture
def served(tmp_path):
    path = str(tmp_path / "approx.sock")
    with ServerThread(socket_path=path, shards=2):
        with ServeClient.connect_unix(path) as client:
            client.call(
                "register_stream",
                name="s",
                sequence=sequence_to_dict(rare_b_sequence()),
            )
            yield client


def _grow(client, appends: int) -> None:
    for _ in range(appends):
        client.call("append", stream="s", transition=encode_transition(rare_b_timestep()))


def test_confidence_command_exact_path(served) -> None:
    _grow(served, 3)
    result = served.call(
        "confidence", stream="s", query=query_to_dict(contains_ab_query()), output=[]
    )
    assert result["approximate"] is False
    offline = rare_b_sequence()
    from repro.lahar.database import MarkovStreamDatabase

    db = MarkovStreamDatabase()
    db.register_stream("s", offline)
    for _ in range(3):
        grown = db.append("s", rare_b_timestep())
    exact = compute_confidence(grown, contains_ab_query(), ())
    assert decode_value(result["confidence"]) == exact
    assert isinstance(exact, Fraction)


def test_confidence_command_approx_path_is_marked_and_deterministic(served) -> None:
    _grow(served, 3)
    params = dict(
        stream="s",
        query=query_to_dict(contains_ab_query()),
        output=[],
        epsilon=0.2,
        delta=0.05,
        seed=4,
    )
    first = served.call("confidence", **params)
    second = served.call("confidence", **params)
    assert first["approximate"] is True
    assert first == second  # same seed, same estimate, bit for bit
    assert first["certified"] is True
    assert first["low"] <= first["confidence"] <= first["high"]
    # The interval really contains the exact confidence.
    exact = served.call(
        "confidence", stream="s", query=query_to_dict(contains_ab_query()), output=[]
    )
    value = decode_value(exact["confidence"])
    assert first["low"] - 1e-12 <= float(value) <= first["high"] + 1e-12


def test_confidence_command_requires_an_output_list(served) -> None:
    with pytest.raises(ServeError, match="output"):
        served.call(
            "confidence", stream="s", query=query_to_dict(contains_ab_query())
        )


def test_approximate_standing_query_lifecycle(served) -> None:
    result = served.call(
        "register_standing_query",
        name="approx-watch",
        stream="s",
        query=query_to_dict(contains_ab_query()),
        kind="answer",
        output=[],
        threshold="3/20",
        epsilon=0.25,
        delta=0.05,
        seed=9,
    )
    assert result["approximate"] is True
    assert result["epsilon"] == 0.25
    assert result["delta"] == 0.05
    # Pr("ab" occurred) is 1/10 at registration — below the threshold,
    # so the watch arms. (The accept-filter product is unambiguous, so
    # the FPRAS shortcut makes the watched value exact and the crossing
    # deterministic.)
    assert result["armed"] is True

    served.call("subscribe", standing="approx-watch")
    # After one append the value is 19/100 >= 3/20: the alert fires.
    append = served.call(
        "append", stream="s", transition=encode_transition(rare_b_timestep())
    )
    assert append["alerts"] == ["approx-watch"]
    event = served.next_event(timeout=5)
    assert event["event"] == "alert"
    assert event["data"]["approximate"] is True
    assert event["data"]["epsilon"] == 0.25

    entries = {e["name"]: e for e in served.call("stats")["standing"]}
    described = entries["approx-watch"]
    assert described["approximate"] is True
    assert described["epsilon"] == 0.25
    assert described["delta"] == 0.05
    # Exact standing queries stay unmarked.
    served.call(
        "register_standing_query",
        name="exact-watch",
        stream="s",
        query=query_to_dict(contains_ab_query()),
        kind="answer",
        output=[],
        threshold="2/1",
    )
    entries = {e["name"]: e for e in served.call("stats")["standing"]}
    assert entries["exact-watch"]["approximate"] is False
    assert "epsilon" not in entries["exact-watch"]


def test_approximate_monitors_are_rejected(served) -> None:
    with pytest.raises(ServeError, match="kind 'answer'"):
        served.call(
            "register_standing_query",
            name="bad",
            stream="s",
            query=query_to_dict(contains_ab_query()),
            kind="monitor",
            threshold="1/2",
            epsilon=0.25,
        )


def test_durable_mode_rejects_approximate_standing_queries(tmp_path) -> None:
    path = str(tmp_path / "durable.sock")
    with ServerThread(socket_path=path, data_dir=str(tmp_path / "data")):
        with ServeClient.connect_unix(path) as client:
            client.call(
                "register_stream",
                name="s",
                sequence=sequence_to_dict(rare_b_sequence()),
            )
            with pytest.raises(ServeError, match="durable"):
                client.call(
                    "register_standing_query",
                    name="approx-watch",
                    stream="s",
                    query=query_to_dict(contains_ab_query()),
                    kind="answer",
                    output=[],
                    threshold="1/2",
                    epsilon=0.25,
                )
            # One-shot approximate reads are still fine in durable mode:
            # nothing sampled enters the journal.
            result = client.call(
                "confidence",
                stream="s",
                query=query_to_dict(contains_ab_query()),
                output=[],
                epsilon=0.25,
                seed=1,
            )
            assert result["approximate"] is True
