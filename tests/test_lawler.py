"""The generic Lawler–Murty engine on a self-contained toy problem."""

from __future__ import annotations

import itertools
from fractions import Fraction

from repro.enumeration.lawler import lawler_enumerate

# Toy ranked-enumeration problem: enumerate all binary strings of length L
# by score = product of per-position weights, using prefix subspaces.

WEIGHTS = {
    "0": (Fraction(2, 3), Fraction(1, 2), Fraction(3, 5)),
    "1": (Fraction(1, 3), Fraction(1, 2), Fraction(2, 5)),
}
LENGTH = 3


def score(string: str) -> Fraction:
    result = Fraction(1)
    for i, bit in enumerate(string):
        result *= WEIGHTS[bit][i]
    return result


def best_in_prefix(prefix: str):
    """Best completion of a prefix (greedy works: positions independent)."""
    completion = prefix
    for i in range(len(prefix), LENGTH):
        completion += "0" if WEIGHTS["0"][i] >= WEIGHTS["1"][i] else "1"
    return score(completion), completion


def partition(prefix: str, answer: str):
    """Children: agree with the answer up to p, differ at p."""
    children = []
    for p in range(len(prefix), LENGTH):
        flipped = answer[:p] + ("1" if answer[p] == "0" else "0")
        children.append(flipped)
    return children


def test_enumerates_all_in_decreasing_score() -> None:
    results = list(lawler_enumerate("", best_in_prefix, partition))
    produced = [answer for _s, answer in results]
    assert sorted(produced) == sorted(
        "".join(bits) for bits in itertools.product("01", repeat=LENGTH)
    )
    scores = [s for s, _a in results]
    assert scores == sorted(scores, reverse=True)
    for s, answer in results:
        assert s == score(answer)


def test_no_duplicates() -> None:
    produced = [a for _s, a in lawler_enumerate("", best_in_prefix, partition)]
    assert len(produced) == len(set(produced))


def test_empty_space() -> None:
    assert list(lawler_enumerate("", lambda _s: None, partition)) == []


def test_prefix_lazy_top_k() -> None:
    iterator = lawler_enumerate("", best_in_prefix, partition)
    top2 = [next(iterator) for _ in range(2)]
    all_scores = sorted(
        (score("".join(bits)) for bits in itertools.product("01", repeat=LENGTH)),
        reverse=True,
    )
    assert [s for s, _a in top2] == all_scores[:2]


def test_ties_are_all_emitted() -> None:
    def best(space):
        # Two answers with equal score in a flat space encoded as a set.
        items = sorted(space)
        if not items:
            return None
        return 1, items[0]

    def split(space, answer):
        return [frozenset(space) - {answer}]

    results = list(lawler_enumerate(frozenset({"x", "y"}), best, split))
    assert [a for _s, a in results] == ["x", "y"]
