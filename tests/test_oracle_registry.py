"""The engine registry and its class × engine matrix (repro.oracle.registry)."""

from __future__ import annotations

from fractions import Fraction

from repro.oracle.generators import CLASS_LABELS, generate_instance
from repro.oracle.registry import ENGINES, Prepared, VerifyContext, engine_matrix

ENGINE_NAMES = tuple(engine.name for engine in ENGINES)


def test_registry_has_the_ten_engine_families() -> None:
    assert ENGINE_NAMES == (
        "brute-force",
        "dense",
        "log-space",
        "fraction",
        "specialized",
        "runtime",
        "pool",
        "vectorized",
        "dense_sparse",
        "approx",
    )


def test_matrix_covers_every_cell() -> None:
    matrix = engine_matrix()
    assert set(matrix) == {
        (label, name) for label in CLASS_LABELS for name in ENGINE_NAMES
    }


def test_dense_columns_serve_only_the_deterministic_row() -> None:
    matrix = engine_matrix()
    for name in ("dense", "log-space", "vectorized"):
        applicable = {label for label in CLASS_LABELS if matrix[(label, name)]}
        assert applicable == {"deterministic"}, name


def test_exact_engines_serve_every_class() -> None:
    matrix = engine_matrix()
    for name in ("brute-force", "fraction", "specialized", "runtime", "pool"):
        assert all(matrix[(label, name)] for label in CLASS_LABELS), name


def test_dense_applicability_needs_uniform_emission() -> None:
    # trial 0 generates the k-uniform deterministic variant, trial 1 the
    # varied-emission one; the dense/vectorized predicate must split them.
    uniform = Prepared(generate_instance("deterministic", seed=4, trial=0))
    varied = Prepared(generate_instance("deterministic", seed=4, trial=1))
    by_name = {engine.name: engine for engine in ENGINES}
    assert by_name["dense"].applicable(uniform)
    assert by_name["vectorized"].applicable(uniform)
    assert not by_name["dense"].applicable(varied)
    assert not by_name["vectorized"].applicable(varied)
    # log-space needs determinism only, not uniformity.
    assert by_name["log-space"].applicable(varied)


def test_prepared_detects_exact_instances() -> None:
    exact = Prepared(generate_instance("uniform", seed=5, trial=2))
    floaty = Prepared(generate_instance("uniform", seed=5, trial=0))
    assert exact.is_exact()
    assert not floaty.is_exact()


def test_exact_match_semantics() -> None:
    by_name = {engine.name: engine for engine in ENGINES}
    exact = by_name["fraction"]
    # On exact instances, exact engines are held to equality...
    assert exact.matches(Fraction(1, 3), Fraction(1, 3), instance_exact=True)
    assert not exact.matches(Fraction(1, 3) + Fraction(1, 10**12), Fraction(1, 3), True)
    # ...but fall back to isclose on float instances.
    assert exact.matches(1 / 3, Fraction(1, 3), instance_exact=False)
    approx = by_name["log-space"]
    assert approx.matches(0.25 * (1 + 1e-8), 0.25, instance_exact=True)


def test_context_reuses_its_pool_and_closes_it() -> None:
    context = VerifyContext()
    try:
        assert context.pool() is context.pool()
    finally:
        context.close()
    assert context._pool is None


def test_approx_engine_scopes_to_the_general_class() -> None:
    matrix = engine_matrix()
    applicable = {label for label in CLASS_LABELS if matrix[(label, "approx")]}
    assert applicable == {"general"}


def test_approx_matches_by_interval_membership() -> None:
    from repro.approx import ApproxConfidence

    by_name = {engine.name: engine for engine in ENGINES}
    engine = by_name["approx"]
    got = ApproxConfidence(
        estimate=0.5, low=0.45, high=0.55, epsilon=0.1, delta=0.05,
        samples=10, successes=5, run_weight=1.0, certified=True, method="dklr",
    )
    # The referee value must fall inside the certified interval — the
    # estimate itself is never compared for closeness.
    assert engine.matches(got, Fraction(1, 2), instance_exact=True)
    assert engine.matches(got, 0.451, instance_exact=False)
    assert not engine.matches(got, Fraction(9, 10), instance_exact=True)


def test_approx_engine_is_deterministic_per_probe() -> None:
    from repro.confidence.brute_force import brute_force_answers
    from repro.oracle.registry import _approx

    prepared = Prepared(generate_instance("general", seed=11, trial=0))
    answers = brute_force_answers(prepared.sequence_exact, prepared.instance.query)
    answer, want = max(answers.items(), key=lambda item: (item[1], repr(item[0])))
    with VerifyContext() as context:
        first = _approx(prepared, answer, context)
        second = _approx(prepared, answer, context)
    assert first == second
    assert first.contains(want)
