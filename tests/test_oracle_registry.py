"""The engine registry and its class × engine matrix (repro.oracle.registry)."""

from __future__ import annotations

from fractions import Fraction

from repro.oracle.generators import CLASS_LABELS, generate_instance
from repro.oracle.registry import ENGINES, Prepared, VerifyContext, engine_matrix

ENGINE_NAMES = tuple(engine.name for engine in ENGINES)


def test_registry_has_the_eight_engine_families() -> None:
    assert ENGINE_NAMES == (
        "brute-force",
        "dense",
        "log-space",
        "fraction",
        "specialized",
        "runtime",
        "pool",
        "vectorized",
    )


def test_matrix_covers_every_cell() -> None:
    matrix = engine_matrix()
    assert set(matrix) == {
        (label, name) for label in CLASS_LABELS for name in ENGINE_NAMES
    }


def test_dense_columns_serve_only_the_deterministic_row() -> None:
    matrix = engine_matrix()
    for name in ("dense", "log-space", "vectorized"):
        applicable = {label for label in CLASS_LABELS if matrix[(label, name)]}
        assert applicable == {"deterministic"}, name


def test_exact_engines_serve_every_class() -> None:
    matrix = engine_matrix()
    for name in ("brute-force", "fraction", "specialized", "runtime", "pool"):
        assert all(matrix[(label, name)] for label in CLASS_LABELS), name


def test_dense_applicability_needs_uniform_emission() -> None:
    # trial 0 generates the k-uniform deterministic variant, trial 1 the
    # varied-emission one; the dense/vectorized predicate must split them.
    uniform = Prepared(generate_instance("deterministic", seed=4, trial=0))
    varied = Prepared(generate_instance("deterministic", seed=4, trial=1))
    by_name = {engine.name: engine for engine in ENGINES}
    assert by_name["dense"].applicable(uniform)
    assert by_name["vectorized"].applicable(uniform)
    assert not by_name["dense"].applicable(varied)
    assert not by_name["vectorized"].applicable(varied)
    # log-space needs determinism only, not uniformity.
    assert by_name["log-space"].applicable(varied)


def test_prepared_detects_exact_instances() -> None:
    exact = Prepared(generate_instance("uniform", seed=5, trial=2))
    floaty = Prepared(generate_instance("uniform", seed=5, trial=0))
    assert exact.is_exact()
    assert not floaty.is_exact()


def test_exact_match_semantics() -> None:
    by_name = {engine.name: engine for engine in ENGINES}
    exact = by_name["fraction"]
    # On exact instances, exact engines are held to equality...
    assert exact.matches(Fraction(1, 3), Fraction(1, 3), instance_exact=True)
    assert not exact.matches(Fraction(1, 3) + Fraction(1, 10**12), Fraction(1, 3), True)
    # ...but fall back to isclose on float instances.
    assert exact.matches(1 / 3, Fraction(1, 3), instance_exact=False)
    approx = by_name["log-space"]
    assert approx.matches(0.25 * (1 + 1e-8), 0.25, instance_exact=True)


def test_context_reuses_its_pool_and_closes_it() -> None:
    context = VerifyContext()
    try:
        assert context.pool() is context.pool()
    finally:
        context.close()
    assert context._pool is None
