"""s-projectors: direct semantics and compilation to transducers (Section 5)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import InvalidTransducerError
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.sprojector import (
    BOTTOM,
    IndexedSProjector,
    SProjector,
    decode_indexed_output,
)

from tests.conftest import make_random_dfa

ALPHABET = "abc"


def make_projector(prefix: str, pattern: str, suffix: str) -> SProjector:
    return SProjector(
        regex_to_dfa(prefix, ALPHABET),
        regex_to_dfa(pattern, ALPHABET),
        regex_to_dfa(suffix, ALPHABET),
    )


def naive_occurrences(projector: SProjector, string):
    """Definition-level oracle: try every split s = b . o . e."""
    string = tuple(string)
    n = len(string)
    for start in range(n + 1):
        for end in range(start, n + 1):
            b, o, e = string[:start], string[start:end], string[end:]
            if (
                projector.prefix.accepts(b)
                and projector.pattern.accepts(o)
                and projector.suffix.accepts(e)
            ):
                yield o, start + 1


@pytest.mark.parametrize(
    "prefix,pattern,suffix",
    [
        (".*", "ab|b", ".*"),
        (".*a", "b+", "c.*"),
        ("", "a*", ".*"),
        (".*", "", ".*"),  # pattern accepts only epsilon (Theorem 5.4 shape)
    ],
)
def test_occurrences_match_naive_split_semantics(prefix, pattern, suffix) -> None:
    projector = make_projector(prefix, pattern, suffix)
    for length in range(5):
        for string in itertools.product(ALPHABET, repeat=length):
            expected = set(naive_occurrences(projector, string))
            assert set(projector.occurrences(string)) == expected, string


def test_transduce_deduplicates_outputs() -> None:
    projector = make_projector(".*", "a", ".*")
    assert projector.transduce(("a", "b", "a")) == {("a",)}
    indexed = projector.indexed()
    assert indexed.transduce(("a", "b", "a")) == {(("a",), 1), (("a",), 3)}


def test_is_simple() -> None:
    simple = SProjector(
        sigma_star(ALPHABET), regex_to_dfa("a", ALPHABET), sigma_star(ALPHABET)
    )
    assert simple.is_simple()
    assert not make_projector(".*a", "b", ".*").is_simple()


def test_component_alphabets_must_match() -> None:
    with pytest.raises(InvalidTransducerError):
        SProjector(
            regex_to_dfa(".*", "ab"),
            regex_to_dfa("a", ALPHABET),
            regex_to_dfa(".*", ALPHABET),
        )


def test_compiled_transducer_matches_direct_semantics() -> None:
    projector = make_projector(".*", "ab|b", "c*")
    compiled = projector.to_transducer()
    assert not compiled.is_deterministic() or True  # nondeterminism expected
    for length in range(5):
        for string in itertools.product(ALPHABET, repeat=length):
            assert compiled.transduce(string) == projector.transduce(string), string


def test_compiled_indexed_transducer_encodes_positions() -> None:
    projector = make_projector(".*", "a", ".*")
    indexed = projector.indexed()
    compiled = indexed.to_transducer()
    for length in range(4):
        for string in itertools.product(ALPHABET, repeat=length):
            decoded = {
                decode_indexed_output(output)
                for output in compiled.transduce(string)
            }
            assert decoded == indexed.transduce(string), string


def test_decode_indexed_output() -> None:
    assert decode_indexed_output((BOTTOM, BOTTOM, "a", "b")) == (("a", "b"), 3)
    assert decode_indexed_output(("a",)) == (("a",), 1)
    assert decode_indexed_output((BOTTOM,)) == ((), 2)
    assert decode_indexed_output(()) == ((), 1)


def test_compiled_transducer_is_projector_class() -> None:
    projector = make_projector(".*", "ab", ".*")
    compiled = projector.to_transducer()
    # Non-indexed compilation emits the input symbol or epsilon: a projector.
    assert compiled.is_projector()


def test_random_components_agree_with_naive(rng: random.Random) -> None:
    for _ in range(5):
        projector = SProjector(
            make_random_dfa(ALPHABET, 2, rng),
            make_random_dfa(ALPHABET, 2, rng),
            make_random_dfa(ALPHABET, 2, rng),
        )
        compiled = projector.to_transducer()
        for length in range(4):
            for string in itertools.product(ALPHABET, repeat=length):
                expected = {o for o, _i in naive_occurrences(projector, string)}
                assert projector.transduce(string) == expected
                assert compiled.transduce(string) == expected
