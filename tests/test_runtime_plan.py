"""QueryPlan classification, compilation, and fingerprinting."""

from __future__ import annotations

import pytest

from repro.core.results import Order
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.runtime.plan import PlanKind, QueryPlan, fingerprint
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import IndexedSProjector, SProjector

ALPHABET = "ab"


def a_plus_projector(indexed: bool = False) -> SProjector:
    cls = IndexedSProjector if indexed else SProjector
    return cls(sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET))


def test_sprojector_plan_compiles_and_minimizes() -> None:
    plan = QueryPlan.build(a_plus_projector())
    assert plan.kind is PlanKind.SPROJECTOR
    assert plan.minimized is not None
    assert plan.compiled.check_alphabet(ALPHABET) is None
    assert plan.default_order is Order.IMAX
    # Minimized components never grow.
    for name in ("prefix", "pattern", "suffix"):
        assert len(getattr(plan.minimized, name).states) <= len(
            getattr(plan.query, name).states
        )


def test_indexed_plan_defaults_to_confidence_order() -> None:
    plan = QueryPlan.build(a_plus_projector(indexed=True))
    assert plan.kind is PlanKind.INDEXED_SPROJECTOR
    assert plan.default_order is Order.CONFIDENCE
    assert "5.8" in plan.confidence_algorithm


def test_deterministic_plan_streams() -> None:
    plan = QueryPlan.build(collapse_transducer({"a": "X", "b": "Y"}))
    assert plan.kind is PlanKind.DETERMINISTIC
    assert plan.deterministic
    assert plan.supports_streaming()
    assert plan.default_order is Order.EMAX
    assert plan.minimized is None
    assert plan.compiled is plan.query


def test_fingerprint_equal_for_equal_structures() -> None:
    assert fingerprint(a_plus_projector()) == fingerprint(a_plus_projector())
    assert fingerprint(collapse_transducer({"a": "X", "b": "Y"})) == fingerprint(
        collapse_transducer({"a": "X", "b": "Y"})
    )


def test_fingerprint_canonicalizes_equivalent_components() -> None:
    """Language-equal (but structurally different) component DFAs coincide
    after the plan-time minimization, so they share a fingerprint."""
    by_plus = a_plus_projector()
    by_star = SProjector(
        sigma_star(ALPHABET), regex_to_dfa("aa*", ALPHABET), sigma_star(ALPHABET)
    )
    assert fingerprint(by_plus) == fingerprint(by_star)


def test_fingerprint_separates_structures() -> None:
    prints = {
        fingerprint(a_plus_projector()),
        fingerprint(a_plus_projector(indexed=True)),  # class is part of the hash
        fingerprint(
            SProjector(
                sigma_star(ALPHABET), regex_to_dfa("b+", ALPHABET), sigma_star(ALPHABET)
            )
        ),
        fingerprint(collapse_transducer({"a": "X", "b": "Y"})),
        fingerprint(collapse_transducer({"a": "X", "b": "Z"})),
    }
    assert len(prints) == 5


def test_fingerprint_rejects_non_queries() -> None:
    with pytest.raises(TypeError):
        fingerprint("not a query")
    with pytest.raises(TypeError):
        QueryPlan.build(42)


def test_order_dispatch_mentions_each_order() -> None:
    plan = QueryPlan.build(a_plus_projector())
    dispatch = plan.order_dispatch()
    assert set(dispatch) == set(Order)
    assert "5.10" in dispatch[Order.IMAX]
    indexed = QueryPlan.build(a_plus_projector(indexed=True)).order_dispatch()
    assert "5.7" in indexed[Order.CONFIDENCE]
    assert "unavailable" in indexed[Order.IMAX]


def test_describe_is_a_plan_card() -> None:
    card = QueryPlan.build(a_plus_projector()).describe()
    for token in ("class:", "fingerprint:", "minimized:", "confidence:", "top-k"):
        assert token in card
    det = QueryPlan.build(collapse_transducer({"a": "X", "b": "Y"})).describe()
    assert "streaming:   yes" in det
