"""k-order Markov sequences and the first-order reduction (footnote 3)."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidMarkovSequenceError, InvalidTransducerError
from repro.markov.korder import KOrderMarkovSequence, lift_transducer
from repro.transducers.library import collapse_transducer, identity_mealy
from repro.automata.nfa import NFA
from repro.transducers.transducer import Transducer


def make_spec() -> KOrderMarkovSequence:
    half, quarter = Fraction(1, 2), Fraction(1, 4)
    return KOrderMarkovSequence(
        symbols=("a", "b"),
        k=2,
        initial={("a", "a"): half, ("a", "b"): quarter, ("b", "a"): quarter},
        transitions=[
            {
                ("a", "a"): {"a": Fraction(1, 3), "b": Fraction(2, 3)},
                ("a", "b"): {"a": Fraction(1)},
                ("b", "a"): {"b": Fraction(1)},
            },
            {
                ("a", "a"): {"a": half, "b": half},
                ("a", "b"): {"b": Fraction(1)},
                ("b", "a"): {"a": Fraction(1)},
                ("b", "b"): {"a": half, "b": half},
            },
        ],
    )


def make_random_spec(rng: random.Random, k: int, length: int) -> KOrderMarkovSequence:
    symbols = ("a", "b")
    windows = [()]
    for _ in range(k):
        windows = [w + (s,) for w in windows for s in symbols]

    def row():
        weights = [rng.random() + 0.01 for _ in symbols]
        total = sum(weights)
        values = {s: w / total for s, w in zip(symbols, weights)}
        top = max(values, key=values.get)
        values[top] += 1.0 - sum(values.values())
        return values

    weights = [rng.random() + 0.01 for _ in windows]
    total = sum(weights)
    initial = {w: x / total for w, x in zip(windows, weights)}
    top = max(initial, key=initial.get)
    initial[top] += 1.0 - sum(initial.values())
    transitions = [{w: row() for w in windows} for _ in range(length - k)]
    return KOrderMarkovSequence(symbols, k, initial, transitions)


def reduced_world_to_original(windows_world: tuple) -> tuple:
    return windows_world[0] + tuple(w[-1] for w in windows_world[1:])


def test_prob_of_matches_world_enumeration() -> None:
    spec = make_spec()
    for world, prob in spec.worlds():
        assert spec.prob_of(world) == prob
    assert sum(p for _w, p in spec.worlds()) == 1


def test_reduction_preserves_distribution() -> None:
    spec = make_spec()
    reduced = spec.to_first_order()
    assert reduced.length == spec.length - spec.k + 1
    original = {}
    for world, prob in reduced.worlds():
        key = reduced_world_to_original(world)
        original[key] = original.get(key, 0) + prob
    assert original == dict(spec.worlds())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000), k=st.integers(1, 3), extra=st.integers(0, 2))
def test_reduction_preserves_distribution_random(seed: int, k: int, extra: int) -> None:
    rng = random.Random(seed)
    spec = make_random_spec(rng, k, k + extra)
    reduced = spec.to_first_order()
    collected: dict = {}
    for world, prob in reduced.worlds():
        key = reduced_world_to_original(world)
        collected[key] = collected.get(key, 0.0) + prob
    expected = {}
    for world, prob in spec.worlds():
        expected[world] = expected.get(world, 0.0) + prob
    assert set(collected) == set(expected)
    for world in expected:
        assert math.isclose(collected[world], expected[world], abs_tol=1e-9)


def test_lifted_transducer_matches_original() -> None:
    spec = make_spec()
    reduced = spec.to_first_order()
    base = collapse_transducer({"a": "x", "b": "y"})
    lifted = lift_transducer(base, spec.k)
    for world, _prob in reduced.worlds():
        original = reduced_world_to_original(world)
        assert lifted.transduce_deterministic(world) == base.transduce_deterministic(
            original
        )


def test_lifted_transducer_rejects_inconsistent_windows() -> None:
    base = identity_mealy("ab")
    lifted = lift_transducer(base, 2)
    # Windows ("a","a") then ("b","b") do not overlap consistently.
    assert lifted.transduce_deterministic((("a", "a"), ("b", "b"))) is None


def test_lift_requires_deterministic() -> None:
    nfa = NFA("a", {0, 1}, 0, {0, 1}, {(0, "a"): {0, 1}})
    nondeterministic = Transducer(nfa, {})
    with pytest.raises(InvalidTransducerError):
        lift_transducer(nondeterministic, 2)


def test_spec_validation() -> None:
    with pytest.raises(InvalidMarkovSequenceError):
        KOrderMarkovSequence(("a",), 0, {(): 1}, [])
    with pytest.raises(InvalidMarkovSequenceError):
        KOrderMarkovSequence(("a",), 2, {("a",): 1}, [])  # window length != k


def test_prob_of_wrong_length() -> None:
    spec = make_spec()
    with pytest.raises(InvalidMarkovSequenceError):
        spec.prob_of(("a",))


def test_order_one_reduction_is_isomorphic() -> None:
    rng = random.Random(3)
    spec = make_random_spec(rng, 1, 3)
    reduced = spec.to_first_order()
    assert reduced.length == spec.length
    for world, prob in spec.worlds():
        windows = tuple((s,) for s in world)
        assert math.isclose(reduced.prob_of(windows), prob, abs_tol=1e-12)
