"""Transducer composition (query pipelines)."""

from __future__ import annotations

import itertools
import math
import random

import pytest

from repro.errors import InvalidTransducerError
from repro.automata.nfa import NFA
from repro.automata.regex import regex_to_dfa
from repro.transducers.compose import compose, restrict
from repro.transducers.library import collapse_transducer, identity_mealy, relabel_mealy
from repro.transducers.transducer import Transducer
from repro.confidence.brute_force import brute_force_answers
from repro.confidence.deterministic import confidence_deterministic

from tests.conftest import make_random_deterministic_transducer, make_sequence


def reference_compose_outputs(first: Transducer, second: Transducer, string):
    """Definition-level oracle: all o with s -> first -> m -> second -> o."""
    outputs = set()
    for intermediate in first.transduce(string):
        result = second.transduce_deterministic(intermediate)
        if result is not None:
            outputs.add(result)
    return outputs


def test_compose_identity_is_noop() -> None:
    base = collapse_transducer({"a": "x", "b": "y"})
    composed = compose(base, identity_mealy(("x", "y")))
    for string in itertools.product("ab", repeat=3):
        assert composed.transduce(string) == base.transduce(string)


def test_compose_two_relabelings() -> None:
    first = relabel_mealy({"a": "1", "b": "2"})
    second = relabel_mealy({"1": "odd", "2": "even"})
    composed = compose(first, second)
    assert composed.transduce_deterministic(("a", "b")) == ("odd", "even")
    assert composed.is_deterministic()
    assert composed.is_mealy()


def test_compose_matches_reference_on_random_deterministic(rng: random.Random) -> None:
    for _ in range(6):
        first = make_random_deterministic_transducer("ab", 3, rng)
        second = make_random_deterministic_transducer(
            first.output_alphabet or ("x",), 2, rng, out_alphabet=("p", "q")
        )
        # Ensure second can read everything first emits.
        if set(first.output_alphabet) - set(second.input_alphabet):
            continue
        composed = compose(first, second)
        for string in itertools.product("ab", repeat=3):
            assert composed.transduce(string) == reference_compose_outputs(
                first, second, string
            ), string


def test_compose_with_nondeterministic_first() -> None:
    nfa = NFA("a", {0, 1, 2}, 0, {1, 2}, {(0, "a"): {1, 2}})
    first = Transducer(nfa, {(0, "a", 1): ("x",), (0, "a", 2): ("y",)})
    second = relabel_mealy({"x": "X", "y": "Y"})
    composed = compose(first, second)
    assert composed.transduce(("a",)) == {("X",), ("Y",)}


def test_compose_second_filters() -> None:
    """A selective second transducer prunes intermediate strings."""
    first = collapse_transducer({"a": "x", "b": "y"})
    # Second accepts only strings starting with x.
    from repro.automata.dfa import DFA

    dfa = DFA(
        ("x", "y"),
        {0, 1, "dead"},
        0,
        {1},
        {
            (0, "x"): 1,
            (0, "y"): "dead",
            (1, "x"): 1,
            (1, "y"): 1,
            ("dead", "x"): "dead",
            ("dead", "y"): "dead",
        },
    )
    second = Transducer.from_dfa(
        dfa, {(q, s, t): (s,) for q, s, t in dfa.transitions()}
    )
    composed = compose(first, second)
    assert composed.transduce(("a", "b")) == {("x", "y")}
    assert composed.transduce(("b", "a")) == set()


def test_compose_rejects_nondeterministic_second() -> None:
    second = Transducer(NFA("x", {0, 1}, 0, {0, 1}, {(0, "x"): {0, 1}}), {})
    with pytest.raises(InvalidTransducerError):
        compose(identity_mealy("x"), second)


def test_compose_rejects_unreadable_symbols() -> None:
    first = collapse_transducer({"a": "z"})
    second = identity_mealy(("x",))
    with pytest.raises(InvalidTransducerError):
        compose(first, second)


def test_restrict_filters_worlds() -> None:
    base = collapse_transducer({"a": "x", "b": "y"})
    selector = regex_to_dfa("a.*", "ab")  # worlds starting with a
    restricted = restrict(base, selector)
    assert restricted.transduce(("a", "b")) == {("x", "y")}
    assert restricted.transduce(("b", "a")) == set()
    assert restricted.is_deterministic()
    assert restricted.is_selective()
    assert restricted.uniformity() == 1


def test_restrict_confidence_is_conjunction(rng: random.Random) -> None:
    sequence = make_sequence("ab", 4, rng)
    base = collapse_transducer({"a": "x", "b": "y"})
    selector = regex_to_dfa(".*b", "ab")
    restricted = restrict(base, selector)
    expected = {}
    for world, prob in sequence.worlds():
        if selector.accepts(world):
            output = base.transduce_deterministic(world)
            expected[output] = expected.get(output, 0) + prob
    produced = brute_force_answers(sequence, restricted)
    assert set(produced) == set(expected)
    for output in produced:
        assert math.isclose(produced[output], expected[output], abs_tol=1e-9)
        assert math.isclose(
            confidence_deterministic(sequence, restricted, output),
            expected[output],
            abs_tol=1e-9,
        )


def test_restrict_preserves_projector_class() -> None:
    from repro.transducers.library import projector_from_dfa

    dfa = regex_to_dfa(".*", "ab")
    base = projector_from_dfa(dfa, keep={"a"})
    restricted = restrict(base, regex_to_dfa("a.*", "ab"))
    assert restricted.is_projector()


def test_restrict_alphabet_mismatch() -> None:
    base = collapse_transducer({"a": "x", "b": "y"})
    with pytest.raises(InvalidTransducerError):
        restrict(base, regex_to_dfa("a", "abc"))


def test_composed_confidence_matches_brute_force(rng: random.Random) -> None:
    sequence = make_sequence("ab", 4, rng)
    first = collapse_transducer({"a": "x", "b": "y"})
    second = relabel_mealy({"x": "0", "y": "1"})
    composed = compose(first, second)
    expected = brute_force_answers(sequence, composed)
    for output, confidence in expected.items():
        assert math.isclose(
            confidence_deterministic(sequence, composed, output),
            confidence,
            abs_tol=1e-9,
        )
