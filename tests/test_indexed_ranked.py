"""Theorem 5.7: exact decreasing-confidence enumeration for indexed s-projectors."""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.markov.builders import uniform_iid
from repro.automata.operations import empty_string_only, sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.confidence.brute_force import brute_force_answers
from repro.enumeration.indexed_ranked import (
    build_answer_dag,
    enumerate_indexed_ranked,
    top_answer_indexed,
)

from tests.conftest import make_random_dfa, make_sequence

ALPHABET = "abc"


def random_projector(rng: random.Random) -> IndexedSProjector:
    return IndexedSProjector(
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 5))
def test_complete_correct_and_sorted(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence(ALPHABET, length, rng)
    projector = random_projector(rng)
    expected = brute_force_answers(sequence, projector)
    produced = list(enumerate_indexed_ranked(sequence, projector))
    answers = [answer for _c, answer in produced]
    assert len(answers) == len(set(answers))
    assert set(answers) == set(expected)
    for confidence, answer in produced:
        assert math.isclose(confidence, expected[answer], abs_tol=1e-9), answer
    confidences = [c for c, _a in produced]
    assert all(
        confidences[i] >= confidences[i + 1] - 1e-12
        for i in range(len(confidences) - 1)
    )


def test_empty_match_answers_included() -> None:
    sequence = uniform_iid("ab", 2, exact=True)
    projector = SProjector(
        regex_to_dfa("a*", "ab"), empty_string_only("ab"), regex_to_dfa("b*", "ab")
    )
    produced = dict(
        (answer, confidence)
        for confidence, answer in enumerate_indexed_ranked(sequence, projector)
    )
    expected = brute_force_answers(sequence, projector.indexed())
    assert produced == expected
    assert ((), 1) in produced and ((), 3) in produced


def test_top_answer_indexed() -> None:
    rng = random.Random(8)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = random_projector(rng)
    expected = brute_force_answers(sequence, projector)
    found = top_answer_indexed(sequence, projector)
    if not expected:
        assert found is None
    else:
        confidence, _answer = found
        assert math.isclose(confidence, max(expected.values()), abs_tol=1e-9)


def test_lazy_top_k_on_large_instance() -> None:
    """n = 40 has a huge answer space; top-3 must come out fast."""
    sequence = uniform_iid("ab", 40)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("a+", "ab"), sigma_star("ab")
    )
    iterator = enumerate_indexed_ranked(sequence, projector)
    top = [next(iterator) for _ in range(3)]
    assert len(top) == 3
    assert top[0][0] >= top[1][0] >= top[2][0]
    # Top answers are single-'a' occurrences with confidence 1/2 each.
    assert math.isclose(top[0][0], 0.5, abs_tol=1e-9)


def test_dag_structure_is_layered() -> None:
    rng = random.Random(5)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = random_projector(rng)
    dag = build_answer_dag(sequence, projector)
    dag.topological_order()  # must be acyclic
    assert dag.num_nodes >= 2
