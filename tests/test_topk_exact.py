"""The Fagin-style exact top-k by confidence for s-projectors."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.markov.builders import uniform_iid
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.sprojector import SProjector
from repro.confidence.brute_force import brute_force_answers
from repro.enumeration.topk_exact import (
    exact_top_answer_confidence,
    exact_topk_confidence,
)
from repro.hardness.independent_set import occurrence_gap_instance

from tests.conftest import make_random_dfa, make_sequence

ALPHABET = "abc"


def random_projector(rng: random.Random) -> SProjector:
    return SProjector(
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), k=st.integers(1, 4))
def test_matches_brute_force_topk(seed: int, k: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = random_projector(rng)
    expected = sorted(
        brute_force_answers(sequence, projector).items(), key=lambda item: -item[1]
    )
    results, _examined = exact_topk_confidence(sequence, projector, k)
    assert len(results) == min(k, len(expected))
    # Confidences must match the brute-force ranking (answers may differ
    # only under exact ties).
    for (confidence, answer), (_want_answer, want_confidence) in zip(
        results, expected
    ):
        assert math.isclose(confidence, want_confidence, abs_tol=1e-9)
        assert math.isclose(
            confidence,
            dict(expected)[answer],
            abs_tol=1e-9,
        )


def test_top_answer_on_gap_instance() -> None:
    """On the occurrence-gap family the I_max-top answer coincides with
    the confidence-top answer, and the TA loop certifies it exactly."""
    instance = occurrence_gap_instance(8)
    found = exact_top_answer_confidence(instance.sequence, instance.projector)
    assert found is not None
    confidence, answer = found
    brute = brute_force_answers(instance.sequence, instance.projector)
    best_answer = max(brute, key=brute.get)
    assert answer == best_answer
    assert math.isclose(float(confidence), float(brute[best_answer]), abs_tol=1e-12)


def test_examined_counter_and_early_stop() -> None:
    sequence = uniform_iid("ab", 12)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("a+", "ab"), sigma_star("ab")
    )
    results, examined = exact_topk_confidence(sequence, projector, 1)
    assert len(results) == 1
    # The stream has 12 answers (a^1..a^12); the TA cut-off must fire well
    # before exhausting it... but at least one candidate is examined.
    assert 1 <= examined <= 12


def test_max_candidates_warns() -> None:
    rng = random.Random(5)
    sequence = make_sequence(ALPHABET, 5, rng)
    projector = SProjector(
        sigma_star(ALPHABET), regex_to_dfa("[abc]+", ALPHABET), sigma_star(ALPHABET)
    )
    with pytest.warns(RuntimeWarning):
        exact_topk_confidence(sequence, projector, 3, max_candidates=1)


def test_empty_answer_set() -> None:
    sequence = uniform_iid("ab", 2)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("aaa", "ab"), regex_to_dfa("aaa", "ab")
    )
    assert exact_top_answer_confidence(sequence, projector) is None
    results, examined = exact_topk_confidence(sequence, projector, 3)
    assert results == [] and examined == 0


class TestTransducerTA:
    def test_matches_brute_force(self) -> None:
        from repro.enumeration.topk_exact import exact_topk_confidence_transducer
        from repro.transducers.library import collapse_transducer

        for seed in range(4):
            rng = random.Random(seed)
            sequence = make_sequence("ab", 5, rng)
            query = collapse_transducer({"a": "X", "b": "Y"})
            expected = sorted(
                brute_force_answers(sequence, query).values(), reverse=True
            )
            for k in (1, 3):
                results, examined = exact_topk_confidence_transducer(
                    sequence, query, k
                )
                assert [float(c) for c, _a in results] == pytest.approx(
                    [float(v) for v in expected[:k]]
                )
                assert examined >= len(results)

    def test_max_candidates_warning(self) -> None:
        from repro.enumeration.topk_exact import exact_topk_confidence_transducer
        from repro.transducers.library import collapse_transducer

        sequence = uniform_iid("ab", 6)
        query = collapse_transducer({"a": "X", "b": "X"})  # heavy collapse
        with pytest.warns(RuntimeWarning):
            exact_topk_confidence_transducer(sequence, query, 2, max_candidates=1)

    def test_k_validation(self) -> None:
        from repro.enumeration.topk_exact import exact_topk_confidence_transducer
        from repro.transducers.library import identity_mealy

        with pytest.raises(ValueError):
            exact_topk_confidence_transducer(
                uniform_iid("ab", 2), identity_mealy("ab"), 0
            )


def test_k_validation() -> None:
    sequence = uniform_iid("ab", 2)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("a", "ab"), sigma_star("ab")
    )
    with pytest.raises(ValueError):
        exact_topk_confidence(sequence, projector, 0)
