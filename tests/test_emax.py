"""Theorem 4.3: ranked enumeration by decreasing E_max."""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.markov.builders import uniform_iid
from repro.confidence.brute_force import brute_force_answers, brute_force_emax
from repro.enumeration.emax import enumerate_emax, top_answer_emax
from repro.transducers.library import collapse_transducer

from tests.conftest import (
    make_random_deterministic_transducer,
    make_random_uniform_transducer,
    make_sequence,
)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 4))
def test_scores_and_order_match_brute_force(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", length, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    expected = brute_force_emax(sequence, transducer)
    results = list(enumerate_emax(sequence, transducer))
    produced = [answer for _s, answer in results]
    assert len(produced) == len(set(produced))
    assert set(produced) == set(expected)
    for score, answer in results:
        assert math.isclose(score, expected[answer], abs_tol=1e-9)
    scores = [s for s, _a in results]
    assert all(scores[i] >= scores[i + 1] - 1e-12 for i in range(len(scores) - 1))


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_nondeterministic_transducers_supported(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 3, rng)
    transducer = make_random_uniform_transducer("ab", 2, rng, k=1)
    expected = brute_force_emax(sequence, transducer)
    results = list(enumerate_emax(sequence, transducer))
    assert {a for _s, a in results} == set(expected)
    for score, answer in results:
        assert math.isclose(score, expected[answer], abs_tol=1e-9)


def test_top_answer_emax() -> None:
    rng = random.Random(12)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    expected = brute_force_emax(sequence, transducer)
    found = top_answer_emax(sequence, transducer)
    if expected:
        score, _answer = found
        assert math.isclose(score, max(expected.values()), abs_tol=1e-9)
    else:
        assert found is None


def test_lazy_top_k_does_not_exhaust_answer_space() -> None:
    sequence = uniform_iid("ab", 14, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    iterator = enumerate_emax(sequence, transducer)
    top = [next(iterator) for _ in range(3)]
    assert len(top) == 3
    # With a uniform sequence every answer has E_max 2^-14.
    assert all(score == top[0][0] for score, _a in top)


def test_emax_equals_confidence_for_injective_queries() -> None:
    """When worlds map injectively to answers, E_max == conf."""
    rng = random.Random(3)
    sequence = make_sequence("ab", 4, rng)
    from repro.transducers.library import identity_mealy

    transducer = identity_mealy("ab")
    confidences = brute_force_answers(sequence, transducer)
    for score, answer in enumerate_emax(sequence, transducer):
        assert math.isclose(score, confidences[answer], abs_tol=1e-12)
