"""Semiring laws and basic behaviour."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.semiring import BOOLEAN, COUNTING, LOG, REAL, TROPICAL, VITERBI, Semiring

probabilities = st.fractions(min_value=0, max_value=1, max_denominator=50)


@pytest.mark.parametrize("semiring", [REAL, VITERBI, BOOLEAN, COUNTING, TROPICAL, LOG])
def test_identities(semiring: Semiring) -> None:
    values = {
        "real": [0, 1, Fraction(1, 3), 0.25],
        "viterbi": [0, 1, Fraction(1, 3), 0.25],
        "boolean": [True, False],
        "counting": [0, 1, 7],
        "tropical": [-math.inf, 0.0, -1.5],
        "log": [-math.inf, 0.0, -1.5],
    }[semiring.name]
    for value in values:
        assert semiring.add(semiring.zero, value) == value
        assert semiring.mul(semiring.one, value) == value


@given(a=probabilities, b=probabilities, c=probabilities)
def test_real_distributivity(a, b, c) -> None:
    assert REAL.mul(a, REAL.add(b, c)) == REAL.add(REAL.mul(a, b), REAL.mul(a, c))


@given(a=probabilities, b=probabilities, c=probabilities)
def test_viterbi_distributivity(a, b, c) -> None:
    left = VITERBI.mul(a, VITERBI.add(b, c))
    right = VITERBI.add(VITERBI.mul(a, b), VITERBI.mul(a, c))
    assert left == right


@given(a=probabilities, b=probabilities)
def test_commutativity(a, b) -> None:
    for semiring in (REAL, VITERBI):
        assert semiring.add(a, b) == semiring.add(b, a)
        assert semiring.mul(a, b) == semiring.mul(b, a)


def test_log_semiring_matches_real() -> None:
    xs = [0.5, 0.25, 0.125]
    real_sum = sum(xs)
    log_sum = LOG.sum(math.log(x) for x in xs)
    assert math.isclose(math.exp(log_sum), real_sum)
    log_prod = LOG.product(math.log(x) for x in xs)
    assert math.isclose(math.exp(log_prod), 0.5 * 0.25 * 0.125)


def test_log_zero_is_absorbing_for_add() -> None:
    assert LOG.add(LOG.zero, -2.0) == -2.0
    assert LOG.add(-2.0, LOG.zero) == -2.0


def test_sum_and_product_empty() -> None:
    assert REAL.sum([]) == 0
    assert REAL.product([]) == 1
    assert BOOLEAN.sum([]) is False
    assert BOOLEAN.product([]) is True


def test_is_zero() -> None:
    assert REAL.is_zero(0)
    assert not REAL.is_zero(Fraction(1, 10**9))
    assert LOG.is_zero(-math.inf)
    assert not LOG.is_zero(0.0)


def test_counting_semiring_counts() -> None:
    # Number of paths in a 2-step branching structure: 2 * 3.
    assert COUNTING.mul(2, 3) == 6
    assert COUNTING.sum([1, 1, 1]) == 3


def test_real_semiring_works_with_fractions_exactly() -> None:
    third = Fraction(1, 3)
    assert REAL.sum([third, third, third]) == 1
    assert REAL.product([third, Fraction(3, 1)]) == 1
