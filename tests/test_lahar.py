"""The Lahar-style Markov-stream database."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.markov.builders import hospital_model
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.lahar.database import MarkovStreamDatabase
from repro.core.results import Order


@pytest.fixture
def db() -> MarkovStreamDatabase:
    database = MarkovStreamDatabase()
    database.register_stream("cart-17", hospital_sequence())
    rng = random.Random(4)
    database.register_stream("cart-23", hospital_model(2, 5, rng))
    database.register_query("rooms", room_change_transducer())
    return database


def test_catalog(db: MarkovStreamDatabase) -> None:
    assert db.streams() == ["cart-17", "cart-23"]
    assert db.queries() == ["rooms"]
    assert db.stream("cart-17").length == 5


def test_unknown_names_raise(db: MarkovStreamDatabase) -> None:
    with pytest.raises(ReproError):
        db.stream("nope")
    with pytest.raises(ReproError):
        db.drop_stream("nope")
    with pytest.raises(ReproError):
        list(db.query("cart-17", "unknown-query"))
    with pytest.raises(ReproError):
        db.register_stream("", hospital_sequence())


def test_drop_stream(db: MarkovStreamDatabase) -> None:
    db.drop_stream("cart-23")
    assert db.streams() == ["cart-17"]


def test_query_by_name_and_by_object(db: MarkovStreamDatabase) -> None:
    by_name = {a.output for a in db.query("cart-17", "rooms")}
    by_object = {a.output for a in db.query("cart-17", room_change_transducer())}
    assert by_name == by_object
    assert ("1", "2") in by_name


def test_query_with_order_and_limit(db: MarkovStreamDatabase) -> None:
    ranked = list(db.query("cart-17", "rooms", order=Order.EMAX, limit=2))
    assert len(ranked) == 2
    assert ranked[0].output == ("1", "2")


def test_top_k(db: MarkovStreamDatabase) -> None:
    answers = db.top_k("cart-17", "rooms", 3)
    assert len(answers) == 3
    assert answers[0].output == ("1", "2")


def test_top_k_across_streams(db: MarkovStreamDatabase) -> None:
    merged = db.top_k_across("rooms", 4)
    assert len(merged) == 4
    scores = [item.answer.score for item in merged]
    assert scores == sorted(scores, reverse=True)
    assert {item.stream for item in merged} <= {"cart-17", "cart-23"}


def test_top_k_across_subset(db: MarkovStreamDatabase) -> None:
    merged = db.top_k_across("rooms", 2, streams=["cart-17"])
    assert all(item.stream == "cart-17" for item in merged)
