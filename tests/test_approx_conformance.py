"""Statistical conformance: the FPRAS (1±ε, δ) contract vs an exact referee.

The acceptance criterion for the estimator: for every hardness family
small enough to compute exactly, 100 seeded FPRAS runs at ε=0.1, δ=0.05
must land inside the (1±ε) interval at least 95 times. With δ=0.05 the
expected miss count is ≤ 5 per 100 runs; in practice the DKLR rule is
conservative and the fixed seed matrix below was observed to land all
runs in-interval, so the test is deterministic and flake-free — the
seeds are derived from sha256 of the family label and trial index, never
from global random state.

Three regimes are covered:

* the gap families (unambiguous products — the shortcut answers exactly,
  so conformance there checks the run-weight DP against closed forms);
* the same families with ``exact_shortcut=False`` (genuine sampling on
  instances with a known referee);
* the 2-DNF counting reduction (genuinely ambiguous product — the
  union-of-runs correction is load-bearing) against the Fraction
  brute-force referee.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction

import pytest

from repro.approx.fpras import approximate_confidence
from repro.confidence.brute_force import brute_force_confidence
from repro.hardness.counting import two_dnf_counting_instance
from repro.hardness.gap_instances import (
    amplified_gap_instance,
    mealy_gap_instance,
    projector_gap_instance,
)

EPSILON = 0.1
DELTA = 0.05
TRIALS = 100
REQUIRED_HITS = 95


def conformance_seed(family: str, trial: int) -> int:
    """The deterministic seed matrix: sha256, never global random state."""
    token = f"approx-conformance|{family}|{trial}|{EPSILON}|{DELTA}"
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


def run_trials(
    family: str, sequence, query, answer, exact: Fraction, *, exact_shortcut: bool = True
) -> int:
    """Number of the TRIALS seeded runs whose interval contains ``exact``."""
    hits = 0
    for trial in range(TRIALS):
        estimate = approximate_confidence(
            sequence,
            query,
            answer,
            epsilon=EPSILON,
            delta=DELTA,
            seed=conformance_seed(family, trial),
            exact_shortcut=exact_shortcut,
        )
        assert estimate.certified, (family, trial, estimate.method)
        if estimate.contains(exact):
            hits += 1
    return hits


GAP_FAMILIES = {
    "mealy-4": lambda: mealy_gap_instance(4),
    "mealy-6": lambda: mealy_gap_instance(6),
    "projector-4": lambda: projector_gap_instance(4),
    "projector-6": lambda: projector_gap_instance(6),
    "amplified-mealy-3x2": lambda: amplified_gap_instance(mealy_gap_instance(3), 2),
    "amplified-projector-3x2": lambda: amplified_gap_instance(
        projector_gap_instance(3), 2
    ),
}


@pytest.mark.parametrize("family", sorted(GAP_FAMILIES))
def test_gap_family_conformance(family: str) -> None:
    """Every gap family: 100 runs against its closed-form confidence."""
    gap = GAP_FAMILIES[family]()
    hits = run_trials(
        family, gap.sequence, gap.query, gap.emax_top_answer, gap.emax_top_confidence
    )
    assert hits >= REQUIRED_HITS, f"{family}: only {hits}/{TRIALS} in-interval"


@pytest.mark.parametrize("family", ["mealy-4", "projector-4"])
def test_forced_sampling_conformance(family: str) -> None:
    """Same referee, shortcut disabled: the sampler itself must conform."""
    gap = GAP_FAMILIES[family]()
    hits = run_trials(
        f"forced-{family}",
        gap.sequence,
        gap.query,
        gap.emax_top_answer,
        gap.emax_top_confidence,
        exact_shortcut=False,
    )
    assert hits >= REQUIRED_HITS, f"forced {family}: only {hits}/{TRIALS} in-interval"


def test_ambiguous_product_conformance() -> None:
    """The union-of-runs path on a genuinely ambiguous product (2-DNF)."""
    instance = two_dnf_counting_instance([(1, 1), (2, 2), (1, 2)], 2, 2)
    exact = brute_force_confidence(
        instance.sequence, instance.transducer, instance.answer
    )
    assert exact == Fraction(1, 2)  # the referee itself is known in closed form
    hits = run_trials(
        "2dnf", instance.sequence, instance.transducer, instance.answer, exact
    )
    assert hits >= REQUIRED_HITS, f"2dnf: only {hits}/{TRIALS} in-interval"


def test_wider_tolerances_also_conform() -> None:
    """The serve/oracle default regime (ε=0.25) on the ambiguous product."""
    instance = two_dnf_counting_instance([(1, 1), (2, 2)], 2, 2)
    exact = brute_force_confidence(
        instance.sequence, instance.transducer, instance.answer
    )
    hits = 0
    for trial in range(TRIALS):
        estimate = approximate_confidence(
            instance.sequence,
            instance.transducer,
            instance.answer,
            epsilon=0.25,
            delta=0.05,
            seed=conformance_seed("2dnf-wide", trial),
        )
        if estimate.contains(exact):
            hits += 1
    assert hits >= REQUIRED_HITS, f"2dnf-wide: only {hits}/{TRIALS} in-interval"


def test_seed_matrix_is_reproducible() -> None:
    """The matrix is pure sha256 — pin a few entries so a refactor that
    silently changes the seeds (and thus the observed hit counts) fails
    loudly instead of re-rolling the dice."""
    assert conformance_seed("mealy-4", 0) != conformance_seed("mealy-4", 1)
    assert conformance_seed("mealy-4", 0) != conformance_seed("projector-4", 0)
    assert conformance_seed("2dnf", 0) == int.from_bytes(
        hashlib.sha256(b"approx-conformance|2dnf|0|0.1|0.05").digest()[:8], "big"
    )
