"""Dense numpy confidence path vs the sparse-dict DP."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidTransducerError
from repro.markov.builders import uniform_iid
from repro.automata.nfa import NFA
from repro.transducers.library import collapse_transducer, identity_mealy
from repro.transducers.transducer import Transducer
from repro.confidence.dense import confidence_deterministic_dense
from repro.confidence.deterministic import confidence_deterministic
from repro.confidence.brute_force import brute_force_answers

from tests.conftest import make_random_dfa, make_sequence


def make_uniform_deterministic(rng: random.Random, k: int = 1) -> Transducer:
    dfa = make_random_dfa("ab", 3, rng)
    omega = {
        (state, symbol, target): tuple(rng.choice("xy") for _ in range(k))
        for state, symbol, target in dfa.transitions()
    }
    return Transducer.from_dfa(dfa, omega)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), k=st.integers(1, 2))
def test_dense_matches_sparse(seed: int, k: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_uniform_deterministic(rng, k=k)
    for output in brute_force_answers(sequence, transducer):
        sparse = confidence_deterministic(sequence, transducer, output)
        dense = confidence_deterministic_dense(sequence, transducer, output)
        assert math.isclose(dense, sparse, abs_tol=1e-9), output


def test_dense_zero_for_wrong_length() -> None:
    sequence = uniform_iid("ab", 3)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    assert confidence_deterministic_dense(sequence, transducer, ("X",)) == 0.0


def test_dense_identity_world_probability() -> None:
    rng = random.Random(8)
    sequence = make_sequence("ab", 5, rng)
    transducer = identity_mealy("ab")
    world = sequence.sample(rng)
    assert math.isclose(
        confidence_deterministic_dense(sequence, transducer, world),
        sequence.prob_of(world),
        abs_tol=1e-12,
    )


def test_dense_rejects_nondeterministic_and_non_uniform() -> None:
    sequence = uniform_iid("a", 2)
    nondeterministic = Transducer(
        NFA("a", {0, 1}, 0, {0, 1}, {(0, "a"): {0, 1}}), {}
    )
    with pytest.raises(InvalidTransducerError):
        confidence_deterministic_dense(sequence, nondeterministic, ())
    dfa_nfa = NFA("a", {0}, 0, {0}, {(0, "a"): {0}})
    non_uniform = Transducer(dfa_nfa, {(0, "a", 0): ("x", "y")})
    # 2-uniform is fine; make a truly non-uniform one.
    mixed = Transducer(
        NFA("ab", {0}, 0, {0}, {(0, "a"): {0}, (0, "b"): {0}}),
        {(0, "a", 0): ("x", "y"), (0, "b", 0): ("x",)},
    )
    with pytest.raises(InvalidTransducerError):
        confidence_deterministic_dense(uniform_iid("ab", 2), mixed, ("x", "y"))
    # And the 2-uniform machine works.
    assert confidence_deterministic_dense(sequence, non_uniform, ("x", "y") * 2) == 1.0
