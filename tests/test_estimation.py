"""Estimating Markov sequences from trajectories."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest

from repro.errors import InvalidMarkovSequenceError
from repro.markov.builders import iid, random_sequence
from repro.markov.estimation import empirical_distribution, estimate_from_worlds


def test_exact_recovery_from_full_support() -> None:
    """Feeding the exact world distribution recovers the sequence."""
    sequence = iid({"a": Fraction(1, 4), "b": Fraction(3, 4)}, 3)
    weighted = dict(sequence.worlds())
    estimated = empirical_distribution(weighted)
    for world, prob in sequence.worlds():
        assert estimated.prob_of(world) == prob


def test_empirical_distribution_of_markov_data_random() -> None:
    rng = random.Random(4)
    sequence = random_sequence("ab", 4, rng)
    estimated = empirical_distribution(dict(sequence.worlds()))
    for world, prob in sequence.worlds():
        assert math.isclose(float(estimated.prob_of(world)), prob, abs_tol=1e-9)


def test_empirical_projection_of_non_markov_data() -> None:
    """A non-Markov distribution projects to matching pairwise marginals."""
    # Worlds of length 3 with long-range dependence: first == last.
    weighted = {
        ("a", "a", "a"): Fraction(1, 4),
        ("a", "b", "a"): Fraction(1, 4),
        ("b", "a", "b"): Fraction(1, 4),
        ("b", "b", "b"): Fraction(1, 4),
    }
    estimated = empirical_distribution(weighted)
    # Pairwise marginals at each boundary must match exactly...
    for i in (1, 2):
        for s in "ab":
            for t in "ab":
                want = sum(
                    w for world, w in weighted.items() if world[i - 1] == s and world[i] == t
                )
                got = sum(
                    estimated.prob_of(world) * 1
                    for world in (
                        ("a", "a", "a"), ("a", "a", "b"), ("a", "b", "a"), ("a", "b", "b"),
                        ("b", "a", "a"), ("b", "a", "b"), ("b", "b", "a"), ("b", "b", "b"),
                    )
                    if world[i - 1] == s and world[i] == t
                )
                assert got == want
    # ...but the long-range constraint is (necessarily) lost.
    assert estimated.prob_of(("a", "a", "b")) > 0


def test_estimate_from_samples_consistency() -> None:
    """MLE from many samples approaches the true transition rows."""
    rng = random.Random(7)
    truth = random_sequence("ab", 3, rng)
    samples = [truth.sample(rng) for _ in range(6000)]
    estimated = estimate_from_worlds(samples, symbols="ab", exact=False)
    for source in "ab":
        truth_row = dict(truth.successors(1, source))
        est_row = dict(estimated.successors(1, source))
        for target, prob in truth_row.items():
            assert abs(est_row.get(target, 0.0) - prob) < 0.06, (source, target)


def test_estimate_exact_fractions() -> None:
    worlds = [("a", "b"), ("a", "a"), ("b", "b"), ("a", "b")]
    estimated = estimate_from_worlds(worlds)
    assert estimated.initial_prob("a") == Fraction(3, 4)
    assert estimated.transition_prob(1, "a", "b") == Fraction(2, 3)


def test_smoothing_keeps_all_transitions_possible() -> None:
    worlds = [("a", "a")] * 5
    estimated = estimate_from_worlds(worlds, symbols="ab", smoothing=Fraction(1))
    assert estimated.transition_prob(1, "a", "b") > 0
    assert estimated.initial_prob("b") > 0


def test_validation() -> None:
    with pytest.raises(InvalidMarkovSequenceError):
        estimate_from_worlds([])
    with pytest.raises(InvalidMarkovSequenceError):
        estimate_from_worlds([("a",), ("a", "b")])
    with pytest.raises(InvalidMarkovSequenceError):
        estimate_from_worlds([("z",)], symbols="ab")
    with pytest.raises(InvalidMarkovSequenceError):
        empirical_distribution({})
    with pytest.raises(InvalidMarkovSequenceError):
        empirical_distribution({("a",): 0})


def test_roundtrip_sampling_estimation_querying() -> None:
    """samples → estimate → query: confidences near the truth."""
    from repro.transducers.library import collapse_transducer
    from repro.confidence.deterministic import confidence_deterministic

    rng = random.Random(10)
    truth = random_sequence("ab", 3, rng)
    samples = [truth.sample(rng) for _ in range(8000)]
    estimated = estimate_from_worlds(samples, symbols="ab", exact=False)
    query = collapse_transducer({"a": "X", "b": "Y"})
    for world, prob in truth.worlds():
        answer = query.transduce_deterministic(world)
        true_conf = confidence_deterministic(truth, query, answer)
        est_conf = confidence_deterministic(estimated, query, answer)
        assert abs(float(est_conf) - float(true_conf)) < 0.08
