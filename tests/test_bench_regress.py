"""The bench-regression gate: miniature scenarios through regress.py.

Two real scenarios run in-process at quick scale — the warm plan-cache
read (``runtime``) and the vectorized same-plan batch (``parallel``) —
and their fresh results are gated against themselves (quiet) and against
an injected 10x slowdown (gate fires). The pure pieces (``MetricSpec``,
``compare``) are covered directly.
"""

from __future__ import annotations

import copy
import dataclasses
import json

import pytest

from benchmarks.regress import SCENARIOS, Failure, MetricSpec, compare, main, run_gate
# `bench_result` is aliased so pytest's bench_* collection pattern
# does not pick the imported helper up as a test function.
from benchmarks.shape import RESULT_SCHEMA, write_result
from benchmarks.shape import bench_result as make_result


# ---------------------------------------------------------------------------
# MetricSpec / compare: the pure gate logic
# ---------------------------------------------------------------------------


def test_higher_metric_allows_tolerance_band() -> None:
    spec = MetricSpec("speedup", "higher", tolerance=4.0)
    assert spec.allowed(40.0, quick=False) == pytest.approx(10.0)
    assert spec.check(40.0, 11.0, quick=False) is None
    failure = spec.check(40.0, 9.0, quick=False)
    assert isinstance(failure, Failure)
    assert failure.side == "below"
    assert "speedup" in failure.describe()


def test_lower_metric_respects_absolute_floor() -> None:
    spec = MetricSpec("overhead", "lower", tolerance=4.0, floor=0.02)
    # tiny baseline: the floor dominates, 1% is still fine
    assert spec.check(0.0005, 0.01, quick=False) is None
    # but 3% is above the floor no matter the baseline
    failure = spec.check(0.0005, 0.03, quick=False)
    assert failure is not None and failure.side == "above"


def test_quick_tolerance_loosens_the_bound() -> None:
    spec = MetricSpec("speedup", "higher", tolerance=4.0, quick_tolerance=8.0)
    assert spec.allowed(40.0, quick=False) == pytest.approx(10.0)
    assert spec.allowed(40.0, quick=True) == pytest.approx(5.0)


def test_compare_skips_metrics_missing_on_either_side() -> None:
    specs = (
        MetricSpec("present", "higher", 2.0),
        MetricSpec("only_in_baseline", "higher", 2.0),
        MetricSpec("only_in_fresh", "higher", 2.0),
    )
    baseline = make_result("x", {}, {"present": 10.0, "only_in_baseline": 5.0})
    fresh = make_result("x", {}, {"present": 9.0, "only_in_fresh": 5.0})
    assert compare(baseline, fresh, specs) == []


# ---------------------------------------------------------------------------
# Miniature scenario 1: warm plan-cache read
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def runtime_fresh() -> dict:
    return SCENARIOS["runtime"].quick_run()


def test_runtime_quick_scenario_is_quiet_on_baseline(runtime_fresh) -> None:
    scenario = SCENARIOS["runtime"]
    assert runtime_fresh["schema"] == RESULT_SCHEMA
    assert runtime_fresh["metrics"]["warm_speedup"] > 1.0
    # gated against itself, the fresh run must never fire
    assert compare(runtime_fresh, runtime_fresh, scenario.specs, quick=True) == []


def test_runtime_gate_fires_on_injected_10x_slowdown(runtime_fresh) -> None:
    scenario = SCENARIOS["runtime"]
    slowed = copy.deepcopy(runtime_fresh)
    for name in ("warm_speedup", "append_speedup"):
        slowed["metrics"][name] /= 10.0
    failures = compare(runtime_fresh, slowed, scenario.specs, quick=True)
    assert {failure.metric for failure in failures} == {
        "warm_speedup",
        "append_speedup",
    }
    assert all(failure.side == "below" for failure in failures)


# ---------------------------------------------------------------------------
# Miniature scenario 2: vectorized batch
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def parallel_fresh() -> dict:
    return SCENARIOS["parallel"].quick_run()


def test_parallel_quick_scenario_is_quiet_on_baseline(parallel_fresh) -> None:
    scenario = SCENARIOS["parallel"]
    assert parallel_fresh["metrics"]["vectorized_speedup"] > 1.0
    assert compare(parallel_fresh, parallel_fresh, scenario.specs, quick=True) == []


def test_parallel_gate_fires_on_injected_10x_slowdown(parallel_fresh) -> None:
    scenario = SCENARIOS["parallel"]
    slowed = copy.deepcopy(parallel_fresh)
    slowed["metrics"]["vectorized_speedup"] /= 10.0
    failures = compare(parallel_fresh, slowed, scenario.specs, quick=True)
    assert [failure.metric for failure in failures] == ["vectorized_speedup"]


# ---------------------------------------------------------------------------
# The harness itself: run_gate and the CLI entry
# ---------------------------------------------------------------------------


def test_run_gate_against_fresh_baselines(tmp_path, runtime_fresh, parallel_fresh, capsys) -> None:
    """End-to-end through run_gate: baselines written from the very runs
    being gated, so both scenarios must pass."""
    write_result(runtime_fresh, tmp_path / "BENCH_runtime.json")
    write_result(parallel_fresh, tmp_path / "BENCH_parallel.json")
    records, ok = run_gate(["parallel", "runtime"], tmp_path, quick=True)
    out = capsys.readouterr().out
    assert ok
    assert [record["status"] for record in records] == ["ok", "ok"]
    assert "[runtime] ok" in out and "[parallel] ok" in out


@pytest.fixture
def pinned_runtime_scenario(runtime_fresh, monkeypatch):
    """Make run_gate's re-measurement deterministic: it returns the very
    result the fixture measured. Without this, a machine-load swing
    larger than 10x/quick_tolerance between the fixture run and the
    gate's re-run can silently absorb the injected regression."""
    monkeypatch.setitem(
        SCENARIOS,
        "runtime",
        dataclasses.replace(
            SCENARIOS["runtime"], quick_run=lambda: copy.deepcopy(runtime_fresh)
        ),
    )


def test_run_gate_detects_committed_regression(
    tmp_path, runtime_fresh, pinned_runtime_scenario, capsys
) -> None:
    """A baseline 10x faster than reality == a 10x regression: fires."""
    inflated = copy.deepcopy(runtime_fresh)
    for name in ("warm_speedup", "append_speedup"):
        inflated["metrics"][name] *= 10.0
    write_result(inflated, tmp_path / "BENCH_runtime.json")
    records, ok = run_gate(["runtime"], tmp_path, quick=True)
    assert not ok
    assert records[0]["status"] == "FAIL"
    assert "REGRESSION" in capsys.readouterr().out


def test_run_gate_skips_missing_baseline(tmp_path, capsys) -> None:
    records, ok = run_gate(["runtime"], tmp_path / "empty", quick=True)
    assert ok  # a missing baseline is a skip, not a failure
    assert records == [
        {"kind": "skip", "scenario": "runtime", "reason": "no baseline"}
    ]


def test_main_writes_ndjson_report_and_exits_nonzero_on_fail(
    tmp_path, runtime_fresh, pinned_runtime_scenario, capsys
) -> None:
    inflated = copy.deepcopy(runtime_fresh)
    inflated["metrics"]["warm_speedup"] *= 10.0
    write_result(inflated, tmp_path / "BENCH_runtime.json")
    report_path = tmp_path / "report.ndjson"
    code = main(
        [
            "--quick",
            "--only", "runtime",
            "--json", str(report_path),
            "--baseline-dir", str(tmp_path),
        ]
    )
    assert code == 1
    records = [json.loads(line) for line in report_path.read_text().splitlines()]
    assert records[0]["scenario"] == "runtime"
    assert records[0]["status"] == "FAIL"
    assert records[0]["failures"]


def test_main_rejects_unknown_scenario(capsys) -> None:
    with pytest.raises(SystemExit):
        main(["--only", "nope"])
    assert "unknown scenario" in capsys.readouterr().err
