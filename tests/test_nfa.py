"""NFA semantics: runs, acceptance, structure operations."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidAutomatonError
from repro.automata.nfa import NFA

from tests.conftest import make_random_nfa


@pytest.fixture
def ends_with_b() -> NFA:
    """Classic NFA for Sigma* b over {a, b} (nondeterministic)."""
    return NFA(
        "ab",
        {0, 1},
        0,
        {1},
        {(0, "a"): {0}, (0, "b"): {0, 1}},
    )


def test_accepts_basic(ends_with_b: NFA) -> None:
    assert ends_with_b.accepts("b")
    assert ends_with_b.accepts("aab")
    assert not ends_with_b.accepts("a")
    assert not ends_with_b.accepts("")


def test_empty_string_acceptance_depends_on_initial() -> None:
    nfa = NFA("a", {0}, 0, {0}, {(0, "a"): {0}})
    assert nfa.accepts("")
    nfa2 = NFA("a", {0, 1}, 0, {1}, {(0, "a"): {1}})
    assert not nfa2.accepts("")


def test_runs_enumerates_all_complete_runs(ends_with_b: NFA) -> None:
    runs = set(ends_with_b.runs("bb"))
    # Position 1 can go to 0 or 1; from 1 there is no move, so runs through
    # state 1 at position 1 die. Complete runs: (0,0) and (0,1).
    assert runs == {(0, 0), (0, 1)}


def test_accepting_runs(ends_with_b: NFA) -> None:
    assert set(ends_with_b.accepting_runs("bb")) == {(0, 1)}
    assert set(ends_with_b.accepting_runs("a")) == set()


def test_runs_on_empty_string(ends_with_b: NFA) -> None:
    assert list(ends_with_b.runs("")) == [()]
    assert list(ends_with_b.accepting_runs("")) == []


def test_step_and_successors(ends_with_b: NFA) -> None:
    assert ends_with_b.successors(0, "b") == frozenset({0, 1})
    assert ends_with_b.successors(1, "a") == frozenset()
    assert ends_with_b.step({0, 1}, "b") == frozenset({0, 1})


def test_num_transitions(ends_with_b: NFA) -> None:
    assert ends_with_b.num_transitions == 3


def test_is_deterministic(ends_with_b: NFA) -> None:
    assert not ends_with_b.is_deterministic()
    total = NFA("a", {0}, 0, {0}, {(0, "a"): {0}})
    assert total.is_deterministic()


def test_reachable_and_trim() -> None:
    nfa = NFA(
        "a",
        {0, 1, 2},
        0,
        {1, 2},
        {(0, "a"): {1}, (2, "a"): {2}},
    )
    assert nfa.reachable_states() == frozenset({0, 1})
    trimmed = nfa.trim()
    assert trimmed.states == frozenset({0, 1})
    assert trimmed.accepting == frozenset({1})
    for string in ("", "a", "aa"):
        assert trimmed.accepts(string) == nfa.accepts(string)


def test_renamed_preserves_language(rng: random.Random) -> None:
    nfa = make_random_nfa("ab", 4, rng)
    renamed = nfa.renamed("z")
    assert all(isinstance(s, str) and s.startswith("z") for s in renamed.states)
    for length in range(4):
        for string in itertools.product("ab", repeat=length):
            assert nfa.accepts(string) == renamed.accepts(string)


def test_is_empty() -> None:
    nonempty = NFA("a", {0, 1}, 0, {1}, {(0, "a"): {1}})
    assert not nonempty.is_empty()
    empty = NFA("a", {0, 1}, 0, {1}, {})
    assert empty.is_empty()
    eps_only = NFA("a", {0}, 0, {0}, {})
    assert not eps_only.is_empty()


def test_from_transitions() -> None:
    nfa = NFA.from_transitions("ab", "s", {"t"}, [("s", "a", "t"), ("t", "b", "t")])
    assert nfa.accepts("a")
    assert nfa.accepts("abb")
    assert not nfa.accepts("b")


def test_validation_errors() -> None:
    with pytest.raises(InvalidAutomatonError):
        NFA("a", {0}, 1, {0}, {})  # initial not a state
    with pytest.raises(InvalidAutomatonError):
        NFA("a", {0}, 0, {1}, {})  # accepting not a state
    with pytest.raises(InvalidAutomatonError):
        NFA("a", {0}, 0, {0}, {(0, "b"): {0}})  # symbol not in alphabet
    with pytest.raises(InvalidAutomatonError):
        NFA("a", {0}, 0, {0}, {(0, "a"): {5}})  # target not a state


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), data=st.data())
def test_accepts_agrees_with_accepting_runs(seed: int, data) -> None:
    rng = random.Random(seed)
    nfa = make_random_nfa("ab", 3, rng)
    string = data.draw(st.text(alphabet="ab", max_size=5))
    has_run = any(True for _ in nfa.accepting_runs(string))
    assert nfa.accepts(string) == has_run
