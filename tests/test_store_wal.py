"""The write-ahead log: framing, damage classification, rotation, LSNs.

The torn-vs-corrupt distinction is the heart of the durability story:
a crash can only shear the *final* record (truncate and continue), while
any other byte damage means something else wrote to the log and recovery
must refuse rather than silently resurrect a wrong prefix.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.errors import ReproError
from repro.store.wal import (
    WriteAheadLog,
    encode_record,
    frame_record,
    scan_log,
    scan_segment,
    segment_paths,
)


def log_dir(tmp_path):
    return tmp_path / "wal"


def test_frame_is_length_prefixed_and_checksummed() -> None:
    payload = b'{"lsn":1,"type":"x","data":{}}'
    line = frame_record(payload)
    assert line.endswith(payload + b"\n")
    assert int(line[0:8], 16) == len(payload)
    assert int(line[8:16], 16) == zlib.crc32(payload)
    assert line[16:17] == b" "


def test_encode_record_is_deterministic_compact_json() -> None:
    line = encode_record(7, "append", {"b": 1, "a": 2})
    payload = line[17:-1]
    assert payload == b'{"data":{"a":2,"b":1},"lsn":7,"type":"append"}'
    assert json.loads(payload)["lsn"] == 7


def test_append_scan_round_trip(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    assert wal.append("stream_created", {"name": "s"}) == 1
    assert wal.append("append", {"stream": "s"}) == 2
    wal.close()
    scan = scan_log(log_dir(tmp_path))
    assert [record["lsn"] for record in scan.records] == [1, 2]
    assert [record["type"] for record in scan.records] == [
        "stream_created",
        "append",
    ]
    assert scan.torn_bytes == 0 and not scan.truncated


def test_reopen_resumes_at_next_lsn(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    for _ in range(3):
        wal.append("append", {})
    wal.close()
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    assert wal.last_lsn == 3
    assert wal.append("append", {}) == 4
    wal.close()


def test_rotation_by_record_count(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False, segment_records=2)
    for _ in range(5):
        wal.append("append", {})
    wal.close()
    paths = segment_paths(log_dir(tmp_path))
    assert [path.name for path in paths] == [
        "0000000000000001.seg",
        "0000000000000003.seg",
        "0000000000000005.seg",
    ]
    scan = scan_log(log_dir(tmp_path))
    assert [record["lsn"] for record in scan.records] == [1, 2, 3, 4, 5]


def test_rotation_by_byte_budget(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False, segment_bytes=64)
    for _ in range(4):
        wal.append("append", {"padding": "x" * 40})
    wal.close()
    # every record overflows the 64-byte budget: four sealed segments
    # plus the fresh (empty) live one
    assert len(segment_paths(log_dir(tmp_path))) == 5
    assert scan_log(log_dir(tmp_path)).last_lsn == 4


def test_torn_tail_is_skipped_and_repaired(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    wal.append("append", {"step": 1})
    wal.append("append", {"step": 2})
    wal.close()
    path = segment_paths(log_dir(tmp_path))[0]
    whole = path.read_bytes()
    torn = whole + encode_record(3, "append", {"step": 3})[:-9]
    path.write_bytes(torn)

    scan = scan_log(log_dir(tmp_path), repair=False)
    assert [record["lsn"] for record in scan.records] == [1, 2]
    assert scan.torn_bytes > 0 and not scan.truncated
    assert path.read_bytes() == torn  # read-only scan leaves the tail

    scan = scan_log(log_dir(tmp_path), repair=True)
    assert scan.truncated
    assert path.read_bytes() == whole  # tail physically gone
    assert scan_log(log_dir(tmp_path)).torn_bytes == 0


def test_tail_shorter_than_header_is_torn(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    wal.append("append", {})
    wal.close()
    path = segment_paths(log_dir(tmp_path))[0]
    path.write_bytes(path.read_bytes() + b"00000")
    scan = scan_log(log_dir(tmp_path), repair=True)
    assert scan.last_lsn == 1 and scan.truncated


def test_append_continues_after_repair(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    wal.append("append", {"step": 1})
    wal.close()
    path = segment_paths(log_dir(tmp_path))[0]
    path.write_bytes(path.read_bytes() + b"deadbeef")
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)  # repairs on open
    assert wal.append("append", {"step": 2}) == 2
    wal.close()
    assert [r["lsn"] for r in scan_log(log_dir(tmp_path)).records] == [1, 2]


def test_checksum_mismatch_in_complete_record_is_corruption(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    wal.append("append", {"step": 1})
    wal.close()
    path = segment_paths(log_dir(tmp_path))[0]
    data = bytearray(path.read_bytes())
    data[-5] ^= 0xFF  # flip one payload byte, frame stays complete
    path.write_bytes(bytes(data))
    with pytest.raises(ReproError, match="checksum mismatch"):
        scan_log(log_dir(tmp_path))


def test_bad_header_is_corruption(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    wal.append("append", {})
    wal.close()
    path = segment_paths(log_dir(tmp_path))[0]
    data = bytearray(path.read_bytes())
    data[0] = ord("z")  # not hex
    path.write_bytes(bytes(data))
    with pytest.raises(ReproError, match="bad frame header"):
        scan_log(log_dir(tmp_path))


def test_invalid_json_payload_is_corruption(tmp_path) -> None:
    path = log_dir(tmp_path)
    path.mkdir(parents=True)
    (path / "0000000000000001.seg").write_bytes(frame_record(b"not json"))
    with pytest.raises(ReproError, match="invalid JSON payload"):
        scan_log(path)


def test_malformed_record_object_is_corruption(tmp_path) -> None:
    path = log_dir(tmp_path)
    path.mkdir(parents=True)
    payload = json.dumps({"lsn": "one", "type": "append"}).encode()
    (path / "0000000000000001.seg").write_bytes(frame_record(payload))
    with pytest.raises(ReproError, match="malformed record object"):
        scan_log(path)


def test_torn_bytes_in_sealed_segment_is_corruption(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False, segment_records=1)
    wal.append("append", {"step": 1})  # rotates: segment 1 is sealed
    wal.append("append", {"step": 2})
    wal.close()
    first = segment_paths(log_dir(tmp_path))[0]
    first.write_bytes(first.read_bytes() + b"torn")
    with pytest.raises(ReproError, match="sealed"):
        scan_log(log_dir(tmp_path), repair=True)
    # a direct final-segment scan of the same bytes would have been fine
    assert scan_segment(first, final=True)[1].torn_bytes == 4


def test_lsn_gap_is_corruption(tmp_path) -> None:
    path = log_dir(tmp_path)
    path.mkdir(parents=True)
    (path / "0000000000000001.seg").write_bytes(
        encode_record(1, "append", {}) + encode_record(3, "append", {})
    )
    with pytest.raises(ReproError, match="breaks sequence"):
        scan_log(path)


def test_delete_segments_before_spares_live_segment(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False, segment_records=2)
    for _ in range(6):
        wal.append("append", {})
    live = wal.current_path
    assert wal.delete_segments_before(live) == 3
    assert segment_paths(log_dir(tmp_path)) == [live]
    wal.close()


def test_fresh_segment_filename_carries_next_lsn(tmp_path) -> None:
    """Post-compaction, the empty live segment's *name* is the LSN
    authority — reopening must not restart the counter at 1."""
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    for _ in range(4):
        wal.append("append", {})
    fresh = wal.rotate()
    wal.delete_segments_before(fresh)
    wal.close()
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    assert wal.append("append", {}) == 5
    wal.close()


def test_append_after_close_raises(tmp_path) -> None:
    wal = WriteAheadLog(log_dir(tmp_path), fsync=False)
    wal.close()
    with pytest.raises(ReproError, match="closed"):
        wal.append("append", {})
