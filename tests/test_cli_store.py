"""The ``repro store`` CLI: inspect, compact, recover — and serve flags.

Each test builds a small durable store in ``tmp_path`` through the
public ``Store``/``MarkovStreamDatabase`` API, then drives the CLI via
``main(argv)`` and asserts on the printed report.
"""

from __future__ import annotations

import pytest

from repro.automata.regex import regex_to_dfa
from repro.cli import main
from repro.lahar.database import MarkovStreamDatabase
from repro.store import Store
from repro.store.wal import segment_paths
from repro.transducers.library import accept_filter

from tests.conftest import make_fraction_sequence, make_fraction_timestep

ALPHABET = "ab"


@pytest.fixture
def data_dir(tmp_path, rng):
    data_dir = tmp_path / "data"
    store = Store(data_dir, fsync=False)
    database = MarkovStreamDatabase(store=store)
    database.register_stream("door", make_fraction_sequence(ALPHABET, 2, rng))
    database.register_query(
        "saw-ab", accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", ALPHABET))
    )
    for _ in range(4):
        database.append("door", make_fraction_timestep(ALPHABET, rng))
    store.close()
    return data_dir


def test_store_inspect(data_dir, capsys) -> None:
    assert main(["store", "inspect", str(data_dir)]) == 0
    out = capsys.readouterr().out
    assert f"store: {data_dir}" in out
    assert "last LSN 6" in out
    assert "snapshot LSN 0 (6 record(s) to replay), 0 snapshot(s)" in out
    assert "6 record(s)" in out
    assert "LSN 1..6" in out
    assert "append: 4" in out
    assert "stream_created: 1" in out
    assert "query_registered: 1" in out
    assert "torn tail" not in out


def test_store_inspect_reports_torn_tail(data_dir, capsys) -> None:
    segment = segment_paths(data_dir / "wal")[0]
    segment.write_bytes(segment.read_bytes()[:-3])
    assert main(["store", "inspect", str(data_dir)]) == 0
    out = capsys.readouterr().out
    assert "last LSN 5" in out
    assert "torn tail" in out
    assert "recovery will truncate and continue" in out


def test_store_recover(data_dir, capsys) -> None:
    assert main(["store", "recover", str(data_dir)]) == 0
    out = capsys.readouterr().out
    assert "1 stream(s), 1 named query(ies), 0 standing" in out
    assert "LSN 6 (snapshot at 0, 6 record(s) replayed, 0 torn bytes" in out
    assert "stream door: length 6" in out
    assert "verify" not in out


def test_store_recover_verify_both_referees(data_dir, capsys) -> None:
    assert main(["store", "recover", str(data_dir), "--verify"]) == 0
    out = capsys.readouterr().out
    assert "verify:    OK — DP + replay referee(s) agree bit-for-bit" in out


def test_store_compact_then_verify(data_dir, capsys) -> None:
    assert main(["store", "compact", str(data_dir), "--no-fsync"]) == 0
    out = capsys.readouterr().out
    assert f"compacted {data_dir}: snapshot at LSN 6" in out

    assert main(["store", "inspect", str(data_dir)]) == 0
    out = capsys.readouterr().out
    assert "last LSN 6" in out
    assert "snapshot LSN 6 (0 record(s) to replay), 1 snapshot(s)" in out

    # the compacted store passes verification with the DP referee only
    assert main(["store", "recover", str(data_dir), "--verify"]) == 0
    out = capsys.readouterr().out
    assert "0 record(s) replayed" in out
    assert "verify:    OK — DP (log compacted) referee(s)" in out


def test_store_recover_verify_fails_on_tampered_snapshot(
    data_dir, capsys
) -> None:
    import json
    from fractions import Fraction

    # give the DP referee something to check: a standing query, journaled
    # the way the server journals it
    store = Store(data_dir, fsync=False)
    store.log_standing_registered(
        "watch",
        "door",
        "answer",
        "saw-ab",
        accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", ALPHABET)),
        (),
        Fraction(1, 2),
        Fraction(1, 4),
    )
    store.close()
    assert main(["store", "compact", str(data_dir), "--no-fsync"]) == 0
    capsys.readouterr()
    snap = next((data_dir / "snapshots").glob("*.snap"))
    document = json.loads(snap.read_text())
    assert document["evaluators"], "the standing query should attach an evaluator"
    document["evaluators"][0]["frontier"][0][1] = "1/999"
    snap.write_text(json.dumps(document, separators=(",", ":"), sort_keys=True))

    assert main(["store", "recover", str(data_dir), "--verify"]) == 1
    captured = capsys.readouterr()
    assert "verify:    FAILED" in captured.err


def test_store_requires_subcommand(capsys) -> None:
    with pytest.raises(SystemExit):
        main(["store"])
    assert "store_command" in capsys.readouterr().err


def test_serve_parser_accepts_durability_flags(tmp_path) -> None:
    from repro.cli import build_parser

    args = build_parser().parse_args(
        [
            "serve",
            "--socket", str(tmp_path / "s.sock"),
            "--data-dir", str(tmp_path / "data"),
            "--no-fsync",
            "--compact-every", "512",
        ]
    )
    assert args.data_dir == str(tmp_path / "data")
    assert args.no_fsync is True
    assert args.compact_every == 512


def test_serve_parser_defaults_to_ephemeral(tmp_path) -> None:
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--socket", str(tmp_path / "s.sock")])
    assert args.data_dir is None
    assert args.no_fsync is False
