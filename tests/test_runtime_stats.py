"""Direct tests for the runtime's execution counters (repro.runtime.stats)."""

from __future__ import annotations

import pytest

from repro.runtime.stats import PlanStats, PoolStats, instrument


# ---------------------------------------------------------------------------
# PlanStats
# ---------------------------------------------------------------------------


def test_plan_stats_defaults_are_zero() -> None:
    stats = PlanStats()
    assert stats.as_dict() == {
        "evaluations": 0,
        "answers": 0,
        "seconds": 0.0,
        "dp_cells": 0,
        "appends": 0,
    }


def test_plan_stats_record_run_accumulates() -> None:
    stats = PlanStats()
    stats.record_run(0.5, 3)
    stats.record_run(0.25, 0)
    assert stats.evaluations == 2
    assert stats.answers == 3
    assert stats.seconds == pytest.approx(0.75)


def test_plan_stats_record_append_accumulates_cells() -> None:
    stats = PlanStats()
    stats.record_append(10)
    stats.record_append(7)
    assert stats.appends == 2
    assert stats.dp_cells == 17


# ---------------------------------------------------------------------------
# PoolStats
# ---------------------------------------------------------------------------


def test_pool_stats_record_chunk_feeds_serial_estimate() -> None:
    stats = PoolStats()
    stats.record_chunk(0.2, 5)
    stats.record_chunk(0.3, 7)
    assert stats.chunk_seconds == [0.2, 0.3]
    assert stats.serial_estimate_seconds == pytest.approx(0.5)
    assert stats.streams == 12
    assert stats.as_dict()["chunks"] == 2


def test_pool_stats_speedup_estimate_needs_both_sides() -> None:
    stats = PoolStats()
    assert stats.speedup_estimate() is None  # no data at all
    stats.record_batch(0.1)
    assert stats.speedup_estimate() is None  # wall time but no chunk time
    stats.record_chunk(0.4, 1)
    assert stats.speedup_estimate() == pytest.approx(4.0)
    assert stats.as_dict()["speedup_estimate"] == pytest.approx(4.0)


def test_pool_stats_record_batch() -> None:
    stats = PoolStats()
    stats.record_batch(1.0)
    stats.record_batch(0.5)
    assert stats.batches == 2
    assert stats.wall_seconds == pytest.approx(1.5)


def test_pool_stats_as_dict_lists_every_counter() -> None:
    stats = PoolStats()
    expected = {
        "batches", "tasks", "completed", "streams", "retries", "timeouts",
        "broken_pools", "worker_errors", "serial_fallbacks", "serial_batches",
        "vectorized_batches", "chunks", "wall_seconds",
        "serial_estimate_seconds", "speedup_estimate",
    }
    assert set(stats.as_dict()) == expected


# ---------------------------------------------------------------------------
# instrument()
# ---------------------------------------------------------------------------


def test_instrument_records_on_exhaustion() -> None:
    stats = PlanStats()
    items = list(instrument(iter([1, 2, 3]), stats))
    assert items == [1, 2, 3]
    assert stats.evaluations == 1
    assert stats.answers == 3
    assert stats.seconds >= 0.0


def test_instrument_records_on_early_close() -> None:
    stats = PlanStats()
    wrapped = instrument(iter(range(100)), stats)
    for item in wrapped:
        if item == 4:
            break
    wrapped.close()
    assert stats.evaluations == 1
    assert stats.answers == 5  # consumed 0..4 before the break


def test_instrument_excludes_consumer_time() -> None:
    """Only time inside next() is charged, so a slow consumer of a fast
    iterator must leave the recorded seconds tiny."""
    import time

    stats = PlanStats()
    for _item in instrument(iter(range(3)), stats):
        time.sleep(0.02)
    assert stats.seconds < 0.02


def test_instrument_records_even_when_consumer_raises() -> None:
    stats = PlanStats()
    wrapped = instrument(iter([1, 2, 3]), stats)
    with pytest.raises(RuntimeError):
        for item in wrapped:
            if item == 2:
                raise RuntimeError("consumer blew up")
    wrapped.close()
    assert stats.evaluations == 1
    assert stats.answers == 2
