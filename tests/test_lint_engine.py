"""Engine-level analyzer tests: pragmas, reporters, path scoping, and
the self-check that the tree itself lints clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    lint_paths,
    lint_source,
    parse_pragmas,
    render_json,
    render_pretty,
    rule_ids,
)
from repro.analysis.rules.base import package_relative

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC = Path(__file__).parent.parent / "src"


def fixture(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


# ---------------------------------------------------------------- self-check


def test_repro_lint_src_is_clean():
    """The acceptance invariant: `repro lint src/` exits 0 at head."""
    report = lint_paths([SRC])
    assert report.clean, "\n" + "\n".join(f.render() for f in report.violations)
    assert report.files > 100  # the whole package was actually walked


def test_cli_lint_subcommand_clean_and_json():
    from repro.cli import main

    assert main(["lint", str(SRC)]) == 0
    assert main(["lint", str(SRC), "--format", "json"]) == 0


def test_ci_smoke_fixture_fails_the_gate():
    """The deliberately-broken fixture must make `repro lint` exit 1.

    The reverse RX05 pass is off here (as in the CI step): a fixture
    directory emits no telemetry, so the reverse pass would drown the
    seeded RX03 signal in documented-but-unused noise.
    """
    from repro.cli import main

    report = lint_paths([FIXTURES / "ci_smoke"], reverse_telemetry=False)
    assert not report.clean
    assert {f.rule for f in report.violations} == {"RX03"}
    assert main(["lint", str(FIXTURES / "ci_smoke"), "--no-reverse-telemetry"]) == 1


# ---------------------------------------------------------------- pragmas


def test_trailing_pragma_suppresses_own_line():
    report = lint_source(
        "SCALE = 0.5  # repro: allow[RX01] reviewed\n",
        virtual_path="repro/core/mod.py",
    )
    assert report.clean
    assert report.suppressed == 1


def test_standalone_pragma_suppresses_next_code_line():
    source = "# repro: allow[RX01] reviewed\nSCALE = 0.5\n"
    report = lint_source(source, virtual_path="repro/core/mod.py")
    assert report.clean


def test_pragma_does_not_leak_to_other_lines():
    source = "SCALE = 0.5  # repro: allow[RX01] reviewed\nOTHER = 0.25\n"
    report = lint_source(source, virtual_path="repro/core/mod.py")
    assert [f.line for f in report.violations] == [2]


def test_pragma_only_covers_named_rules():
    source = "SCALE = 0.5  # repro: allow[RX03] wrong rule for this line\n"
    report = lint_source(source, virtual_path="repro/core/mod.py")
    assert [f.rule for f in report.violations] == ["RX01"]


def test_missing_reason_is_a_violation_and_does_not_suppress():
    source = "SCALE = 0.5  # repro: allow[RX01]\n"
    report = lint_source(source, virtual_path="repro/core/mod.py")
    rules = sorted(f.rule for f in report.violations)
    assert rules == ["RX00", "RX01"]


def test_unknown_rule_is_a_violation_and_does_not_suppress():
    source = "SCALE = 0.5  # repro: allow[RX99] no such rule\n"
    report = lint_source(source, virtual_path="repro/core/mod.py")
    rules = sorted(f.rule for f in report.violations)
    assert rules == ["RX00", "RX01"]
    assert any("unknown rule RX99" in f.message for f in report.violations)


def test_malformed_pragma_syntax_is_a_violation():
    source = "SCALE = 0.5  # repro: allow no brackets\n"
    report = lint_source(source, virtual_path="repro/core/mod.py")
    assert "RX00" in {f.rule for f in report.violations}


def test_multi_rule_pragma():
    pragmas, findings = parse_pragmas(
        "X = 1  # repro: allow[RX01,RX03] spans two rules\n",
        "mod.py",
        rule_ids(),
    )
    assert not findings
    assert pragmas[0].rules == ("RX01", "RX03")
    assert pragmas[0].reason == "spans two rules"


def test_pragma_fixture_end_to_end():
    report = lint_source(
        fixture("pragmas.py"), virtual_path="repro/core/pragmas.py"
    )
    by_rule: dict[str, list[int]] = {}
    for f in report.violations:
        by_rule.setdefault(f.rule, []).append(f.line)
    # Three malformed pragmas -> three RX00s; their three float literals
    # stay flagged; the three validly-suppressed lines are quiet.
    assert len(by_rule["RX00"]) == 3
    assert len(by_rule["RX01"]) == 3
    assert report.suppressed == 3


# ---------------------------------------------------------------- reporters


def test_json_reporter_schema():
    report = lint_source(
        "SCALE = 0.5\n", virtual_path="repro/core/mod.py"
    )
    payload = json.loads(render_json(report))
    assert payload["schema"] == "repro-lint/1"
    assert payload["clean"] is False
    assert payload["files"] == 1
    assert payload["counts"] == {"RX01": 1}
    (violation,) = payload["violations"]
    assert set(violation) == {"rule", "path", "line", "col", "message"}
    assert violation["rule"] == "RX01"
    assert violation["line"] == 1


def test_json_reporter_clean_shape():
    report = lint_source("X = 1\n", virtual_path="repro/core/mod.py")
    payload = json.loads(render_json(report))
    assert payload["clean"] is True
    assert payload["violations"] == []
    assert payload["counts"] == {}


def test_pretty_reporter_lists_and_summarizes():
    report = lint_source("SCALE = 0.5\n", virtual_path="repro/core/mod.py")
    text = render_pretty(report)
    assert "repro/core/mod.py:1:" in text
    assert "RX01" in text
    assert "1 violation(s)" in text
    clean = lint_source("X = 1\n", virtual_path="repro/core/mod.py")
    assert "clean" in render_pretty(clean)


# ---------------------------------------------------------------- engine


def test_package_relative_paths():
    assert package_relative("src/repro/confidence/dense.py") == "confidence/dense.py"
    assert package_relative("/abs/src/repro/core/engine.py") == "core/engine.py"
    assert package_relative("elsewhere/script.py") == "elsewhere/script.py"


def test_scoping_out_of_zone_is_quiet():
    # The same float literal is fine outside the exact zone.
    report = lint_source("SCALE = 0.5\n", virtual_path="repro/approx/fpras.py")
    assert report.clean


def test_syntax_error_is_reported_not_raised():
    report = lint_source("def broken(:\n", virtual_path="repro/core/mod.py")
    assert [f.rule for f in report.violations] == ["RX00"]
    assert "does not parse" in report.violations[0].message


def test_rule_selection_restricts_the_run():
    source = "import random\nSCALE = 0.5\nR = random.Random()\n"
    report = lint_source(
        source, virtual_path="repro/core/mod.py", rules={"RX03"}
    )
    assert {f.rule for f in report.violations} == {"RX03"}


def test_missing_input_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths([FIXTURES / "does_not_exist.py"])
