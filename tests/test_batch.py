"""Trie-shared batch confidence vs the per-answer DP."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidTransducerError
from repro.markov.builders import uniform_iid
from repro.automata.nfa import NFA
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.transducers.library import collapse_transducer
from repro.transducers.transducer import Transducer
from repro.confidence.batch import confidence_deterministic_batch
from repro.confidence.brute_force import brute_force_answers
from repro.confidence.deterministic import confidence_deterministic

from tests.conftest import make_random_deterministic_transducer, make_sequence


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_batch_matches_per_answer_dp(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    transducer = make_random_deterministic_transducer("ab", 3, rng)
    answers = list(brute_force_answers(sequence, transducer))
    probes = answers + [("no", "such", "answer")]
    batch = confidence_deterministic_batch(sequence, transducer, probes)
    assert set(batch) == set(probes)
    for output in probes:
        single = confidence_deterministic(sequence, transducer, output)
        assert math.isclose(batch[output], single, abs_tol=1e-12), output


def test_batch_on_running_example() -> None:
    mu = hospital_sequence()
    query = room_change_transducer()
    batch = confidence_deterministic_batch(
        mu, query, [("1", "2"), ("2", "1", "λ"), (), ("9",)]
    )
    assert batch[("1", "2")] == Fraction("0.4038")
    assert batch[("9",)] == 0
    assert batch[()] > 0


def test_batch_shares_prefixes() -> None:
    """All answers of a collapse query at once: total mass is exact 1."""
    sequence = uniform_iid("ab", 8, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    answers = list(brute_force_answers(sequence, transducer))
    assert len(answers) == 256
    batch = confidence_deterministic_batch(sequence, transducer, answers)
    assert sum(batch.values()) == 1


def test_batch_empty_request() -> None:
    sequence = uniform_iid("ab", 3)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    assert confidence_deterministic_batch(sequence, transducer, []) == {}


def test_batch_duplicate_outputs() -> None:
    sequence = uniform_iid("ab", 2, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    batch = confidence_deterministic_batch(
        sequence, transducer, [("X", "X"), ("X", "X")]
    )
    assert batch[("X", "X")] == Fraction(1, 4)


def test_batch_rejects_nondeterministic() -> None:
    nondeterministic = Transducer(
        NFA("a", {0, 1}, 0, {0, 1}, {(0, "a"): {0, 1}}), {}
    )
    with pytest.raises(InvalidTransducerError):
        confidence_deterministic_batch(uniform_iid("a", 2), nondeterministic, [()])
