"""Direct tests for the graphviz renderings (repro.viz.dot)."""

from __future__ import annotations

from repro.automata.nfa import NFA
from repro.automata.regex import regex_to_dfa
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.markov.sequence import MarkovSequence
from repro.transducers.transducer import Transducer
from repro.viz.dot import _quote, automaton_to_dot, sequence_to_dot, transducer_to_dot


def test_quote_escapes_embedded_quotes() -> None:
    assert _quote("plain") == '"plain"'
    assert _quote('say "hi"') == '"say \\"hi\\""'


# ---------------------------------------------------------------------------
# sequence_to_dot
# ---------------------------------------------------------------------------


def test_sequence_dot_draws_reachable_nodes_only() -> None:
    # b is unreachable at position 1 (zero initial mass) and, since only
    # a->a has mass, at every later position too.
    sequence = MarkovSequence(
        ("a", "b"),
        {"a": 1.0, "b": 0.0},
        [{"a": {"a": 1.0}, "b": {"b": 1.0}}],
    )
    dot = sequence_to_dot(sequence)
    assert dot.startswith("digraph markov_sequence {")
    assert dot.rstrip().endswith("}")
    assert '"a@1"' in dot and '"a@2"' in dot
    assert "b@" not in dot


def test_sequence_dot_labels_probabilities() -> None:
    dot = sequence_to_dot(hospital_sequence(exact=False))
    assert "rankdir=LR" in dot
    assert 'start -> "r1a@1"' in dot
    # Figure 1's initial split is 0.7 / 0.3
    assert '[label="0.7"]' in dot
    assert '[label="0.3"]' in dot


def test_sequence_dot_name_parameter() -> None:
    dot = sequence_to_dot(hospital_sequence(), name="fig1")
    assert dot.startswith("digraph fig1 {")


# ---------------------------------------------------------------------------
# automaton_to_dot
# ---------------------------------------------------------------------------


def test_automaton_dot_marks_accepting_states() -> None:
    dfa = regex_to_dfa("ab*", "ab")
    dot = automaton_to_dot(dfa)
    assert "doublecircle" in dot  # some state accepts "a"
    assert "shape=circle" in dot  # and some state does not
    assert f"start -> {_quote(dfa.initial)};" in dot


def test_automaton_dot_groups_parallel_edges() -> None:
    # Both symbols go q0 -> q1: one edge, comma-joined label.
    nfa = NFA(
        ("a", "b"),
        {"q0", "q1"},
        "q0",
        {"q1"},
        {("q0", "a"): {"q1"}, ("q0", "b"): {"q1"}},
    )
    dot = automaton_to_dot(nfa, name="grouped")
    assert dot.startswith("digraph grouped {")
    assert '"q0" -> "q1" [label="a,b"];' in dot
    assert dot.count('"q0" -> "q1"') == 1


# ---------------------------------------------------------------------------
# transducer_to_dot
# ---------------------------------------------------------------------------


def test_transducer_dot_uses_sigma_colon_output_labels() -> None:
    dot = transducer_to_dot(room_change_transducer())
    # Figure 2 style: moves between rooms emit the room's place digit...
    assert " : 1" in dot or " : 2" in dot
    # ...and non-changes emit nothing, rendered as epsilon.
    assert " : ε" in dot


def test_transducer_dot_renders_all_states() -> None:
    query = room_change_transducer()
    dot = transducer_to_dot(query, name="fig2")
    assert dot.startswith("digraph fig2 {")
    for state in query.nfa.states:
        assert _quote(state) in dot
    assert "doublecircle" in dot


def test_transducer_dot_multicharacter_emission() -> None:
    nfa = NFA(("x",), {"s"}, "s", {"s"}, {("s", "x"): {"s"}})
    transducer = Transducer(nfa, {("s", "x", "s"): ("o", "u", "t")})
    dot = transducer_to_dot(transducer)
    assert '[label="x : out"]' in dot
