"""The engine's min_confidence parameter across orders."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ReproError
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.confidence.brute_force import brute_force_answers
from repro.core.engine import evaluate

from tests.conftest import make_sequence

ALPHABET = "ab"


def expected_above(sequence, query, theta):
    return {
        answer: confidence
        for answer, confidence in brute_force_answers(sequence, query).items()
        if confidence >= theta - 1e-12
    }


@pytest.mark.parametrize("order", ["unranked", "emax"])
def test_threshold_transducer_orders(order: str) -> None:
    rng = random.Random(6)
    sequence = make_sequence(ALPHABET, 5, rng)
    query = collapse_transducer({"a": "X", "b": "Y"})
    all_confidences = brute_force_answers(sequence, query)
    theta = sorted(all_confidences.values())[len(all_confidences) * 3 // 4]
    produced = {
        a.output: a.confidence
        for a in evaluate(sequence, query, order=order, min_confidence=theta)
    }
    want = expected_above(sequence, query, theta)
    assert set(produced) == set(want)
    for output, confidence in produced.items():
        assert math.isclose(confidence, want[output], abs_tol=1e-9)


def test_threshold_confidence_order_indexed() -> None:
    rng = random.Random(8)
    sequence = make_sequence(ALPHABET, 5, rng)
    projector = IndexedSProjector(
        sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET)
    )
    confidences = brute_force_answers(sequence, projector)
    theta = sorted(confidences.values())[len(confidences) // 2]
    produced = {
        a.output: a.confidence
        for a in evaluate(
            sequence, projector, order="confidence", min_confidence=theta
        )
    }
    want = expected_above(sequence, projector, theta)
    assert set(produced) == set(want)


def test_threshold_imax_order() -> None:
    rng = random.Random(9)
    sequence = make_sequence(ALPHABET, 5, rng)
    projector = SProjector(
        sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET)
    )
    confidences = brute_force_answers(sequence, projector)
    theta = sorted(confidences.values())[len(confidences) // 2]
    produced = {
        a.output
        for a in evaluate(sequence, projector, order="imax", min_confidence=theta)
    }
    want = set(expected_above(sequence, projector, theta))
    assert produced == want


def test_threshold_with_limit() -> None:
    rng = random.Random(10)
    sequence = make_sequence(ALPHABET, 5, rng)
    query = collapse_transducer({"a": "X", "b": "Y"})
    answers = list(
        evaluate(sequence, query, order="emax", min_confidence=0.0001, limit=2)
    )
    assert len(answers) <= 2


def test_threshold_requires_confidence() -> None:
    rng = random.Random(11)
    sequence = make_sequence(ALPHABET, 3, rng)
    query = collapse_transducer({"a": "X", "b": "Y"})
    with pytest.raises(ReproError):
        list(
            evaluate(
                sequence,
                query,
                order="emax",
                with_confidence=False,
                min_confidence=0.5,
            )
        )
