"""Guards for the seeded large-sparse corpus cases.

The corpus carries two shrinker-minimized regression instances for the
sparse kernels: a 64-state, density-1/64 machine and a failure-arc-heavy
machine whose rows dedup 2:1. These tests pin their presence, their
structural properties (so a future re-shrink cannot silently weaken
them), and their clean replay through the full engine matrix.
"""

from __future__ import annotations

from fractions import Fraction
from pathlib import Path

from repro.confidence.sparse import SparseKernel
from repro.oracle.differential import check_instance
from repro.oracle.metamorphic import check_representation_swap
from repro.oracle.shrinker import load_corpus
from repro.runtime.plan import QueryPlan
from repro.runtime.shrink import measure_density

CORPUS = Path(__file__).parent / "corpus"
LARGE_SPARSE = CORPUS / "deterministic-2207d8d5cb2e.json"
FAILURE_ARC = CORPUS / "deterministic-c16501b2184a.json"


def _case(path: Path):
    cases = dict(load_corpus(CORPUS))
    assert path in cases, f"missing seeded corpus case {path.name}"
    return cases[path]


def test_large_sparse_case_shape() -> None:
    instance = _case(LARGE_SPARSE)
    assert instance.note == "large-sparse"
    nfa = instance.query.nfa
    assert len(nfa.states) >= 64
    density = measure_density(instance.query)
    assert density < Fraction(1, 20)  # under 5%
    plan = QueryPlan.build(instance.query)
    assert plan.representation == "sparse"
    assert plan.sparse is not None


def test_failure_arc_case_shape() -> None:
    instance = _case(FAILURE_ARC)
    assert instance.note == "failure-arc-heavy"
    nfa = instance.query.nfa
    assert len(nfa.states) >= 64
    assert measure_density(instance.query) < Fraction(1, 20)
    kernel = SparseKernel(instance.query)
    # Half the rows are failure-arc shares of the other half.
    assert kernel.shared_rows >= len(nfa.states) // 2
    assert kernel.num_rows <= len(nfa.states) // 2


def test_sparse_corpus_replays_clean() -> None:
    for path in (LARGE_SPARSE, FAILURE_ARC):
        instance = _case(path)
        result = check_instance(instance)
        assert result.diffs == [], f"{path.name}: {result.diffs}"
        swaps = check_representation_swap(instance)
        assert swaps == [], f"{path.name}: {swaps}"
