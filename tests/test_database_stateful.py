"""Stateful property test of the Markov-stream database."""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.markov.builders import random_sequence
from repro.transducers.library import collapse_transducer
from repro.lahar.database import MarkovStreamDatabase

ALPHABET = ("a", "b")
QUERY = collapse_transducer({"a": "X", "b": "Y"})


class DatabaseMachine(RuleBasedStateMachine):
    """Register/drop/query must behave like a plain dict of sequences."""

    def __init__(self) -> None:
        super().__init__()
        self.database = MarkovStreamDatabase()
        self.model: dict = {}
        self.database.register_query("collapse", QUERY)

    names = Bundle("names")

    @rule(target=names, name=st.text(alphabet="xyz", min_size=1, max_size=4),
          seed=st.integers(0, 1000), length=st.integers(1, 4))
    def register(self, name: str, seed: int, length: int):
        sequence = random_sequence(ALPHABET, length, random.Random(seed))
        self.database.register_stream(name, sequence)
        self.model[name] = sequence
        return name

    @rule(name=names)
    def drop(self, name: str):
        if name in self.model:
            self.database.drop_stream(name)
            del self.model[name]

    @rule(name=names)
    def query_matches_direct_evaluation(self, name: str):
        if name not in self.model:
            return
        from repro.core.engine import evaluate

        via_db = {a.output for a in self.database.query(name, "collapse")}
        direct = {a.output for a in evaluate(self.model[name], QUERY)}
        assert via_db == direct

    @invariant()
    def catalog_matches_model(self) -> None:
        assert self.database.streams() == sorted(self.model)


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)
