"""Language probabilities and answerhood tests."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AlphabetMismatchError
from repro.markov.builders import uniform_iid
from repro.automata.determinize import determinize
from repro.automata.regex import regex_to_dfa, regex_to_nfa
from repro.confidence.language import is_answer, language_probability
from repro.semiring import BOOLEAN, VITERBI
from repro.transducers.library import collapse_transducer

from tests.conftest import make_random_nfa, make_sequence


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 5))
def test_matches_world_sum_for_nfa(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", length, rng)
    nfa = make_random_nfa("ab", 3, rng)
    expected = sum(prob for world, prob in sequence.worlds() if nfa.accepts(world))
    assert math.isclose(language_probability(sequence, nfa), expected, abs_tol=1e-9)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_dfa_and_nfa_paths_agree(seed: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence("ab", 4, rng)
    nfa = make_random_nfa("ab", 3, rng)
    dfa = determinize(nfa)
    assert math.isclose(
        language_probability(sequence, nfa),
        language_probability(sequence, dfa),
        abs_tol=1e-12,
    )


def test_viterbi_semiring_gives_best_accepted_world() -> None:
    rng = random.Random(5)
    sequence = make_sequence("ab", 4, rng)
    dfa = regex_to_dfa(".*b", "ab")
    expected = max(
        (prob for world, prob in sequence.worlds() if dfa.accepts(world)),
        default=0,
    )
    assert math.isclose(
        language_probability(sequence, dfa, semiring=VITERBI), expected, abs_tol=1e-12
    )


def test_boolean_semiring_decides_nonemptiness() -> None:
    sequence = uniform_iid("ab", 3)
    assert language_probability(sequence, regex_to_dfa(".*b", "ab"), semiring=BOOLEAN)
    # Length mismatch: strings of length 5 never occur.
    five = regex_to_dfa("aaaaa", "ab")
    assert not language_probability(sequence, five, semiring=BOOLEAN)


def test_exact_fractions() -> None:
    sequence = uniform_iid("ab", 3, exact=True)
    dfa = regex_to_dfa("a.*", "ab")  # starts with a
    assert language_probability(sequence, dfa) == Fraction(1, 2)
    nfa = regex_to_nfa(".*b", "ab")  # ends with b
    assert language_probability(sequence, nfa) == Fraction(1, 2)


def test_alphabet_mismatch() -> None:
    sequence = uniform_iid("ab", 2)
    with pytest.raises(AlphabetMismatchError):
        language_probability(sequence, regex_to_dfa("a", "abc"))


def test_is_answer() -> None:
    sequence = uniform_iid("ab", 3, exact=True)
    transducer = collapse_transducer({"a": "X", "b": "Y"})
    assert is_answer(sequence, transducer, ("X", "Y", "X"))
    assert not is_answer(sequence, transducer, ("X", "Y"))
    assert not is_answer(sequence, transducer, ("Z",) * 3)
