"""The FPRAS estimator (repro.approx.fpras): validation, the four
method paths, determinism, and telemetry."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest

from repro import telemetry
from repro.approx.fpras import ApproxConfidence, approximate_confidence, dklr_target
from repro.confidence.brute_force import brute_force_confidence
from repro.errors import AlphabetMismatchError, ReproError
from repro.hardness.counting import two_dnf_counting_instance
from repro.hardness.gap_instances import mealy_gap_instance, projector_gap_instance
from repro.hardness.independent_set import occurrence_gap_instance
from repro.markov.builders import uniform_iid
from repro.transducers.sprojector import IndexedSProjector


@pytest.fixture(autouse=True)
def telemetry_disabled():
    telemetry.disable()
    yield
    telemetry.disable()


def _ambiguous_case():
    """The 2-clause 2-DNF reduction: ambiguity 2, exact confidence known."""
    instance = two_dnf_counting_instance([(1, 1), (2, 2), (1, 2)], 2, 2)
    exact = brute_force_confidence(instance.sequence, instance.transducer, instance.answer)
    return instance, exact


# ---------------------------------------------------------------- dklr_target


def test_dklr_target_matches_the_stopping_rule_formula() -> None:
    expected = 1.0 + 4.0 * (math.e - 2.0) * math.log(2.0 / 0.05) * 1.1 / 0.01
    assert dklr_target(0.1, 0.05) == pytest.approx(expected)


def test_dklr_target_grows_as_tolerances_tighten() -> None:
    assert dklr_target(0.05, 0.05) > dklr_target(0.1, 0.05)
    assert dklr_target(0.1, 0.01) > dklr_target(0.1, 0.05)


@pytest.mark.parametrize("epsilon", [0.0, -0.1, 1.0, 1.5, float("nan")])
def test_dklr_target_rejects_bad_epsilon(epsilon: float) -> None:
    with pytest.raises(ReproError):
        dklr_target(epsilon, 0.05)


@pytest.mark.parametrize("delta", [0.0, -0.1, 1.0, 2.0, float("nan")])
def test_dklr_target_rejects_bad_delta(delta: float) -> None:
    with pytest.raises(ReproError):
        dklr_target(0.1, delta)


def test_dklr_target_rejects_underflowing_epsilon() -> None:
    # 1e-200 is in (0, 1) but its square underflows to 0.0.
    with pytest.raises(ReproError, match="underflow"):
        dklr_target(1e-200, 0.05)


# ---------------------------------------------------------- ApproxConfidence


def _estimate(**overrides) -> ApproxConfidence:
    base = dict(
        estimate=0.5, low=0.45, high=0.55, epsilon=0.1, delta=0.05,
        samples=100, successes=50, run_weight=1.0, certified=True, method="dklr",
    )
    base.update(overrides)
    return ApproxConfidence(**base)


def test_interval_and_float_views() -> None:
    estimate = _estimate()
    assert estimate.interval == (0.45, 0.55)
    assert float(estimate) == 0.5
    assert estimate.relative_width == pytest.approx(0.2)


def test_contains_uses_the_interval_with_slack() -> None:
    estimate = _estimate()
    assert estimate.contains(Fraction(1, 2))
    assert estimate.contains(0.45)
    assert estimate.contains(0.55 + 1e-13)  # inside the slack
    assert not estimate.contains(0.56)
    assert not estimate.contains(0.2)


def test_relative_width_of_point_estimates() -> None:
    assert _estimate(estimate=0.0, low=0.0, high=0.0).relative_width == 0.0
    assert _estimate(estimate=0.0, low=0.0, high=0.1).relative_width == math.inf


def test_describe_is_json_safe() -> None:
    import json

    described = _estimate().describe()
    assert json.loads(json.dumps(described)) == described
    assert described["method"] == "dklr"
    assert described["certified"] is True


# ------------------------------------------------------------- input checks


def test_rejects_rng_and_seed_together() -> None:
    gap = mealy_gap_instance(3)
    with pytest.raises(ReproError, match="rng or seed"):
        approximate_confidence(
            gap.sequence, gap.query, gap.emax_top_answer,
            seed=1, rng=random.Random(1),
        )


def test_rejects_nonpositive_max_samples() -> None:
    gap = mealy_gap_instance(3)
    with pytest.raises(ReproError, match="max_samples"):
        approximate_confidence(
            gap.sequence, gap.query, gap.emax_top_answer, max_samples=0,
        )


def test_rejects_indexed_sprojectors() -> None:
    occ = occurrence_gap_instance(3)
    indexed = IndexedSProjector(
        occ.projector.prefix, occ.projector.pattern, occ.projector.suffix
    )
    with pytest.raises(ReproError, match="Theorem 5.8"):
        approximate_confidence(occ.sequence, indexed, occ.answer)


def test_rejects_unknown_query_types() -> None:
    gap = mealy_gap_instance(3)
    with pytest.raises(ReproError, match="query type"):
        approximate_confidence(gap.sequence, object(), gap.emax_top_answer)


def test_rejects_alphabet_mismatch() -> None:
    gap = mealy_gap_instance(3)
    other = uniform_iid(("x", "y"), 3)
    with pytest.raises(AlphabetMismatchError):
        approximate_confidence(other, gap.query, gap.emax_top_answer)


# ------------------------------------------------------------- method paths


def test_exact_zero_path_needs_no_samples() -> None:
    gap = mealy_gap_instance(3)
    impossible = ("Z", "Z", "Z")  # 'Z' is outside the emission range
    estimate = approximate_confidence(
        gap.sequence, gap.query, impossible, seed=0,
    )
    assert estimate.method == "exact-zero"
    assert estimate.estimate == 0.0
    assert estimate.interval == (0.0, 0.0)
    assert estimate.samples == 0
    assert estimate.certified


def test_exact_zero_holds_even_without_the_shortcut() -> None:
    gap = mealy_gap_instance(3)
    estimate = approximate_confidence(
        gap.sequence, gap.query, ("Z", "Z", "Z"), seed=0, exact_shortcut=False,
    )
    assert estimate.method == "exact-zero"
    assert estimate.samples == 0


def test_unambiguous_path_is_exact() -> None:
    for gap in (mealy_gap_instance(4), projector_gap_instance(4)):
        estimate = approximate_confidence(
            gap.sequence, gap.query, gap.emax_top_answer, seed=0,
        )
        assert estimate.method == "unambiguous"
        assert estimate.samples == 0
        assert estimate.certified
        assert estimate.low == estimate.high == estimate.estimate
        assert estimate.estimate == pytest.approx(float(gap.emax_top_confidence))


def test_dklr_path_on_an_ambiguous_product() -> None:
    instance, exact = _ambiguous_case()
    estimate = approximate_confidence(
        instance.sequence, instance.transducer, instance.answer,
        epsilon=0.1, delta=0.05, seed=42,
    )
    assert estimate.method == "dklr"
    assert estimate.certified
    assert estimate.samples > 0
    assert estimate.contains(exact)
    assert estimate.low <= estimate.estimate <= estimate.high
    # The certified relative window is (1+ε)/(1−ε) wide at most.
    assert estimate.high / estimate.low <= (1.1 / 0.9) + 1e-9
    # Σ overcounts the confidence by the ambiguity (here between 1 and 2).
    assert estimate.run_weight > float(exact)


def test_forced_sampling_agrees_with_the_exact_shortcut() -> None:
    gap = mealy_gap_instance(4)
    exact = float(gap.emax_top_confidence)
    forced = approximate_confidence(
        gap.sequence, gap.query, gap.emax_top_answer,
        epsilon=0.2, delta=0.1, seed=7, exact_shortcut=False,
    )
    assert forced.method == "dklr"
    # The product is unambiguous, so every sampled run is canonical.
    assert forced.successes == forced.samples
    assert forced.contains(exact)


def test_capped_path_downgrades_honestly() -> None:
    instance, exact = _ambiguous_case()
    estimate = approximate_confidence(
        instance.sequence, instance.transducer, instance.answer,
        epsilon=0.05, delta=0.05, seed=3, max_samples=50,
    )
    assert estimate.method == "capped"
    assert not estimate.certified
    assert estimate.samples == 50
    assert 0.0 <= estimate.low <= estimate.high <= 1.0
    # The Hoeffding band is additive, hence wide — but still anchored.
    assert estimate.low <= float(exact) <= estimate.high


def test_estimate_never_exceeds_the_run_weight_or_one() -> None:
    instance, _ = _ambiguous_case()
    for seed in range(5):
        estimate = approximate_confidence(
            instance.sequence, instance.transducer, instance.answer,
            epsilon=0.3, delta=0.2, seed=seed,
        )
        assert estimate.high <= min(estimate.run_weight, 1.0) + 1e-12


# -------------------------------------------------------------- determinism


def test_same_seed_means_identical_estimates() -> None:
    instance, _ = _ambiguous_case()
    first = approximate_confidence(
        instance.sequence, instance.transducer, instance.answer, seed=99,
    )
    second = approximate_confidence(
        instance.sequence, instance.transducer, instance.answer, seed=99,
    )
    assert first == second


def test_different_seeds_vary_the_sample_path() -> None:
    instance, _ = _ambiguous_case()
    estimates = {
        approximate_confidence(
            instance.sequence, instance.transducer, instance.answer, seed=seed,
        ).samples
        for seed in range(8)
    }
    assert len(estimates) > 1  # the sampler really consumes the seed


def test_explicit_rng_is_honoured() -> None:
    instance, _ = _ambiguous_case()
    by_seed = approximate_confidence(
        instance.sequence, instance.transducer, instance.answer, seed=5,
    )
    by_rng = approximate_confidence(
        instance.sequence, instance.transducer, instance.answer,
        rng=random.Random(5),
    )
    assert by_seed == by_rng


# ---------------------------------------------------------------- telemetry


def test_telemetry_counts_estimates_and_samples() -> None:
    instance, _ = _ambiguous_case()
    gap = mealy_gap_instance(3)
    telemetry.enable()
    approximate_confidence(
        instance.sequence, instance.transducer, instance.answer, seed=1,
    )
    approximate_confidence(gap.sequence, gap.query, gap.emax_top_answer, seed=1)
    approximate_confidence(gap.sequence, gap.query, ("Z", "Z", "Z"), seed=1)
    snapshot = telemetry.snapshot()
    counters = snapshot["counters"]
    assert counters["approx.estimates"] == 3
    assert counters["approx.unambiguous"] == 1
    assert counters["approx.exact_zero"] == 1
    assert counters["approx.samples"] > 0
    assert counters["approx.early_stop"] == 1
    assert "approx.estimate" in snapshot["spans"]
