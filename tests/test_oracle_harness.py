"""The budgeted verify loop and its coverage gate (repro.oracle.harness)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.confidence.brute_force import brute_force_confidence
from repro.errors import ReproError
from repro.oracle.generators import CLASS_LABELS, generate_instance
from repro.oracle.harness import MIN_ROUNDS, verify
from repro.oracle.registry import ENGINES, Engine
from repro.oracle.shrinker import load_corpus


def test_seeded_run_passes_with_full_coverage() -> None:
    report = verify(seed=7, max_rounds=MIN_ROUNDS, metamorphic=False)
    assert report.ok, report.summary()
    assert report.diffs == []
    assert report.untested_cells() == []
    assert report.rounds == MIN_ROUNDS
    assert report.instances == MIN_ROUNDS * len(CLASS_LABELS)
    assert report.probes > 0
    matrix = report.matrix_report()
    assert "MISS" not in matrix
    assert matrix.splitlines()[0].startswith("class")
    assert "PASS" in report.summary()


def test_class_subset_restricts_the_gate() -> None:
    report = verify(seed=7, max_rounds=MIN_ROUNDS, classes=("sprojector",),
                    metamorphic=False)
    assert report.ok
    assert {label for label, _ in report.coverage} == {"sprojector"}
    # Cells of unrequested classes are not "untested".
    assert report.untested_cells() == []


def test_unexercised_applicable_cell_fails_the_gate() -> None:
    # An engine whose predicate never holds: statically applicable to the
    # general row, never executed -> the coverage gate must trip.
    phantom = Engine(
        "phantom",
        frozenset({"general"}),
        lambda prepared, answer, context: 0,
        applies=lambda prepared: False,
    )
    report = verify(
        seed=7,
        max_rounds=MIN_ROUNDS,
        classes=("general",),
        engines=ENGINES + (phantom,),
        metamorphic=False,
    )
    assert not report.diffs
    assert report.untested_cells() == [("general", "phantom")]
    assert not report.ok
    assert "FAIL" in report.summary()
    assert "general×phantom" in report.summary()
    assert "MISS" in report.matrix_report()


def test_corpus_cases_are_replayed_before_fuzzing(tmp_path) -> None:
    cases = [generate_instance("uniform", seed=2), generate_instance("indexed", seed=2)]
    report = verify(seed=7, max_rounds=MIN_ROUNDS, corpus_cases=cases,
                    metamorphic=False)
    assert report.ok
    assert report.corpus_cases == 2
    assert report.instances == 2 + MIN_ROUNDS * len(CLASS_LABELS)


def test_buggy_engine_yields_diffs_and_a_saved_shrunk_case(tmp_path) -> None:
    def off_by_one(prepared, answer, context):
        sequence = prepared.sequence
        if sequence.length > 1:
            sequence = sequence.prefix(sequence.length - 1)
        return brute_force_confidence(sequence, prepared.instance.query, answer)

    scratch = Engine("scratch", frozenset({"deterministic"}), off_by_one, exact=True)
    failures = tmp_path / "failures"
    report = None
    for seed in range(16):
        report = verify(
            seed=seed,
            max_rounds=MIN_ROUNDS,
            classes=("deterministic",),
            engines=ENGINES + (scratch,),
            metamorphic=False,
            save_failures=failures,
        )
        if report.diffs:
            break
    assert report is not None and report.diffs, "injected bug was never tripped"
    assert not report.ok
    assert any(diff.engine == "scratch" for diff in report.diffs)
    assert report.shrunk
    assert report.saved
    # The persisted minimized case replays through the corpus loader.
    loaded = load_corpus(failures)
    assert loaded
    assert all(instance.label == "deterministic" for _path, instance in loaded)


def test_committed_corpus_replays_cleanly() -> None:
    corpus = Path(__file__).parent / "corpus"
    report = verify(seed=0, max_rounds=MIN_ROUNDS, corpus=corpus, metamorphic=False)
    assert report.ok, report.summary()
    # One committed regression case per Table-2 class, at minimum.
    assert report.corpus_cases >= len(CLASS_LABELS)


def test_budget_stops_after_min_rounds() -> None:
    report = verify(seed=7, budget=1e-9, metamorphic=False)
    assert report.rounds == MIN_ROUNDS
    assert report.ok


def test_parameter_validation() -> None:
    with pytest.raises(ReproError, match="unknown query class"):
        verify(classes=("bogus",))
    with pytest.raises(ReproError, match="at least one query class"):
        verify(classes=())
    with pytest.raises(ReproError, match="--budget"):
        verify(budget=0)
    with pytest.raises(ReproError, match="--max-rounds"):
        verify(max_rounds=1)
