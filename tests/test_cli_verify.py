"""CLI error paths and the ``repro verify`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io.json_format import write_query, write_sequence
from repro.oracle.generators import generate_instance
from repro.oracle.shrinker import save_case


@pytest.fixture
def stream_files(tmp_path):
    instance = generate_instance("deterministic", seed=1)
    query_path = tmp_path / "query.json"
    seq_path = tmp_path / "stream.json"
    write_query(instance.query, query_path)
    write_sequence(instance.sequence, seq_path)
    return str(seq_path), str(query_path)


# ---------------------------------------------------------------------------
# repro verify
# ---------------------------------------------------------------------------


def test_verify_smoke_run_passes(capsys) -> None:
    code = main(["verify", "--max-rounds", "2", "--no-metamorphic", "--seed", "7"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("class")
    assert "PASS" in out
    assert "MISS" not in out
    assert "DIFF" not in out


def test_verify_replays_a_corpus(tmp_path, capsys) -> None:
    corpus = tmp_path / "corpus"
    save_case(generate_instance("indexed", seed=3), corpus)
    code = main(
        ["verify", "--max-rounds", "2", "--no-metamorphic", "--corpus", str(corpus)]
    )
    assert code == 0
    assert "(1 corpus, 2 fuzz rounds)" in capsys.readouterr().out


def test_verify_missing_corpus_directory(capsys) -> None:
    assert main(["verify", "--corpus", "/nonexistent/corpus"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "does not exist" in err


def test_verify_rejects_bad_workers(capsys) -> None:
    assert main(["verify", "--workers", "0"]) == 2
    assert "--workers must be at least 1" in capsys.readouterr().err


def test_verify_rejects_unknown_classes(capsys) -> None:
    assert main(["verify", "--classes", "deterministic,bogus"]) == 2
    assert "unknown query class" in capsys.readouterr().err


def test_verify_rejects_non_positive_budget(capsys) -> None:
    assert main(["verify", "--budget", "-1"]) == 2
    assert "--budget must be positive" in capsys.readouterr().err


def test_verify_rejects_malformed_corpus_case(tmp_path, capsys) -> None:
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "broken.json").write_text("{oops")
    assert main(["verify", "--corpus", str(corpus)]) == 2
    err = capsys.readouterr().err
    assert "invalid JSON" in err and "broken.json" in err


# ---------------------------------------------------------------------------
# repro batch
# ---------------------------------------------------------------------------


def test_batch_missing_corpus_directory(stream_files, capsys) -> None:
    _seq, query = stream_files
    code = main(["batch", "--query", query, "--corpus", "/nonexistent/streams"])
    assert code == 2
    assert "not a directory" in capsys.readouterr().err


def test_batch_needs_some_stream(stream_files, capsys) -> None:
    _seq, query = stream_files
    assert main(["batch", "--query", query]) == 2
    assert "--sequence files and/or --corpus" in capsys.readouterr().err


def test_batch_rejects_negative_workers(stream_files, capsys) -> None:
    seq, query = stream_files
    code = main(
        ["batch", "--query", query, "--sequence", seq, "--workers", "-2"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "worker count cannot be negative" in err


def test_batch_malformed_stream_json(tmp_path, stream_files, capsys) -> None:
    _seq, query = stream_files
    bad = tmp_path / "garbage.json"
    bad.write_text("{this is not json")
    code = main(["batch", "--query", query, "--sequence", str(bad)])
    assert code == 2
    err = capsys.readouterr().err
    assert "invalid JSON" in err and "garbage.json" in err


def test_batch_wrong_document_kind(tmp_path, stream_files, capsys) -> None:
    _seq, query = stream_files
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"type": "unexpected"}))
    code = main(["batch", "--query", query, "--sequence", str(wrong)])
    assert code == 2
    assert capsys.readouterr().err.startswith("error:")


def test_batch_unreadable_stream_file(stream_files, capsys) -> None:
    _seq, query = stream_files
    code = main(["batch", "--query", query, "--sequence", "/nonexistent/s.json"])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err
