"""Property test: pooled execution is bit-identical to serial execution.

The acceptance property for the parallel subsystem: for every Table-2
query class, :class:`WorkerPool` results — answers, confidences, scores,
and ordering — equal serial ``batch_top_k``/``run_evaluate`` results with
exact ``Fraction`` equality, across the fan-out path, the ``workers=1``
serial path, and the forced fallback-to-serial path.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfa import NFA
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.parallel import WorkerPool
from repro.runtime.executor import batch_top_k, run_evaluate
from repro.runtime.plan import PlanKind, QueryPlan
from repro.transducers.library import collapse_transducer
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.transducers.transducer import Transducer

from tests.conftest import make_fraction_sequence

ALPHABET = "ab"


def _branching_nfa() -> NFA:
    """A genuinely nondeterministic two-state machine over ``ab``."""
    return NFA(
        ALPHABET,
        ["p", "q"],
        "p",
        {"p", "q"},
        {
            ("p", "a"): {"p", "q"},
            ("p", "b"): {"p"},
            ("q", "a"): {"q"},
            ("q", "b"): {"p", "q"},
        },
    )


def _uniform_nondeterministic() -> Transducer:
    nfa = _branching_nfa()
    omega = {move: ("x",) for move in nfa.transitions()}
    omega[("p", "a", "q")] = ("y",)
    omega[("q", "b", "p")] = ("y",)
    return Transducer(nfa, omega)


def _general_transducer() -> Transducer:
    nfa = _branching_nfa()
    omega = {move: ("x",) for move in nfa.transitions()}
    omega[("p", "a", "q")] = ()
    omega[("q", "b", "p")] = ("y", "x")
    return Transducer(nfa, omega)


QUERY_FAMILIES = {
    "deterministic-transducer": lambda: collapse_transducer({"a": "X", "b": "Y"}),
    "uniform-transducer": _uniform_nondeterministic,
    "general-transducer": _general_transducer,
    "sprojector": lambda: SProjector(
        sigma_star(ALPHABET), regex_to_dfa("a+", ALPHABET), sigma_star(ALPHABET)
    ),
    "indexed-sprojector": lambda: IndexedSProjector(
        sigma_star(ALPHABET), regex_to_dfa("ab*", ALPHABET), sigma_star(ALPHABET)
    ),
}

EXPECTED_KINDS = {
    "deterministic-transducer": PlanKind.DETERMINISTIC,
    "uniform-transducer": PlanKind.UNIFORM,
    "general-transducer": PlanKind.GENERAL,
    "sprojector": PlanKind.SPROJECTOR,
    "indexed-sprojector": PlanKind.INDEXED_SPROJECTOR,
}


def _raise_worker(task):  # pragma: no cover - runs inside worker processes
    raise RuntimeError("injected worker failure")


@pytest.fixture(scope="module")
def fanout_pool():
    with WorkerPool(2, chunk_size=1) as pool:
        yield pool


@pytest.fixture(scope="module")
def failing_pool():
    # Every submission raises; with no retry budget every chunk must be
    # recomputed serially in the parent — results still exact.
    with WorkerPool(2, chunk_size=1, max_retries=0, _worker_fn=_raise_worker) as pool:
        yield pool


def _corpus(rng: random.Random, streams: int = 3, length: int = 3) -> dict:
    return {
        f"s{i}": make_fraction_sequence(ALPHABET, length, rng)
        for i in range(streams)
    }


def _key(pairs):
    return [(name, a.output, a.confidence, a.score, a.order) for name, a in pairs]


def test_families_cover_all_table2_classes() -> None:
    for family, build in QUERY_FAMILIES.items():
        assert QueryPlan.build(build()).kind is EXPECTED_KINDS[family]


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_pool_top_k_bit_identical_to_serial(seed: int, fanout_pool, failing_pool) -> None:
    rng = random.Random(seed)
    family = rng.choice(sorted(QUERY_FAMILIES))
    query = QUERY_FAMILIES[family]()
    corpus = _corpus(rng)
    serial = _key(
        batch_top_k(QueryPlan.build(query), corpus, 4, allow_exponential=True)
    )
    pooled = _key(
        fanout_pool.batch_top_k(query, corpus, 4, allow_exponential=True)
    )
    assert pooled == serial
    with WorkerPool(1) as single:
        assert (
            _key(single.batch_top_k(query, corpus, 4, allow_exponential=True))
            == serial
        )
    fallbacks_before = failing_pool.stats.serial_fallbacks
    assert (
        _key(failing_pool.batch_top_k(query, corpus, 4, allow_exponential=True))
        == serial
    )
    assert failing_pool.stats.serial_fallbacks > fallbacks_before


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_pool_evaluate_bit_identical_to_serial(seed: int, fanout_pool) -> None:
    rng = random.Random(seed)
    family = rng.choice(sorted(QUERY_FAMILIES))
    query = QUERY_FAMILIES[family]()
    corpus = _corpus(rng, streams=2)
    plan = QueryPlan.build(query)
    serial = {
        name: [
            (a.output, a.confidence, a.score, a.order)
            for a in run_evaluate(plan, sequence, allow_exponential=True)
        ]
        for name, sequence in corpus.items()
    }
    pooled = fanout_pool.evaluate_many(query, corpus, allow_exponential=True)
    assert {
        name: [(a.output, a.confidence, a.score, a.order) for a in answers]
        for name, answers in pooled.items()
    } == serial
