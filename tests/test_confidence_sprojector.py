"""Theorem 5.5: s-projector confidence via the B.o.E concatenation language."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.markov.builders import uniform_iid
from repro.automata.operations import empty_string_only, sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.sprojector import SProjector
from repro.confidence.brute_force import brute_force_answers
from repro.confidence.sprojector import confidence_sprojector

from tests.conftest import make_random_dfa, make_sequence

ALPHABET = "abc"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 5))
def test_matches_brute_force(seed: int, length: int) -> None:
    rng = random.Random(seed)
    sequence = make_sequence(ALPHABET, length, rng)
    projector = SProjector(
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
    )
    expected = brute_force_answers(sequence, projector)
    for output, confidence in expected.items():
        computed = confidence_sprojector(sequence, projector, output)
        assert math.isclose(computed, confidence, abs_tol=1e-9), output
    # Strings outside L(A) have confidence zero.
    for output in [("a",) * (length + 2)]:
        if output not in expected:
            assert confidence_sprojector(sequence, projector, output) in (0, 0.0)


def test_simple_projector_substring_probability() -> None:
    sequence = uniform_iid("ab", 3, exact=True)
    pattern = regex_to_dfa("ab", "ab")
    projector = SProjector(sigma_star("ab"), pattern, sigma_star("ab"))
    # Pr(string of length 3 contains 'ab') = 5/8 over uniform {a,b}^3:
    # complement: strings avoiding 'ab' are b^i a^j -> 4 of 8... actually
    # b^i a^j with i+j=3 gives 4 strings, so 8-4 = 4 contain 'ab': 1/2.
    worlds_with_ab = [
        w for w, _p in sequence.worlds() if "ab" in "".join(w)
    ]
    assert confidence_sprojector(sequence, projector, ("a", "b")) == Fraction(
        len(worlds_with_ab), 8
    )


def test_theorem_5_4_gadget_shape() -> None:
    """B = Sigma*, A = {epsilon}: conf(epsilon) = Pr(some suffix in L(E))."""
    sequence = uniform_iid("ab", 3, exact=True)
    projector = SProjector(
        sigma_star("ab"), empty_string_only("ab"), regex_to_dfa("b*", "ab")
    )
    # s = b . epsilon . e with e in b*: equivalent to "some suffix is all b",
    # which always holds (the empty suffix). So confidence is 1.
    assert confidence_sprojector(sequence, projector, ()) == 1
    # With E = bb.* the suffix must be nonempty and start bb.
    projector2 = SProjector(
        sigma_star("ab"), empty_string_only("ab"), regex_to_dfa("bb.*", "ab")
    )
    expected = sum(
        p
        for w, p in sequence.worlds()
        if any("".join(w[i:]).startswith("bb") for i in range(3))
    )
    assert confidence_sprojector(sequence, projector2, ()) == expected


def test_minimize_suffix_toggle_gives_same_result() -> None:
    rng = random.Random(17)
    sequence = make_sequence(ALPHABET, 4, rng)
    projector = SProjector(
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 2, rng),
        make_random_dfa(ALPHABET, 4, rng),
    )
    for output, _c in brute_force_answers(sequence, projector).items():
        a = confidence_sprojector(sequence, projector, output, minimize_suffix=True)
        b = confidence_sprojector(sequence, projector, output, minimize_suffix=False)
        assert math.isclose(a, b, abs_tol=1e-12)


def test_pattern_rejection_short_circuits() -> None:
    sequence = uniform_iid("ab", 3)
    projector = SProjector(
        sigma_star("ab"), regex_to_dfa("a+", "ab"), sigma_star("ab")
    )
    assert confidence_sprojector(sequence, projector, ("b",)) == 0
