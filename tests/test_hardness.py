"""Lower-bound instance families (Theorems 4.4, 4.5, 4.9, 5.3)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.confidence.brute_force import (
    brute_force_answers,
    brute_force_top_answer,
)
from repro.confidence.sprojector import confidence_sprojector
from repro.confidence.uniform_subset import confidence_uniform
from repro.enumeration.emax import top_answer_emax
from repro.enumeration.sprojector_ranked import top_answer_imax
from repro.hardness.counting import (
    count_dnf_models,
    dnf_to_nfa,
    exact_count_via_confidence,
    nfa_counting_instance,
    two_dnf_counting_instance,
)
from repro.hardness.gap_instances import (
    amplified_gap_instance,
    mealy_gap_instance,
    projector_gap_instance,
)
from repro.hardness.independent_set import occurrence_gap_instance
from repro.hardness.max3dnf import Max3DnfInstance, random_3dnf
from repro.automata.regex import regex_to_nfa


class TestMealyGap:
    def test_closed_forms_match_brute_force(self) -> None:
        instance = mealy_gap_instance(4)
        confidences = brute_force_answers(instance.sequence, instance.query)
        assert confidences[instance.emax_top_answer] == instance.emax_top_confidence
        assert confidences[instance.best_answer] == instance.best_confidence
        top_answer, top_conf = brute_force_top_answer(instance.sequence, instance.query)
        assert top_answer == instance.best_answer
        assert top_conf == instance.best_confidence

    def test_heuristic_picks_the_poor_answer(self) -> None:
        instance = mealy_gap_instance(4)
        _score, answer = top_answer_emax(instance.sequence, instance.query)
        assert answer == instance.emax_top_answer

    def test_query_is_one_state_mealy(self) -> None:
        instance = mealy_gap_instance(3)
        assert instance.query.is_mealy()
        assert len(instance.query.nfa.states) == 1

    def test_gap_grows_exponentially(self) -> None:
        r3 = mealy_gap_instance(3).ratio
        r6 = mealy_gap_instance(6).ratio
        assert r6 == r3 * r3  # ratio = c^n exactly
        assert r6 > r3 > 1

    def test_parameter_validation(self) -> None:
        with pytest.raises(ReproError):
            mealy_gap_instance(3, group_size=1, heavy=Fraction(1, 10))


class TestProjectorGap:
    def test_closed_forms_match_brute_force(self) -> None:
        instance = projector_gap_instance(5)
        confidences = brute_force_answers(instance.sequence, instance.query)
        assert confidences[instance.emax_top_answer] == instance.emax_top_confidence
        assert confidences[instance.best_answer] == instance.best_confidence
        top_answer, _conf = brute_force_top_answer(instance.sequence, instance.query)
        assert top_answer == instance.best_answer

    def test_heuristic_picks_all_a(self) -> None:
        instance = projector_gap_instance(5)
        _score, answer = top_answer_emax(instance.sequence, instance.query)
        assert answer == instance.emax_top_answer

    def test_query_is_fixed_projector_over_four_symbols(self) -> None:
        instance = projector_gap_instance(4)
        assert instance.query.is_projector()
        assert instance.query.is_deterministic()
        assert len(instance.query.input_alphabet) == 4
        assert len(instance.query.nfa.states) == 1


class TestAmplification:
    def test_amplification_squares_the_gap(self) -> None:
        base = mealy_gap_instance(2)
        doubled = amplified_gap_instance(base, 2)
        assert doubled.ratio == base.ratio**2
        assert doubled.sequence.length == 2 * base.sequence.length

    def test_amplified_closed_forms_match_brute_force(self) -> None:
        base = mealy_gap_instance(2)
        doubled = amplified_gap_instance(base, 2)
        confidences = brute_force_answers(doubled.sequence, doubled.query)
        assert confidences[doubled.emax_top_answer] == doubled.emax_top_confidence
        assert confidences[doubled.best_answer] == doubled.best_confidence

    def test_requires_positive_copies(self) -> None:
        with pytest.raises(ReproError):
            amplified_gap_instance(mealy_gap_instance(2), 0)


class TestCounting:
    def test_nfa_counting_instance_counts_language_words(self) -> None:
        nfa = regex_to_nfa("(ab)*|a*", "ab")
        for n in (1, 2, 3, 4):
            instance = nfa_counting_instance(nfa, n)
            assert instance.transducer.uniformity() == 1
            assert not instance.transducer.is_selective()
            confidence = confidence_uniform(
                instance.sequence, instance.transducer, instance.answer
            )
            expected = sum(
                1
                for word in __import__("itertools").product("ab", repeat=n)
                if nfa.accepts(word)
            )
            assert exact_count_via_confidence(instance, confidence) == expected

    def test_empty_language_counts_zero(self) -> None:
        nfa = regex_to_nfa("aaa", "ab")
        instance = nfa_counting_instance(nfa, 2)
        confidence = confidence_uniform(
            instance.sequence, instance.transducer, instance.answer
        )
        assert exact_count_via_confidence(instance, confidence) == 0

    def test_dnf_to_nfa_language_is_model_set(self) -> None:
        clauses = [(1, 2), (2, 1)]
        nfa = dnf_to_nfa(clauses, 2, 2)
        count = 0
        for bits in __import__("itertools").product("01", repeat=4):
            accepted = nfa.accepts(bits)
            modeled = any(
                bits[i - 1] == "1" and bits[2 + j - 1] == "1" for i, j in clauses
            )
            assert accepted == modeled
            count += accepted
        assert count == count_dnf_models(clauses, 2, 2)

    def test_end_to_end_2dnf_chain(self) -> None:
        rng = random.Random(13)
        for _ in range(3):
            nx, ny = 2, 2
            clauses = [
                (rng.randint(1, nx), rng.randint(1, ny))
                for _ in range(rng.randint(1, 3))
            ]
            instance = two_dnf_counting_instance(clauses, nx, ny)
            confidence = confidence_uniform(
                instance.sequence, instance.transducer, instance.answer
            )
            assert exact_count_via_confidence(instance, confidence) == count_dnf_models(
                clauses, nx, ny
            )

    def test_clause_range_validation(self) -> None:
        with pytest.raises(ReproError):
            dnf_to_nfa([(3, 1)], 2, 2)


class TestMax3Dnf:
    def test_optimum_and_greedy(self) -> None:
        rng = random.Random(5)
        for _ in range(5):
            instance = random_3dnf(5, 6, rng)
            best, assignment = instance.optimum()
            assert instance.num_satisfied(assignment) == best
            greedy_count, greedy_assignment = instance.greedy()
            assert instance.num_satisfied(greedy_assignment) == greedy_count
            assert greedy_count <= best

    def test_validation(self) -> None:
        with pytest.raises(ReproError):
            Max3DnfInstance(2, (((0, True), (1, True), (5, False)),))

    def test_known_formula(self) -> None:
        # (x0 & x1 & x2): satisfied by exactly the all-true assignment.
        instance = Max3DnfInstance(3, (((0, True), (1, True), (2, True)),))
        best, assignment = instance.optimum()
        assert best == 1
        assert assignment == (True, True, True)


class TestOccurrenceGap:
    def test_imax_vs_confidence_ratio_grows_with_n(self) -> None:
        ratios = []
        for n in (4, 8, 12):
            instance = occurrence_gap_instance(n)
            conf = confidence_sprojector(
                instance.sequence, instance.projector, instance.answer
            )
            score, answer = top_answer_imax(instance.sequence, instance.projector)
            assert answer == instance.answer
            ratios.append(conf / score)
        assert ratios[0] < ratios[1] < ratios[2]
        # Ratio approaches n - 1 for small match probability.
        assert ratios[2] > 8

    def test_sandwich_still_holds(self) -> None:
        instance = occurrence_gap_instance(6)
        conf = confidence_sprojector(
            instance.sequence, instance.projector, instance.answer
        )
        score, _answer = top_answer_imax(instance.sequence, instance.projector)
        assert score <= conf <= instance.n * score

    def test_validation(self) -> None:
        with pytest.raises(ReproError):
            occurrence_gap_instance(1)
        with pytest.raises(ReproError):
            occurrence_gap_instance(5, match_prob=Fraction(3, 4))
