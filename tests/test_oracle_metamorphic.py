"""The metamorphic layer: semantics-preserving transforms stay invariant."""

from __future__ import annotations

import random

import pytest

from repro.oracle.generators import CLASS_LABELS, generate_instance
from repro.oracle.metamorphic import (
    TRANSFORMS,
    Transform,
    check_execution_equivalence,
    check_semiring_swap,
    check_transform,
)

TRANSFORMS_BY_NAME = {transform.name: transform for transform in TRANSFORMS}


@pytest.mark.parametrize("transform", TRANSFORMS, ids=lambda t: t.name)
@pytest.mark.parametrize("label", CLASS_LABELS)
def test_transforms_preserve_the_answer_map(transform, label) -> None:
    for trial in (0, 1):
        instance = generate_instance(label, seed=31, trial=trial)
        diffs = check_transform(instance, transform, random.Random(0))
        assert not diffs, "\n".join(diff.describe() for diff in diffs)


def test_korder_roundtrip_requires_a_deterministic_long_instance() -> None:
    korder = TRANSFORMS_BY_NAME["korder-roundtrip"]
    assert not korder.applies(generate_instance("sprojector", seed=1))
    assert not korder.applies(generate_instance("general", seed=1))
    # Some deterministic seed yields length >= 3 and thus applies.
    applicable = [
        korder.applies(generate_instance("deterministic", seed=s)) for s in range(8)
    ]
    assert any(applicable)


def test_pad_prefix_shifts_indexed_answers() -> None:
    instance = generate_instance("indexed", seed=13)
    pad = TRANSFORMS_BY_NAME["pad-prefix"]
    transformed, mapper = pad.apply(instance, random.Random(0))
    assert transformed.sequence.length == instance.sequence.length + 1
    assert mapper((("a",), 2)) == (("a",), 3)


def test_a_broken_transform_is_caught() -> None:
    # Sanity check the checker itself: a rewrite that truncates the
    # sequence changes the answer distribution and must produce diffs.
    def truncate(instance, rng):
        return instance.with_sequence(instance.sequence.prefix(1)), lambda a: a

    broken = Transform("truncate", truncate)
    instance = generate_instance("deterministic", seed=17, trial=1)
    assert instance.sequence.length > 1
    diffs = check_transform(instance, broken, random.Random(0))
    assert diffs
    assert all(diff.engine == "metamorphic:truncate" for diff in diffs)


@pytest.mark.parametrize("trial", [0, 1])
def test_semiring_swap_on_deterministic_instances(trial) -> None:
    instance = generate_instance("deterministic", seed=37, trial=trial)
    assert check_semiring_swap(instance) == []


def test_semiring_swap_skips_non_deterministic_queries() -> None:
    assert check_semiring_swap(generate_instance("general", seed=5)) == []
    assert check_semiring_swap(generate_instance("sprojector", seed=5)) == []


@pytest.mark.parametrize("label", CLASS_LABELS)
def test_execution_routes_agree(label) -> None:
    instance = generate_instance(label, seed=41)
    diffs = check_execution_equivalence(instance)
    assert not diffs, "\n".join(diff.describe() for diff in diffs)
