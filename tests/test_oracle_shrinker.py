"""Shrinking failing instances and the ``oracle_case`` corpus format."""

from __future__ import annotations

import json

import pytest

from repro.confidence.brute_force import brute_force_confidence
from repro.errors import ReproError
from repro.oracle.differential import check_instance
from repro.oracle.generators import generate_instance
from repro.oracle.registry import ENGINES, Engine, VerifyContext
from repro.oracle.shrinker import (
    instance_from_dict,
    instance_to_dict,
    load_corpus,
    save_case,
    shrink,
    shrink_candidates,
)


def _off_by_one_engine() -> Engine:
    """A deliberately buggy engine: it drops the last Markov step."""

    def compute(prepared, answer, context):
        sequence = prepared.sequence
        if sequence.length > 1:
            sequence = sequence.prefix(sequence.length - 1)
        return brute_force_confidence(sequence, prepared.instance.query, answer)

    return Engine("scratch", frozenset({"deterministic"}), compute, exact=True)


def test_injected_off_by_one_is_caught_and_shrunk_to_minimal() -> None:
    scratch = _off_by_one_engine()
    engines = ENGINES + (scratch,)
    with VerifyContext() as context:

        def fails(candidate) -> bool:
            result = check_instance(candidate, context, engines)
            return any(diff.engine == "scratch" for diff in result.diffs)

        instance = None
        for seed in range(16):
            candidate = generate_instance("deterministic", seed, trial=1)
            if fails(candidate):
                instance = candidate
                break
        assert instance is not None, "no seeded instance tripped the injected bug"

        minimal = shrink(instance, fails)
        assert fails(minimal)
        # Local minimality: no single further simplification still fails.
        assert not any(fails(candidate) for candidate in shrink_candidates(minimal))
        assert minimal.sequence.support_size() <= instance.sequence.support_size()
        # The query is the spec under test and must be untouched.
        assert minimal.query is instance.query


def test_shrink_candidates_simplify_monotonically() -> None:
    instance = generate_instance("uniform", seed=8)
    support = instance.sequence.support_size()
    candidates = list(shrink_candidates(instance))
    assert candidates
    for candidate in candidates:
        assert candidate.query is instance.query
        assert candidate.sequence.length <= instance.sequence.length
        # Sparsifying an unreachable source's row leaves the support as
        # is; every other candidate strictly simplifies.
        assert candidate.sequence.support_size() <= support
    assert any(c.sequence.support_size() < support for c in candidates)


def test_shrink_without_failure_returns_the_instance() -> None:
    instance = generate_instance("general", seed=8)
    assert shrink(instance, lambda candidate: False) is instance


def test_shrink_treats_crashing_candidates_as_not_failing() -> None:
    instance = generate_instance("deterministic", seed=8)

    def fails(candidate):
        if candidate.sequence.length < instance.sequence.length:
            raise RuntimeError("boom")
        return True

    assert shrink(instance, fails).sequence.length == instance.sequence.length


@pytest.mark.parametrize("label", ["deterministic", "sprojector", "indexed"])
def test_oracle_case_roundtrip(label) -> None:
    instance = generate_instance(label, seed=19, trial=2)
    document = instance_to_dict(instance)
    assert document["type"] == "oracle_case"
    restored = instance_from_dict(document)
    assert restored.label == instance.label
    assert restored.seed == instance.seed
    assert instance_to_dict(restored) == document


def test_save_and_load_corpus(tmp_path) -> None:
    corpus_dir = tmp_path / "corpus"
    first = generate_instance("deterministic", seed=19)
    second = generate_instance("sprojector", seed=19)
    path_a = save_case(first, corpus_dir)
    path_b = save_case(second, corpus_dir)
    assert path_a.name.startswith("deterministic-")
    # Content-addressed: re-saving the same case does not duplicate.
    assert save_case(first, corpus_dir) == path_a
    cases = load_corpus(corpus_dir)
    assert [path for path, _ in cases] == sorted([path_a, path_b])
    labels = {instance.label for _path, instance in cases}
    assert labels == {"deterministic", "sprojector"}


def test_load_corpus_missing_directory() -> None:
    with pytest.raises(ReproError, match="does not exist"):
        load_corpus("/nonexistent/oracle-corpus")


def test_load_corpus_malformed_json(tmp_path) -> None:
    (tmp_path / "bad.json").write_text("{not json")
    with pytest.raises(ReproError, match="invalid JSON.*bad.json"):
        load_corpus(tmp_path)


def test_load_corpus_names_the_offending_file(tmp_path) -> None:
    (tmp_path / "wrong.json").write_text(json.dumps({"type": "not_a_case"}))
    with pytest.raises(ReproError, match="wrong.json.*not an oracle_case"):
        load_corpus(tmp_path)


def test_mislabeled_case_is_rejected() -> None:
    document = instance_to_dict(generate_instance("deterministic", seed=19))
    document["class"] = "general"
    with pytest.raises(ReproError, match="declares class 'general'"):
        instance_from_dict(document)
