"""CI smoke test: SIGKILL a durable ``repro serve``, restart, compare.

The store's headline guarantee, exercised the hard way: a real
``repro serve --data-dir`` subprocess is killed with ``SIGKILL`` —
no drain, no atexit, mid-flight buffers lost — immediately after its
last acknowledged append. A second server over the same directory must
come back with every acknowledged stream length, standing-query value,
armed flag, and fired count bit-identical to what the client recorded
before the kill, and ``repro store recover --verify`` must agree.
Exits non-zero on any divergence; the calling CI step wraps the whole
thing in a hard ``timeout``.

Usage::

    PYTHONPATH=src python scripts/store_smoke.py [--appends N]
"""

from __future__ import annotations

import argparse
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.automata.regex import regex_to_dfa  # noqa: E402
from repro.io.json_format import query_to_dict, sequence_to_dict  # noqa: E402
from repro.markov.builders import homogeneous  # noqa: E402
from repro.serve import ServeClient  # noqa: E402
from repro.transducers.library import accept_filter  # noqa: E402

ROWS = {"a": {"a": 0.7, "b": 0.3}, "b": {"a": 0.4, "b": 0.6}}


def wait_for_socket(path: pathlib.Path, process, deadline_s: float = 20.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if process.poll() is not None:
            raise SystemExit(f"server exited early with code {process.returncode}")
        if path.exists():
            try:
                ServeClient.connect_unix(str(path), timeout=2.0).close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    raise SystemExit(f"server socket {path} did not come up in {deadline_s}s")


def start_server(socket_path: pathlib.Path, data_dir: pathlib.Path):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            str(socket_path),
            "--shards",
            "2",
            "--data-dir",
            str(data_dir),
            "--max-seconds",
            "120",  # belt to the CI step's timeout braces
        ],
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    wait_for_socket(socket_path, process)
    return process


def standing_snapshot(client) -> dict:
    return {
        entry["name"]: {
            "value": entry["value"],
            "armed": entry["armed"],
            "alerts_fired": entry["alerts_fired"],
        }
        for entry in client.call("stats")["standing"]
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--appends", type=int, default=20)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        data_dir = pathlib.Path(tmp) / "data"
        socket_path = pathlib.Path(tmp) / "a.sock"
        process = start_server(socket_path, data_dir)
        try:
            with ServeClient.connect_unix(str(socket_path)) as client:
                assert client.call("ping")["durable"] is True
                sequence = homogeneous({"a": 0.6, "b": 0.4}, ROWS, 2)
                client.call(
                    "register_stream", name="tag", sequence=sequence_to_dict(sequence)
                )
                query = accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", "ab"))
                client.call(
                    "register_standing_query",
                    name="saw-ab",
                    stream="tag",
                    query=query_to_dict(query),
                    kind="answer",
                    output=[],
                    threshold=0.9,
                )
                final_length = None
                for _ in range(args.appends):
                    final_length = client.call(
                        "append", stream="tag", transition=ROWS
                    )["length"]
                expected = standing_snapshot(client)
                print(
                    f"smoke: {args.appends} appends acknowledged "
                    f"(length {final_length}), killing -9"
                )

            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

        socket_path = pathlib.Path(tmp) / "b.sock"
        process = start_server(socket_path, data_dir)
        try:
            with ServeClient.connect_unix(str(socket_path)) as client:
                stats = client.call("stats")
                recovered = stats["recovered"]
                assert recovered["streams"] == 1, recovered
                assert recovered["standing_queries"] == 1, recovered
                assert standing_snapshot(client) == expected, (
                    standing_snapshot(client),
                    expected,
                )
                grown = client.call("append", stream="tag", transition=ROWS)
                assert grown["length"] == final_length + 1, grown
                print(
                    f"smoke: recovered bit-identical at LSN "
                    f"{recovered['last_lsn']} "
                    f"({recovered['truncated_bytes']} torn bytes truncated)"
                )
                client.call("shutdown")
            code = process.wait(timeout=30)
            assert code == 0, f"server exited with {code}"
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

        verify = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "store",
                "recover",
                str(data_dir),
                "--verify",
            ],
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        sys.stdout.write(verify.stdout)
        sys.stderr.write(verify.stderr)
        assert verify.returncode == 0, "store recover --verify failed"
        print("smoke: PASS")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
