"""CI smoke test: a real ``repro serve`` process, end to end.

Starts the service as a subprocess on a unix socket (the way an
operator would), drives one full standing-query session through the
blocking client — register a stream, attach a threshold watch,
subscribe, append until the alert fires — then asks the server to shut
down and checks the drain is clean. Exits non-zero on any step failing;
the calling CI step wraps the whole thing in a hard ``timeout`` so a
hung event loop cannot wedge the pipeline.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--max-appends N]
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import tempfile
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.automata.regex import regex_to_dfa  # noqa: E402
from repro.io.json_format import query_to_dict, sequence_to_dict  # noqa: E402
from repro.markov.builders import homogeneous  # noqa: E402
from repro.serve import ServeClient  # noqa: E402
from repro.transducers.library import accept_filter  # noqa: E402

ROWS = {"a": {"a": 0.7, "b": 0.3}, "b": {"a": 0.4, "b": 0.6}}


def wait_for_socket(path: pathlib.Path, process, deadline_s: float = 20.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if process.poll() is not None:
            raise SystemExit(f"server exited early with code {process.returncode}")
        if path.exists():
            try:
                ServeClient.connect_unix(str(path), timeout=2.0).close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    raise SystemExit(f"server socket {path} did not come up in {deadline_s}s")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-appends", type=int, default=50)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        socket_path = pathlib.Path(tmp) / "smoke.sock"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--socket",
                str(socket_path),
                "--shards",
                "2",
                "--max-seconds",
                "120",  # belt to the CI step's timeout braces
            ],
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        try:
            wait_for_socket(socket_path, process)
            with ServeClient.connect_unix(str(socket_path)) as client:
                ping = client.call("ping")
                assert ping["protocol"] == "repro-serve/1", ping
                print(f"smoke: connected ({ping})")

                sequence = homogeneous({"a": 0.6, "b": 0.4}, ROWS, 2)
                client.call(
                    "register_stream", name="tag", sequence=sequence_to_dict(sequence)
                )
                query = accept_filter(regex_to_dfa("(a|b)*ab(a|b)*", "ab"))
                client.call(
                    "register_standing_query",
                    name="saw-ab",
                    stream="tag",
                    query=query_to_dict(query),
                    kind="answer",
                    output=[],
                    threshold=0.9,
                )
                client.call("subscribe", standing="saw-ab")

                fired_at = None
                for i in range(1, args.max_appends + 1):
                    result = client.call("append", stream="tag", transition=ROWS)
                    if result["alerts"]:
                        fired_at = i
                        break
                assert fired_at is not None, (
                    f"no alert within {args.max_appends} appends"
                )
                event = client.next_event(timeout=10)
                assert event and event["event"] == "alert", event
                assert event["data"]["standing"] == "saw-ab", event
                print(
                    f"smoke: alert fired on append #{fired_at} "
                    f"(value={event['data']['value']})"
                )

                stats = client.call("stats")
                assert stats["database"]["plan_cache"]["misses"] == 1, stats
                assert stats["alerts_fired"] == 1, stats

                client.call("shutdown")
                farewell = client.next_event(timeout=10)
                assert farewell and farewell["event"] == "shutdown", farewell
                print("smoke: graceful drain observed")

            code = process.wait(timeout=30)
            assert code == 0, f"server exited with {code}"
            print("smoke: PASS")
            return 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
