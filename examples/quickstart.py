"""Quickstart: query the paper's running example end to end.

Run:  python examples/quickstart.py

Builds the hospital Markov sequence of Figure 1, the room-change
transducer of Figure 2, and evaluates it three ways: unranked (Theorem
4.1), ranked by the E_max heuristic (Theorem 4.3), and top-k.
"""

from __future__ import annotations

from repro import evaluate, hospital_sequence, room_change_transducer, top_k


def main() -> None:
    mu = hospital_sequence()
    query = room_change_transducer()

    print("=== All answers (unranked, Theorem 4.1) ===")
    for answer in evaluate(mu, query, order="unranked"):
        print(f"  {answer.rendered():<8} confidence = {float(answer.confidence):.6f}")

    print()
    print("=== Ranked by E_max (Theorem 4.3) ===")
    for answer in evaluate(mu, query, order="emax"):
        print(
            f"  {answer.rendered():<8} E_max = {float(answer.score):.6f}   "
            f"confidence = {float(answer.confidence):.6f}"
        )

    print()
    print("=== Top-2 ===")
    for answer in top_k(mu, query, 2):
        print(f"  {answer.rendered():<8} confidence = {float(answer.confidence):.6f}")

    print()
    print("The top answer is the room trace '12' with confidence 0.4038,")
    print("exactly as computed in Example 3.4 of the paper.")


if __name__ == "__main__":
    main()
