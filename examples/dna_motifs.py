"""Motif occurrence queries over a probabilistic DNA sequence.

Run:  python examples/dna_motifs.py

The paper lists biological sequence matching among the HMM applications
producing Markov sequences. Here a noisy sequencing read is modeled as a
Markov sequence over {A, C, G, T} (each base call has error probability
shared with its confusion partner), and we ask for occurrences of the
TATA-box-style motif ``TATA`` three ways:

* per-position event probabilities ("does a motif end here?") — the
  Lahar-legacy Boolean query of Section 6;
* the top motif occurrences in exactly decreasing confidence, via the
  indexed s-projector machinery (Theorem 5.7);
* all occurrences with confidence above a threshold (an exact cut-off of
  the same enumeration).
"""

from __future__ import annotations

from repro.markov.sequence import MarkovSequence
from repro.automata.operations import sigma_star
from repro.automata.regex import regex_to_dfa
from repro.transducers.sprojector import IndexedSProjector
from repro.enumeration.indexed_ranked import enumerate_indexed_ranked
from repro.enumeration.threshold import indexed_answers_above
from repro.lahar.monitor import occurrence_profile
from repro.automata.regex import regex_to_nfa

BASES = ("A", "C", "G", "T")

#: A "called" read with per-position uncertainty: the sequencer's best
#: call plus its most likely confusion (transversions T<->A, C<->G).
READ = "GCTATAAAGGCTTATAC"
CONFUSION = {"A": "T", "T": "A", "C": "G", "G": "C"}
CALL_ACCURACY = 0.85


def read_to_sequence(read: str) -> MarkovSequence:
    """Independent per-position base-call uncertainty as a Markov sequence."""

    def call_distribution(base: str) -> dict[str, float]:
        return {base: CALL_ACCURACY, CONFUSION[base]: 1.0 - CALL_ACCURACY}

    initial = call_distribution(read[0])
    steps = [
        {prev: call_distribution(base) for prev in BASES}
        for base in read[1:]
    ]
    return MarkovSequence(BASES, initial, steps)


def main() -> None:
    mu = read_to_sequence(READ)
    print(f"Read ({len(READ)} bases): {READ}")
    print(f"Per-base call accuracy: {CALL_ACCURACY}")
    print()

    motif = regex_to_nfa("TATA", BASES)
    profile = occurrence_profile(mu, motif)
    print("Pr(a TATA motif ends at position i):")
    for i, prob in enumerate(profile, start=1):
        bar = "#" * int(prob * 40)
        print(f"  {i:>3}  {prob:6.4f}  {bar}")
    print()

    projector = IndexedSProjector(
        sigma_star(BASES), regex_to_dfa("TATA", BASES), sigma_star(BASES)
    )
    print("Top-5 motif occurrences (exactly decreasing confidence, Thm 5.7):")
    for count, (confidence, (motif_str, position)) in enumerate(
        enumerate_indexed_ranked(mu, projector)
    ):
        print(f"  {''.join(motif_str)} at position {position:<3} conf = {confidence:.4f}")
        if count == 4:
            break
    print()

    theta = 0.25
    print(f"All occurrences with confidence >= {theta}:")
    for confidence, (motif_str, position) in indexed_answers_above(mu, projector, theta):
        print(f"  {''.join(motif_str)} at position {position:<3} conf = {confidence:.4f}")


if __name__ == "__main__":
    main()
