"""Data extraction with s-projectors over uncertain text (Example 5.1).

Run:  python examples/text_extraction.py

The paper's Example 5.1: over handwritten-form data (modeled as a Markov
sequence of characters produced by an OCR-style noisy model), the
s-projector  [.*N:] [a-z]+ [#.*]  extracts the name following the "N:"
marker. We build a character-level Markov sequence with OCR-like
ambiguity and run:

* the indexed s-projector in *exactly* decreasing confidence
  (Theorem 5.7) — each answer is (name, position);
* the plain s-projector in decreasing I_max (Theorem 5.2), an
  n-approximation of decreasing confidence, with exact confidences
  attached (Theorem 5.5).
"""

from __future__ import annotations

from repro.automata.regex import regex_to_dfa
from repro.markov.sequence import MarkovSequence
from repro.transducers.sprojector import SProjector
from repro.enumeration.indexed_ranked import enumerate_indexed_ranked
from repro.enumeration.sprojector_ranked import enumerate_sprojector_imax

ALPHABET = tuple("N:abo#")  # marker chars, letters, and a terminator


def ocr_sequence() -> MarkovSequence:
    """A noisy reading of the form text 'N:ab#' (or was it 'N:ao#'...?).

    Each position has OCR-style confusion: 'b' and 'o' look alike, and
    the name may be 2 or 3 letters long.
    """
    certain = lambda c: {c: 1.0}  # noqa: E731 - tiny local helper
    initial = certain("N")
    steps = [
        # position 2: the ':' marker, read reliably.
        {c: certain(":") for c in ALPHABET},
        # position 3: first letter, clearly an 'a'.
        {c: certain("a") for c in ALPHABET},
        # position 4: second letter, 'b' vs 'o' confusion.
        {c: {"b": 0.6, "o": 0.4} for c in ALPHABET},
        # position 5: either another letter or the terminator.
        {c: {"#": 0.7, "a": 0.3} for c in ALPHABET},
        # position 6: terminator (if not already terminated, stay noisy).
        {c: ({"#": 1.0} if c != "#" else certain("#")) for c in ALPHABET},
    ]
    return MarkovSequence(ALPHABET, initial, steps)


def main() -> None:
    mu = ocr_sequence()
    prefix = regex_to_dfa(".*N:", ALPHABET)
    pattern = regex_to_dfa("[abo]+", ALPHABET)
    suffix = regex_to_dfa("#.*", ALPHABET)
    projector = SProjector(prefix, pattern, suffix)

    print("Indexed answers in exactly decreasing confidence (Theorem 5.7):")
    for confidence, (name, index) in enumerate_indexed_ranked(mu, projector.indexed()):
        print(f"  name={''.join(name):<4} at position {index}   conf = {confidence:.4f}")

    print()
    print("Names (deduplicated) in decreasing I_max (Theorem 5.2),")
    print("with exact confidence from Theorem 5.5:")
    for imax, name, confidence in enumerate_sprojector_imax(
        mu, projector, with_confidence=True
    ):
        print(f"  {''.join(name):<4} I_max = {imax:.4f}   conf = {confidence:.4f}")


if __name__ == "__main__":
    main()
