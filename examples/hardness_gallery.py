"""A gallery of the paper's lower-bound phenomena, executed.

Run:  python examples/hardness_gallery.py

Walks through the negative results of Sections 4-5 on concrete instances:

1. Theorem 4.4: a one-state Mealy machine where the E_max heuristic's top
   answer is exponentially worse (in confidence) than the true top;
2. Theorem 4.5: the same with a fixed 1-state projector over 4 symbols;
3. Section 4.2: amplification by concatenating independent copies;
4. Proposition 4.7 / Theorem 4.9: #2-DNF model counts recovered exactly
   from a confidence computation (why confidence is #P-hard);
5. Theorem 5.3's regime: the conf/I_max gap of s-projectors growing with
   the sequence length.
"""

from __future__ import annotations

from repro.confidence.sprojector import confidence_sprojector
from repro.confidence.uniform_subset import confidence_uniform
from repro.enumeration.emax import top_answer_emax
from repro.enumeration.sprojector_ranked import top_answer_imax
from repro.hardness.counting import (
    count_dnf_models,
    exact_count_via_confidence,
    two_dnf_counting_instance,
)
from repro.hardness.gap_instances import (
    amplified_gap_instance,
    mealy_gap_instance,
    projector_gap_instance,
)
from repro.hardness.independent_set import occurrence_gap_instance


def main() -> None:
    print("1. Theorem 4.4 — one-state Mealy machine, exponential E_max gap")
    for n in (5, 10, 15, 20):
        instance = mealy_gap_instance(n)
        _score, pick = top_answer_emax(instance.sequence, instance.query)
        assert pick == instance.emax_top_answer
        print(
            f"   n={n:>2}  conf(true top)={float(instance.best_confidence):9.3e}  "
            f"conf(heuristic pick)={float(instance.emax_top_confidence):9.3e}  "
            f"ratio={float(instance.ratio):10.1f}"
        )

    print()
    print("2. Theorem 4.5 — fixed 1-state projector over {a,b,c,d}")
    for n in (5, 10, 15):
        instance = projector_gap_instance(n)
        print(
            f"   n={n:>2}  ratio conf(top)/conf(pick) = {float(instance.ratio):10.1f}"
        )

    print()
    print("3. Section 4.2 — amplification by independent concatenation")
    base = mealy_gap_instance(3)
    for copies in (1, 2, 3):
        amplified = amplified_gap_instance(base, copies)
        print(
            f"   copies={copies}  n={amplified.sequence.length:>2}  "
            f"ratio={float(amplified.ratio):10.2f}  (= base^{copies})"
        )

    print()
    print("4. Prop 4.7 / Thm 4.9 — counting 2-DNF models via confidence")
    clauses = [(1, 1), (2, 2), (1, 2), (3, 1)]
    instance = two_dnf_counting_instance(clauses, 3, 2)
    confidence = confidence_uniform(
        instance.sequence, instance.transducer, instance.answer
    )
    recovered = exact_count_via_confidence(instance, confidence)
    print(f"   formula: {' v '.join(f'(x{i} & y{j})' for i, j in clauses)}")
    print(f"   conf(1^n) = {confidence} over the uniform sequence")
    print(
        f"   recovered model count = {recovered}   "
        f"(brute force: {count_dnf_models(clauses, 3, 2)})"
    )

    print()
    print("5. Theorem 5.3 regime — s-projector conf/I_max gap grows with n")
    for n in (5, 10, 20, 40):
        instance = occurrence_gap_instance(n)
        imax, answer = top_answer_imax(instance.sequence, instance.projector)
        conf = confidence_sprojector(
            instance.sequence, instance.projector, instance.answer
        )
        print(
            f"   n={n:>2}  I_max={float(imax):8.5f}  conf={float(conf):8.5f}  "
            f"ratio={float(conf / imax):6.2f}  (guarantee: {n})"
        )


if __name__ == "__main__":
    main()
