"""RFID pipeline: noisy sensor readings → HMM smoothing → transducer query.

Run:  python examples/rfid_smoothing.py

This is the paper's end-to-end scenario (Section 1 / Example 3.1): raw
antenna sightings are uncertain, an HMM infers the location sequence, the
posterior is a Markov sequence, and a transducer extracts the sequence of
*places* visited. Everything here is synthetic but exercises exactly the
code path a Lahar-style deployment would.
"""

from __future__ import annotations

import random

from repro import HMM, evaluate
from repro.automata.nfa import NFA
from repro.transducers.transducer import Transducer

LOCATIONS = ("r1", "r2", "hall", "lab")
SENSORS = ("s1", "s2", "s3", "s4")


def build_hmm() -> HMM:
    """Movement model + noisy sensing model for one tracked cart."""
    stay = 0.65
    move = (1 - stay) / (len(LOCATIONS) - 1)
    transition = {
        loc: {other: (stay if other == loc else move) for other in LOCATIONS}
        for loc in LOCATIONS
    }
    # Each location is covered by one sensor, but adjacent sensors
    # occasionally pick up the signal (the ambiguity of Example 3.1).
    emission = {
        "r1": {"s1": 0.8, "s2": 0.1, "s3": 0.1},
        "r2": {"s2": 0.8, "s1": 0.1, "s3": 0.1},
        "hall": {"s3": 0.7, "s1": 0.1, "s2": 0.1, "s4": 0.1},
        "lab": {"s4": 0.9, "s3": 0.1},
    }
    initial = {"hall": 1.0}
    return HMM(initial=initial, transition=transition, emission=emission)


def place_change_transducer() -> Transducer:
    """Emit a place symbol each time the cart enters a different place."""
    states = set(LOCATIONS) | {"start"}
    delta = {}
    omega = {}
    for state in states:
        for symbol in LOCATIONS:
            delta[(state, symbol)] = {symbol}
            if state != symbol:
                omega[(state, symbol, symbol)] = (symbol,)
    nfa = NFA(LOCATIONS, states, "start", set(LOCATIONS), delta)
    return Transducer(nfa, omega)


def main() -> None:
    rng = random.Random(2010)
    hmm = build_hmm()

    true_path, readings = hmm.sample(8, rng)
    print("True (hidden) path:   ", " ".join(true_path))
    print("Sensor readings:      ", " ".join(readings))
    print()

    mu = hmm.to_markov_sequence(readings)
    print(f"Smoothed into a Markov sequence of length {mu.length} over {len(mu.symbols)} locations.")
    print("Posterior marginals (most likely location per time step):")
    for i, marginal in enumerate(mu.marginals(), start=1):
        best = max(marginal, key=marginal.get)
        print(f"  t={i}: {best:<5} ({marginal[best]:.3f})")
    print()

    query = place_change_transducer()
    print("Top-5 place-change traces (ranked by E_max, with exact confidence):")
    for answer in evaluate(mu, query, order="emax", limit=5):
        trace = " → ".join(answer.output) if answer.output else "(no movement)"
        print(f"  {trace:<30} confidence = {answer.confidence:.4f}")

    viterbi_path, _ = hmm.viterbi(readings)
    print()
    print("Viterbi decode for comparison:", " ".join(viterbi_path))


if __name__ == "__main__":
    main()
