"""The full running example: Figures 1-2 and Table 1, regenerated.

Run:  python examples/hospital_rfid.py [--dot DIR]

Prints the reconstructed Table 1 (world probabilities and transduced
outputs, exact rationals), verifies conf(12) = 0.4038, and optionally
writes DOT renderings of Figure 1 (the Markov sequence) and Figure 2 (the
transducer) for graphviz.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.examples_data.hospital import (
    CONF_12,
    TABLE_1_ROWS,
    hospital_sequence,
    room_change_transducer,
)
from repro.confidence.deterministic import confidence_deterministic
from repro.semiring import VITERBI
from repro.viz.dot import sequence_to_dot, transducer_to_dot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dot", type=pathlib.Path, help="directory for DOT output")
    args = parser.parse_args()

    mu = hospital_sequence()
    query = room_change_transducer()

    print("Table 1: random strings and their output")
    print(f"  {'string':<6} {'value':<28} {'probability':>12}   output")
    for name, world, probability, output in TABLE_1_ROWS:
        shown = output if output is not None else "N/A"
        print(
            f"  {name:<6} {' '.join(world):<28} {float(probability):>12.6f}   {shown}"
        )
    print()
    print("  (string w is outside the support in this reconstruction; see")
    print("   repro/examples_data/hospital.py for why the published row is")
    print("   inconsistent with conf(12) = 0.4038.)")
    print()

    conf12 = confidence_deterministic(mu, query, ("1", "2"))
    emax12 = confidence_deterministic(mu, query, ("1", "2"), semiring=VITERBI)
    print(f"conf(12)  = {conf12} = {float(conf12)}   (paper: {CONF_12})")
    print(f"E_max(12) = {emax12} = {float(emax12)}   (paper, Example 4.2: 0.3969)")
    assert conf12 == CONF_12

    if args.dot:
        args.dot.mkdir(parents=True, exist_ok=True)
        figure1 = args.dot / "figure1_markov_sequence.dot"
        figure2 = args.dot / "figure2_transducer.dot"
        figure1.write_text(sequence_to_dot(mu.as_float(), "figure1"))
        figure2.write_text(transducer_to_dot(query, "figure2"))
        print(f"\nWrote {figure1} and {figure2} (render with `dot -Tpng`).")


if __name__ == "__main__":
    main()
