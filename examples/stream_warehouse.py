"""A Lahar-style warehouse of Markov streams (Sections 1 and 6).

Run:  python examples/stream_warehouse.py

Registers several tracked objects (synthetic hospital carts), a reusable
room-trace query, and runs per-stream and cross-stream top-k — the
query-processing setting the paper aims to strengthen with transducers.
"""

from __future__ import annotations

import random

from repro import MarkovStreamDatabase
from repro.examples_data.hospital import hospital_sequence, room_change_transducer
from repro.markov.builders import hospital_model


def main() -> None:
    rng = random.Random(7)
    db = MarkovStreamDatabase()

    db.register_stream("crash-cart-17", hospital_sequence())
    for k in (23, 31, 42):
        db.register_stream(f"crash-cart-{k}", hospital_model(2, 5, rng))
    db.register_query("room-trace", room_change_transducer())

    print("Streams:", ", ".join(db.streams()))
    print()

    print("Per-stream top-2 room traces:")
    for stream in db.streams():
        answers = db.top_k(stream, "room-trace", 2)
        rendered = ", ".join(
            f"{a.rendered()} ({float(a.confidence):.3f})" for a in answers
        )
        print(f"  {stream:<15} {rendered if rendered else '(no answers)'}")

    print()
    print("Global top-5 across all carts (merged by score):")
    for item in db.top_k_across("room-trace", 5):
        answer = item.answer
        print(
            f"  {item.stream:<15} {answer.rendered():<8} "
            f"score = {float(answer.score):.4f}"
        )


if __name__ == "__main__":
    main()
