"""A small Lahar-style Markov-stream database (Sections 1 and 6)."""

from repro.lahar.database import MarkovStreamDatabase, StreamAnswer
from repro.runtime.incremental import StreamingEvaluator
from repro.lahar.monitor import (
    occurrence_profile,
    prefix_acceptance_profile,
    unanchored_match_dfa,
)

__all__ = [
    "MarkovStreamDatabase",
    "StreamAnswer",
    "StreamingEvaluator",
    "prefix_acceptance_profile",
    "occurrence_profile",
    "unanchored_match_dfa",
]
