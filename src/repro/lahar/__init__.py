"""A small Lahar-style Markov-stream database (Sections 1 and 6)."""

from repro.lahar.database import MarkovStreamDatabase, StreamAnswer
from repro.lahar.monitor import (
    occurrence_profile,
    prefix_acceptance_profile,
    unanchored_match_dfa,
)

__all__ = [
    "MarkovStreamDatabase",
    "StreamAnswer",
    "prefix_acceptance_profile",
    "occurrence_profile",
    "unanchored_match_dfa",
]
