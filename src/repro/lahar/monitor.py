"""Lahar-legacy Boolean event queries (Section 6, related work).

Before this paper, Lahar's queries were "essentially linear DFAs ...
Boolean, and at each time period [the query] returns the probability that
it is evaluated to true". This module implements that query class over
our Markov sequences, so the stream database supports both the legacy
per-timestep probability profiles and the paper's transducer answers:

* :func:`prefix_acceptance_profile` — ``Pr(S[1..i] in L(A))`` per ``i``
  (the event "the pattern has happened by time i" for monotone patterns);
* :func:`occurrence_profile` — ``Pr(some window ending at i matches A)``,
  the standard "event fires at time i" semantics, via a product with the
  unanchored-match automaton.
* :class:`StreamingMonitor` — the *incremental* form of the above: it
  keeps the forward layer of the product DP so a growing stream pays one
  DP layer per appended timestep instead of a from-scratch profile
  re-run. This is what the service's standing occurrence queries run on.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from repro.markov.sequence import MarkovSequence, Number
from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import AlphabetMismatchError, ReproError

Symbol = Hashable


def query_pattern(query) -> NFA:
    """The regular pattern a monitor standing query watches.

    S-projectors watch their pattern component; transducers watch their
    underlying automaton. Shared by the service's standing-query
    registration and the store's recovery replay, which must build the
    exact same unanchored-match DFA.
    """
    from repro.transducers.sprojector import SProjector
    from repro.transducers.transducer import Transducer

    if isinstance(query, SProjector):
        return query.pattern.to_nfa()
    if isinstance(query, Transducer):
        return query.nfa
    raise ReproError("monitor standing queries need a transducer or s-projector")


def _check(sequence: MarkovSequence, automaton: DFA | NFA) -> None:
    if automaton.alphabet != sequence.alphabet:
        raise AlphabetMismatchError(
            "event automaton alphabet does not match the stream alphabet"
        )


def prefix_acceptance_profile(sequence: MarkovSequence, dfa: DFA) -> list[Number]:
    """``profile[i-1] = Pr(S[1..i] in L(dfa))`` for ``i = 1..n``.

    One forward pass over the layered product; the profile is what a
    Lahar-style dashboard plots per timestep.
    """
    _check(sequence, dfa)
    profile: list[Number] = []
    layer: dict[tuple[Symbol, object], Number] = {}
    for symbol, prob in sequence.initial_support():
        key = (symbol, dfa.step(dfa.initial, symbol))
        layer[key] = layer.get(key, 0) + prob
    profile.append(
        sum(mass for (_s, state), mass in layer.items() if state in dfa.accepting)
    )
    for i in range(1, sequence.length):
        nxt: dict[tuple[Symbol, object], Number] = {}
        for (symbol, state), mass in layer.items():
            for target, prob in sequence.successors(i, symbol):
                key = (target, dfa.step(state, target))
                nxt[key] = nxt.get(key, 0) + mass * prob
        layer = nxt
        profile.append(
            sum(mass for (_s, state), mass in layer.items() if state in dfa.accepting)
        )
    return profile


def unanchored_match_dfa(pattern: NFA | DFA) -> DFA:
    """DFA for ``Sigma* . L(pattern)`` — "some suffix of the prefix matches".

    The classic unanchored-pattern construction: add a self-looping guess
    of the match start, then determinize.
    """
    base = pattern.to_nfa() if isinstance(pattern, DFA) else pattern
    base = base.renamed("m")
    fresh = "m_start"
    delta: dict[tuple, set] = {
        key: set(targets) for key, targets in base.delta_dict().items()
    }
    for symbol in base.alphabet:
        targets = set(base.successors(base.initial, symbol))
        targets.add(fresh)  # keep guessing a later start
        delta.setdefault((fresh, symbol), set()).update(targets)
    accepting = set(base.accepting)
    if base.initial in base.accepting:
        accepting.add(fresh)
    nfa = NFA(
        base.alphabet, set(base.states) | {fresh}, fresh, accepting, delta
    )
    return determinize(nfa)


def occurrence_profile(sequence: MarkovSequence, pattern: NFA | DFA) -> list[Number]:
    """``profile[i-1] = Pr(some substring of S[1..i] ending at i matches)``.

    The Lahar "event fires at time i" semantics for a regular pattern.
    """
    _check(sequence, pattern)
    return prefix_acceptance_profile(sequence, unanchored_match_dfa(pattern))


class StreamingMonitor:
    """An incrementally maintained per-timestep acceptance probability.

    Maintains the forward layer of the (stream x DFA) product DP that
    :func:`prefix_acceptance_profile` sweeps, so ``Pr(S[1..i] in L(dfa))``
    is available at every timestep of a *growing* stream for one DP
    layer per append — exactly equal (bit-for-bit over ``Fraction``
    inputs) to re-running the profile from scratch.

    ``StreamingMonitor.occurrence(sequence, pattern)`` builds the monitor
    over the unanchored-match DFA, giving the Lahar "event fires at time
    i" value that the service's standing occurrence queries watch.
    """

    def __init__(self, sequence: MarkovSequence, dfa: DFA) -> None:
        _check(sequence, dfa)
        self._dfa = dfa
        self._length = sequence.length
        layer: dict[tuple[Symbol, object], Number] = {}
        for symbol, prob in sequence.initial_support():
            key = (symbol, dfa.step(dfa.initial, symbol))
            layer[key] = layer.get(key, 0) + prob
        for i in range(1, sequence.length):
            layer = self._push(layer, dict(sequence.transition_rows(i)))
        self._layer = layer

    @classmethod
    def occurrence(
        cls, sequence: MarkovSequence, pattern: NFA | DFA
    ) -> "StreamingMonitor":
        """A monitor of ``Pr(some substring ending at i matches pattern)``."""
        _check(sequence, pattern)
        return cls(sequence, unanchored_match_dfa(pattern))

    @classmethod
    def restore(
        cls, dfa: DFA, layer: Mapping[tuple[Symbol, object], Number], length: int
    ) -> "StreamingMonitor":
        """Rebuild a monitor from a persisted product-DP layer.

        The restart path of :mod:`repro.store`: ``layer`` must be the
        :attr:`layer` of a monitor over the same DFA at timestep
        ``length``; no DP is re-run.
        """
        self = object.__new__(cls)
        self._dfa = dfa
        self._layer = dict(layer)
        self._length = length
        return self

    def _push(
        self,
        layer: Mapping[tuple[Symbol, object], Number],
        rows: Mapping[Symbol, Mapping[Symbol, Number]],
    ) -> dict[tuple[Symbol, object], Number]:
        dfa = self._dfa
        nxt: dict[tuple[Symbol, object], Number] = {}
        for (symbol, state), mass in layer.items():
            for target, prob in rows.get(symbol, {}).items():
                if prob == 0:
                    continue
                key = (target, dfa.step(state, target))
                nxt[key] = nxt.get(key, 0) + mass * prob
        return nxt

    def append(self, transition: Mapping[Symbol, Mapping[Symbol, Number]]) -> Number:
        """Absorb one timestep; returns the new acceptance probability.

        ``transition`` has the same shape as the database append payload
        (source symbol -> successor distribution). Callers are expected
        to have validated it (the database append does); the monitor
        only reads the rows it needs, so the push itself cannot fail
        half-way.
        """
        self._layer = self._push(self._layer, transition)
        self._length += 1
        return self.value

    @property
    def value(self) -> Number:
        """``Pr(S[1..n] in L(dfa))`` for the stream absorbed so far."""
        accepting = self._dfa.accepting
        return sum(
            mass for (_s, state), mass in self._layer.items() if state in accepting
        )

    @property
    def length(self) -> int:
        """Timesteps absorbed so far."""
        return self._length

    @property
    def layer(self) -> dict[tuple[Symbol, object], Number]:
        """A copy of the live product-DP layer (what snapshots persist)."""
        return dict(self._layer)

    @property
    def dfa(self) -> DFA:
        """The monitored DFA."""
        return self._dfa

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamingMonitor(n={self._length}, layer={len(self._layer)})"
