"""Lahar-legacy Boolean event queries (Section 6, related work).

Before this paper, Lahar's queries were "essentially linear DFAs ...
Boolean, and at each time period [the query] returns the probability that
it is evaluated to true". This module implements that query class over
our Markov sequences, so the stream database supports both the legacy
per-timestep probability profiles and the paper's transducer answers:

* :func:`prefix_acceptance_profile` — ``Pr(S[1..i] in L(A))`` per ``i``
  (the event "the pattern has happened by time i" for monotone patterns);
* :func:`occurrence_profile` — ``Pr(some window ending at i matches A)``,
  the standard "event fires at time i" semantics, via a product with the
  unanchored-match automaton.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.markov.sequence import MarkovSequence, Number
from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import AlphabetMismatchError

Symbol = Hashable


def _check(sequence: MarkovSequence, automaton: DFA | NFA) -> None:
    if automaton.alphabet != sequence.alphabet:
        raise AlphabetMismatchError(
            "event automaton alphabet does not match the stream alphabet"
        )


def prefix_acceptance_profile(sequence: MarkovSequence, dfa: DFA) -> list[Number]:
    """``profile[i-1] = Pr(S[1..i] in L(dfa))`` for ``i = 1..n``.

    One forward pass over the layered product; the profile is what a
    Lahar-style dashboard plots per timestep.
    """
    _check(sequence, dfa)
    profile: list[Number] = []
    layer: dict[tuple[Symbol, object], Number] = {}
    for symbol, prob in sequence.initial_support():
        key = (symbol, dfa.step(dfa.initial, symbol))
        layer[key] = layer.get(key, 0) + prob
    profile.append(
        sum(mass for (_s, state), mass in layer.items() if state in dfa.accepting)
    )
    for i in range(1, sequence.length):
        nxt: dict[tuple[Symbol, object], Number] = {}
        for (symbol, state), mass in layer.items():
            for target, prob in sequence.successors(i, symbol):
                key = (target, dfa.step(state, target))
                nxt[key] = nxt.get(key, 0) + mass * prob
        layer = nxt
        profile.append(
            sum(mass for (_s, state), mass in layer.items() if state in dfa.accepting)
        )
    return profile


def unanchored_match_dfa(pattern: NFA | DFA) -> DFA:
    """DFA for ``Sigma* . L(pattern)`` — "some suffix of the prefix matches".

    The classic unanchored-pattern construction: add a self-looping guess
    of the match start, then determinize.
    """
    base = pattern.to_nfa() if isinstance(pattern, DFA) else pattern
    base = base.renamed("m")
    fresh = "m_start"
    delta: dict[tuple, set] = {
        key: set(targets) for key, targets in base.delta_dict().items()
    }
    for symbol in base.alphabet:
        targets = set(base.successors(base.initial, symbol))
        targets.add(fresh)  # keep guessing a later start
        delta.setdefault((fresh, symbol), set()).update(targets)
    accepting = set(base.accepting)
    if base.initial in base.accepting:
        accepting.add(fresh)
    nfa = NFA(
        base.alphabet, set(base.states) | {fresh}, fresh, accepting, delta
    )
    return determinize(nfa)


def occurrence_profile(sequence: MarkovSequence, pattern: NFA | DFA) -> list[Number]:
    """``profile[i-1] = Pr(some substring of S[1..i] ending at i matches)``.

    The Lahar "event fires at time i" semantics for a regular pattern.
    """
    _check(sequence, pattern)
    return prefix_acceptance_profile(sequence, unanchored_match_dfa(pattern))
