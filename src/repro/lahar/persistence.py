"""Saving and loading a Markov-stream database as a directory of JSON files.

Layout::

    <root>/
      catalog.json            {"streams": [...], "queries": [...]}
      streams/<name>.json     one repro.io sequence document each
      queries/<name>.json     one repro.io query document each

Names are sanitized to filesystem-safe slugs; the catalog preserves the
original names.

Saving is crash-safe: every document lands via a temp file and an
atomic ``os.replace`` (a reader never observes a torn JSON file), and
``catalog.json`` — the commit point :func:`load_database` trusts — is
replaced *last*, after every document it references is durably in
place. A crash mid-save leaves the previous catalog intact plus at
worst some ``*.tmp`` litter, which the next save sweeps up.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from repro.errors import ReproError
from repro.io.json_format import read_query, read_sequence, write_query, write_sequence
from repro.lahar.database import MarkovStreamDatabase

_SLUG = re.compile(r"[^A-Za-z0-9_.-]+")


def _slugify(name: str) -> str:
    slug = _SLUG.sub("_", name).strip("_")
    return slug or "item"


def _publish(tmp: Path, final: Path) -> None:
    """Atomically promote a fully-written temp file to its final name."""
    fd = os.open(tmp, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, final)


def _sweep_tmp(directory: Path) -> None:
    for leftover in directory.glob("*.tmp"):
        leftover.unlink()


def save_database(database: MarkovStreamDatabase, root: str | Path) -> None:
    """Write the whole database under ``root`` (created if missing).

    Documents go through temp-file + ``os.replace``; the catalog is
    committed last, so an interrupted save never corrupts a previously
    loadable directory.
    """
    root = Path(root)
    streams_dir = root / "streams"
    queries_dir = root / "queries"
    streams_dir.mkdir(parents=True, exist_ok=True)
    queries_dir.mkdir(parents=True, exist_ok=True)
    _sweep_tmp(root)
    _sweep_tmp(streams_dir)
    _sweep_tmp(queries_dir)

    catalog = {"streams": [], "queries": []}
    used: set[str] = set()

    def unique_slug(name: str) -> str:
        base = _slugify(name)
        slug = base
        counter = 1
        while slug in used:
            counter += 1
            slug = f"{base}_{counter}"
        used.add(slug)
        return slug

    def write_document(writer, item, directory: Path, slug: str) -> None:
        tmp = directory / f"{slug}.json.tmp"
        writer(item, tmp)
        _publish(tmp, directory / f"{slug}.json")

    for name in database.streams():
        slug = unique_slug(name)
        write_document(write_sequence, database.stream(name), streams_dir, slug)
        catalog["streams"].append({"name": name, "file": f"streams/{slug}.json"})
    for name in database.queries():
        slug = unique_slug(name)
        write_document(
            write_query, database._resolve_query(name), queries_dir, slug
        )
        catalog["queries"].append({"name": name, "file": f"queries/{slug}.json"})

    catalog_tmp = root / "catalog.json.tmp"
    catalog_tmp.write_text(json.dumps(catalog, indent=2))
    _publish(catalog_tmp, root / "catalog.json")


def load_database(root: str | Path) -> MarkovStreamDatabase:
    """Load a database saved by :func:`save_database`."""
    root = Path(root)
    catalog_path = root / "catalog.json"
    if not catalog_path.exists():
        raise ReproError(f"no catalog.json under {root}")
    catalog = json.loads(catalog_path.read_text())
    database = MarkovStreamDatabase()
    for entry in catalog.get("streams", []):
        database.register_stream(entry["name"], read_sequence(root / entry["file"]))
    for entry in catalog.get("queries", []):
        database.register_query(entry["name"], read_query(root / entry["file"]))
    return database
