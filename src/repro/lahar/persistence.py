"""Saving and loading a Markov-stream database as a directory of JSON files.

Layout::

    <root>/
      catalog.json            {"streams": [...], "queries": [...]}
      streams/<name>.json     one repro.io sequence document each
      queries/<name>.json     one repro.io query document each

Names are sanitized to filesystem-safe slugs; the catalog preserves the
original names.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.errors import ReproError
from repro.io.json_format import read_query, read_sequence, write_query, write_sequence
from repro.lahar.database import MarkovStreamDatabase

_SLUG = re.compile(r"[^A-Za-z0-9_.-]+")


def _slugify(name: str) -> str:
    slug = _SLUG.sub("_", name).strip("_")
    return slug or "item"


def save_database(database: MarkovStreamDatabase, root: str | Path) -> None:
    """Write the whole database under ``root`` (created if missing)."""
    root = Path(root)
    streams_dir = root / "streams"
    queries_dir = root / "queries"
    streams_dir.mkdir(parents=True, exist_ok=True)
    queries_dir.mkdir(parents=True, exist_ok=True)

    catalog = {"streams": [], "queries": []}
    used: set[str] = set()

    def unique_slug(name: str) -> str:
        base = _slugify(name)
        slug = base
        counter = 1
        while slug in used:
            counter += 1
            slug = f"{base}_{counter}"
        used.add(slug)
        return slug

    for name in database.streams():
        slug = unique_slug(name)
        write_sequence(database.stream(name), streams_dir / f"{slug}.json")
        catalog["streams"].append({"name": name, "file": f"streams/{slug}.json"})
    for name in database.queries():
        slug = unique_slug(name)
        write_query(database._resolve_query(name), queries_dir / f"{slug}.json")
        catalog["queries"].append({"name": name, "file": f"queries/{slug}.json"})

    (root / "catalog.json").write_text(json.dumps(catalog, indent=2))


def load_database(root: str | Path) -> MarkovStreamDatabase:
    """Load a database saved by :func:`save_database`."""
    root = Path(root)
    catalog_path = root / "catalog.json"
    if not catalog_path.exists():
        raise ReproError(f"no catalog.json under {root}")
    catalog = json.loads(catalog_path.read_text())
    database = MarkovStreamDatabase()
    for entry in catalog.get("streams", []):
        database.register_stream(entry["name"], read_sequence(root / entry["file"]))
    for entry in catalog.get("queries", []):
        database.register_query(entry["name"], read_query(root / entry["file"]))
    return database
