"""A Markov-stream database in the spirit of Lahar.

The paper is motivated by Lahar, "a Markov-sequence database that supports
query processing over a collection of Markov sequences", and its stated
goal is to bring transducer queries into such a system. This module is the
system shell: named streams (e.g. one per tracked RFID object), registered
queries, per-stream and cross-stream top-k evaluation — all routed through
the :mod:`repro.core` engine, so each stream/query pair automatically gets
the best algorithm for its class.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.errors import ReproError
from repro.markov.sequence import MarkovSequence
from repro.core.engine import evaluate, top_k
from repro.core.results import Answer, Order


@dataclass(frozen=True)
class StreamAnswer:
    """An answer tagged with the stream that produced it."""

    stream: str
    answer: Answer


class MarkovStreamDatabase:
    """A named collection of Markov sequences with a query interface."""

    def __init__(self) -> None:
        self._streams: dict[str, MarkovSequence] = {}
        self._queries: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------

    def register_stream(self, name: str, sequence: MarkovSequence) -> None:
        """Add (or replace) a stream under ``name``."""
        if not name:
            raise ReproError("stream name must be non-empty")
        self._streams[name] = sequence

    def drop_stream(self, name: str) -> None:
        """Remove a stream; missing names raise."""
        if name not in self._streams:
            raise ReproError(f"unknown stream {name!r}")
        del self._streams[name]

    def register_query(self, name: str, query) -> None:
        """Store a reusable named query (transducer or s-projector)."""
        if not name:
            raise ReproError("query name must be non-empty")
        self._queries[name] = query

    def streams(self) -> list[str]:
        """Registered stream names, sorted."""
        return sorted(self._streams)

    def queries(self) -> list[str]:
        """Registered query names, sorted."""
        return sorted(self._queries)

    def stream(self, name: str) -> MarkovSequence:
        """Look up one stream."""
        try:
            return self._streams[name]
        except KeyError:
            raise ReproError(f"unknown stream {name!r}") from None

    def _resolve_query(self, query):
        if isinstance(query, str):
            try:
                return self._queries[query]
            except KeyError:
                raise ReproError(f"unknown query {query!r}") from None
        return query

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def query(
        self,
        stream: str,
        query,
        order: Order | str = Order.UNRANKED,
        limit: int | None = None,
        with_confidence: bool = True,
        allow_exponential: bool = False,
    ) -> Iterator[Answer]:
        """Evaluate a query (object or registered name) over one stream."""
        sequence = self.stream(stream)
        return evaluate(
            sequence,
            self._resolve_query(query),
            order=order,
            with_confidence=with_confidence,
            limit=limit,
            allow_exponential=allow_exponential,
        )

    def top_k(self, stream: str, query, k: int) -> list[Answer]:
        """Top-k answers of one stream under the class's best ranked order."""
        return top_k(self.stream(stream), self._resolve_query(query), k)

    def top_k_across(
        self, query, k: int, streams: Iterable[str] | None = None
    ) -> list[StreamAnswer]:
        """Globally best ``k`` answers across streams, merged by score.

        Runs the per-stream ranked enumeration lazily k answers deep on
        each stream, then merges — the standard top-k-over-partitions
        pattern of stream warehouses.
        """
        names = list(streams) if streams is not None else self.streams()
        candidates: list[StreamAnswer] = []
        resolved = self._resolve_query(query)
        for name in names:
            for answer in top_k(self.stream(name), resolved, k):
                candidates.append(StreamAnswer(name, answer))
        candidates.sort(
            key=lambda item: (
                -(item.answer.score if item.answer.score is not None else 0),
                item.stream,
            )
        )
        return candidates[:k]
