"""A Markov-stream database in the spirit of Lahar.

The paper is motivated by Lahar, "a Markov-sequence database that supports
query processing over a collection of Markov sequences", and its stated
goal is to bring transducer queries into such a system. This module is the
system shell: named streams (e.g. one per tracked RFID object), registered
queries, per-stream and cross-stream top-k evaluation — all routed through
the :mod:`repro.runtime` planner/executor, so each stream/query pair
automatically gets the best algorithm for its class and pays planning
(classification, minimization, s-projector compilation) once per query
shape.

Streams are *append-only live objects*: :meth:`MarkovStreamDatabase.append`
grows a stream by one timestep, and any
:class:`~repro.runtime.incremental.StreamingEvaluator` attached to it
absorbs the timestep as a single DP layer instead of a from-scratch
re-run. Plans whose compiled transducer is deterministic get such an
evaluator automatically on first read, so repeated and append-heavy read
workloads run off the cached frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.markov.sequence import MarkovSequence, Number
from repro.core.results import Answer, Order
from repro.runtime.cache import PlanCache
from repro.runtime.executor import batch_top_k, run_evaluate, run_top_k
from repro.runtime.incremental import StreamingEvaluator
from repro.runtime.plan import QueryPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel -> runtime)
    from repro.parallel import WorkerPool

Symbol = Hashable


@dataclass(frozen=True)
class StreamAnswer:
    """An answer tagged with the stream that produced it."""

    stream: str
    answer: Answer


class MarkovStreamDatabase:
    """A named collection of Markov sequences with a query interface.

    Parameters
    ----------
    plan_cache:
        The :class:`PlanCache` all reads go through; a private cache is
        created when None (pass a shared one to pool plans across
        databases).
    store:
        An optional :class:`repro.store.Store` journal. When attached,
        every catalog mutation and append writes one WAL record *before*
        the in-memory commit, so anything this database acknowledged is
        recoverable from disk.
    """

    def __init__(
        self, plan_cache: PlanCache | None = None, store=None
    ) -> None:
        self._streams: dict[str, MarkovSequence] = {}
        self._queries: dict[str, object] = {}
        self._plans = plan_cache if plan_cache is not None else PlanCache()
        self._evaluators: dict[tuple[str, str], StreamingEvaluator] = {}
        self._store = store

    def attach_store(self, store) -> None:
        """Journal all future mutations through ``store`` (None detaches).

        Recovery seeds a database with the store detached (replayed
        records must not be re-journaled), then attaches it before the
        first live write.
        """
        self._store = store

    @property
    def store(self):
        """The attached journal, or None."""
        return self._store

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------

    def register_stream(self, name: str, sequence: MarkovSequence) -> None:
        """Add (or replace) a stream under ``name``.

        With a store attached the creation is journaled first: a
        registration the caller saw succeed is on disk.
        """
        if not name:
            raise ReproError("stream name must be non-empty")
        if self._store is not None:
            self._store.log_stream_created(name, sequence)
        self._streams[name] = sequence
        self._drop_evaluators(name)

    def drop_stream(self, name: str) -> None:
        """Remove a stream; missing names raise."""
        if name not in self._streams:
            raise ReproError(f"unknown stream {name!r}")
        if self._store is not None:
            self._store.log_stream_dropped(name)
        del self._streams[name]
        self._drop_evaluators(name)

    def register_query(self, name: str, query) -> None:
        """Store a reusable named query (transducer or s-projector)."""
        if not name:
            raise ReproError("query name must be non-empty")
        query = self._canonical_query(query)
        if self._store is not None:
            self._store.log_query_registered(name, query)
        self._queries[name] = query

    def streams(self) -> list[str]:
        """Registered stream names, sorted."""
        return sorted(self._streams)

    def queries(self) -> list[str]:
        """Registered query names, sorted."""
        return sorted(self._queries)

    def stream(self, name: str) -> MarkovSequence:
        """Look up one stream."""
        try:
            return self._streams[name]
        except KeyError:
            raise ReproError(f"unknown stream {name!r}") from None

    def _resolve_query(self, query):
        if isinstance(query, str):
            try:
                return self._queries[query]
            except KeyError:
                raise ReproError(f"unknown query {query!r}") from None
        return self._canonical_query(query)

    def _canonical_query(self, query):
        """Round-trip a query through the interchange format when durable.

        Persisted frontier keys embed compiled automaton *state objects*,
        and recovery recompiles plans from the snapshot's query document
        — whose state names are the serialized form. A durable database
        therefore plans the serialized form from the start, so a live
        frontier and its recovered twin use identical keys. (Queries that
        arrive as JSON, e.g. over the serve wire, are already canonical
        and round-trip to themselves.)
        """
        if self._store is None:
            return query
        from repro.io.json_format import query_from_dict, query_to_dict

        return query_from_dict(query_to_dict(query))

    @property
    def plan_cache(self) -> PlanCache:
        """The plan cache all of this database's reads share."""
        return self._plans

    def plan(self, query) -> QueryPlan:
        """The (cached) plan for a query object or registered name."""
        return self._plans.get(self._resolve_query(query))

    # ------------------------------------------------------------------
    # Streaming writes
    # ------------------------------------------------------------------

    def append(
        self, name: str, transition: Mapping[Symbol, Mapping[Symbol, Number]]
    ) -> MarkovSequence:
        """Append one timestep to a stream; returns the grown sequence.

        Every streaming evaluator attached to the stream absorbs the
        timestep incrementally (one DP layer each), so the next read is
        warm.

        The append is atomic with respect to the attached evaluators:
        the timestep is validated *before* the stream mutates, and if
        advancing any evaluator fails, every evaluator is rolled back to
        its pre-append frontier and the stream is left unchanged — a
        rejected append can never leave an evaluator out of sync with
        its stream.

        With a store attached, the journal record is the commit point:
        it is written (and fsync'd) after every evaluator advanced but
        before anything becomes visible, and a journal failure rolls the
        evaluators back. An append the caller saw succeed is therefore
        always on disk, and a journaled append is always one that would
        have succeeded in memory.
        """
        grown = self.stream(name).extended(transition)  # validates first
        attached = [
            evaluator
            for (stream_name, _fingerprint), evaluator in self._evaluators.items()
            if stream_name == name
        ]
        for evaluator in attached:
            evaluator.checkpoint()
        advanced = 0
        try:
            for evaluator in attached:
                evaluator.append(transition)
                advanced += 1
            if self._store is not None:
                self._store.log_append(name, transition)
        except BaseException:
            # Evaluator appends are themselves atomic, so a failing
            # advance is already at its checkpoint state; restore the
            # ones that advanced and drop the unused snapshots.
            for i, evaluator in enumerate(attached):
                if i < advanced:
                    evaluator.rollback()
                else:
                    evaluator.discard_checkpoint()
            raise
        for evaluator in attached:
            evaluator.discard_checkpoint()
        self._streams[name] = grown
        return grown

    def streaming_evaluator(self, name: str, query) -> StreamingEvaluator:
        """The live evaluator for (stream, query), creating it if needed.

        Explicitly requesting an evaluator works for *any* query class;
        only plans with a deterministic compiled transducer (polynomial
        frontier) are attached automatically on reads.
        """
        plan = self._plans.get(self._resolve_query(query))
        return self._attach_evaluator(name, plan)

    def install_evaluator(self, name: str, evaluator: StreamingEvaluator) -> None:
        """Adopt an externally built evaluator for stream ``name``.

        The store's recovery path restores evaluators from persisted
        frontiers (no DP re-run) and installs them here, so the first
        post-restart read or append is already warm. The evaluator must
        be in sync with the stream it claims to cover.
        """
        stream = self.stream(name)
        if evaluator.length != stream.length:
            raise ReproError(
                f"evaluator for stream {name!r} covers {evaluator.length} "
                f"timesteps but the stream has {stream.length}"
            )
        self._evaluators[(name, evaluator.plan.fingerprint)] = evaluator

    def attached_evaluators(self) -> list[tuple[str, StreamingEvaluator]]:
        """Every live (stream, evaluator) pair — what snapshots capture."""
        return [
            (stream_name, evaluator)
            for (stream_name, _fingerprint), evaluator in sorted(
                self._evaluators.items()
            )
        ]

    def _attach_evaluator(self, name: str, plan: QueryPlan) -> StreamingEvaluator:
        key = (name, plan.fingerprint)
        evaluator = self._evaluators.get(key)
        if evaluator is None or evaluator.length != self.stream(name).length:
            evaluator = StreamingEvaluator(plan, self.stream(name))
            self._evaluators[key] = evaluator
        return evaluator

    def _drop_evaluators(self, name: str) -> None:
        for key in [key for key in self._evaluators if key[0] == name]:
            del self._evaluators[key]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def query(
        self,
        stream: str,
        query,
        order: Order | str = Order.UNRANKED,
        limit: int | None = None,
        with_confidence: bool = True,
        allow_exponential: bool = False,
        min_confidence: Number | None = None,
    ) -> Iterator[Answer]:
        """Evaluate a query (object or registered name) over one stream."""
        sequence = self.stream(stream)
        plan = self._plans.get(self._resolve_query(query))
        evaluator = None
        if Order(order) is Order.UNRANKED and plan.supports_streaming():
            evaluator = self._attach_evaluator(stream, plan)
        return run_evaluate(
            plan,
            sequence,
            order=order,
            with_confidence=with_confidence,
            limit=limit,
            allow_exponential=allow_exponential,
            min_confidence=min_confidence,
            evaluator=evaluator,
        )

    def top_k(
        self,
        stream: str,
        query,
        k: int,
        order: Order | str | None = None,
        allow_exponential: bool = False,
    ) -> list[Answer]:
        """Top-k answers of one stream under the class's best ranked order."""
        plan = self._plans.get(self._resolve_query(query))
        return run_top_k(
            plan,
            self.stream(stream),
            k,
            order=order,
            allow_exponential=allow_exponential,
        )

    def top_k_across(
        self,
        query,
        k: int,
        streams: Iterable[str] | None = None,
        order: Order | str | None = None,
        allow_exponential: bool = False,
        workers: int | None = None,
        pool: "WorkerPool | None" = None,
    ) -> list[StreamAnswer]:
        """Globally best ``k`` answers across streams, merged by score.

        Runs the per-stream ranked enumeration lazily k answers deep on
        each stream (reusing one plan throughout), then merges — the
        standard top-k-over-partitions pattern of stream warehouses.
        Answers without a score sort after all ranked answers with a
        deterministic (stream, output) tiebreak.

        ``workers > 1`` fans the streams out across a process pool
        (:mod:`repro.parallel`) for this one call; ``pool`` reuses a
        caller-held :class:`~repro.parallel.WorkerPool` instead (its
        worker count wins). Results are identical to serial execution
        in every mode.
        """
        names = list(streams) if streams is not None else self.streams()
        plan = self._plans.get(self._resolve_query(query))
        corpus = {name: self.stream(name) for name in names}
        if pool is not None:
            merged = pool.batch_top_k(
                plan, corpus, k, order=order, allow_exponential=allow_exponential
            )
        elif workers is not None and workers > 1:
            from repro.parallel import parallel_batch_top_k

            merged = parallel_batch_top_k(
                plan,
                corpus,
                k,
                workers=workers,
                order=order,
                allow_exponential=allow_exponential,
            )
        else:
            merged = batch_top_k(
                plan,
                corpus,
                k,
                order=order,
                allow_exponential=allow_exponential,
            )
        return [StreamAnswer(name, answer) for name, answer in merged]

    def batch_confidence(
        self,
        query,
        output,
        streams: Iterable[str] | None = None,
        allow_exponential: bool = True,
        workers: int | None = None,
        pool: "WorkerPool | None" = None,
        vectorized: bool | str = "auto",
    ) -> dict[str, Number]:
        """One output's confidence on every (selected) stream.

        The bulk-read twin of per-stream ``confidence``: one shared plan,
        and — when the plan is dense-eligible and the streams form an
        equal-length float stack — a single vectorized numpy DP for the
        whole corpus (:mod:`repro.parallel.vectorized`). Otherwise the
        per-stream Table-2 dispatch runs serially or, with ``workers > 1``
        or a ``pool``, across worker processes.
        """
        names = list(streams) if streams is not None else self.streams()
        plan = self._plans.get(self._resolve_query(query))
        corpus = {name: self.stream(name) for name in names}
        if pool is not None:
            return pool.batch_confidence(
                plan,
                corpus,
                output,
                allow_exponential=allow_exponential,
                vectorized=vectorized,
            )
        from repro.parallel import parallel_batch_confidence

        return parallel_batch_confidence(
            plan,
            corpus,
            output,
            workers=workers if workers is not None else 1,
            allow_exponential=allow_exponential,
            vectorized=vectorized,
        )
