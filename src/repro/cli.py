"""Command-line interface: query Markov sequences from JSON documents.

Usage (after ``pip install -e .``, as ``repro``; or ``python -m repro.cli``):

    repro info      --sequence seq.json [--query query.json]
    repro sample    --sequence seq.json [--count 5] [--seed 0]
    repro evaluate  --sequence seq.json --query query.json
                    [--order unranked|emax|imax|confidence] [--limit K]
                    [--no-confidence] [--allow-exponential]
                    [--epsilon E --delta D --approx-seed N]
    repro confidence --sequence seq.json --query query.json
                     --answer 1,2 [--index I]
                     [--epsilon E --delta D --approx-seed N]
    repro plan      --query query.json [--sequence seq.json]
    repro batch     --query query.json --sequence a.json --sequence b.json
                    [--corpus DIR] [-k K] [--workers N] [--answer 1,2]
    repro verify    [--budget SECONDS] [--seed N] [--classes a,b]
                    [--corpus DIR] [--save-failures DIR] [--no-metamorphic]
    repro serve     --socket /tmp/repro.sock | --host 127.0.0.1 --port 7341
                    [--shards N] [--queue-size N] [--workers N]
                    [--max-seconds S] [--data-dir DIR] [--no-fsync]
                    [--compact-every N]
    repro store     inspect DIR | compact DIR | recover DIR [--verify]
    repro stats     snapshot.json
    repro dot       --sequence seq.json | --query query.json

``plan``, ``batch``, and ``verify`` accept ``--telemetry PATH``: the
command runs with the tracing layer enabled and exports the metric
snapshot to ``PATH`` on exit (``.ndjson`` suffix selects ndjson);
``repro stats PATH`` pretty-prints a snapshot either way. The JSON
formats are documented in :mod:`repro.io.json_format`.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import signal
import sys
import time

from repro import telemetry
from repro.errors import ReproError
from repro.core.engine import (
    approximate_confidence,
    compute_confidence,
    evaluate,
    top_k,
)
from repro.io.json_format import read_query, read_sequence
from repro.lahar.monitor import occurrence_profile
from repro.parallel import WorkerPool
from repro.runtime.cache import default_plan_cache
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.transducers.transducer import Transducer
from repro.viz.dot import sequence_to_dot, transducer_to_dot


def _parse_answer(text: str) -> tuple:
    """Parse a comma-separated answer string ('' means the empty answer)."""
    if text == "":
        return ()
    return tuple(text.split(","))


def _approx_cli_seed(base: int, token: str) -> int:
    """Deterministic per-item sampling seed (sha256, not PYTHONHASHSEED)."""
    import hashlib

    digest = hashlib.sha256(f"{base}|{token}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _render_approx(estimate) -> str:
    """One-line rendering of an ApproxConfidence for CLI output."""
    line = (
        f"{estimate.estimate:.10g}\t"
        f"interval=[{estimate.low:.10g},{estimate.high:.10g}]\t"
        f"samples={estimate.samples}\tmethod={estimate.method}"
    )
    if not estimate.certified:
        line += "\t(uncertified: sample cap hit)"
    return line


def _describe_query(query) -> str:
    if isinstance(query, IndexedSProjector):
        return (
            f"indexed s-projector |Q_B|={len(query.prefix.states)} "
            f"|Q_A|={len(query.pattern.states)} |Q_E|={len(query.suffix.states)}"
        )
    if isinstance(query, SProjector):
        return (
            f"s-projector |Q_B|={len(query.prefix.states)} "
            f"|Q_A|={len(query.pattern.states)} |Q_E|={len(query.suffix.states)}"
            + (" (simple)" if query.is_simple() else "")
        )
    assert isinstance(query, Transducer)
    labels = []
    labels.append("deterministic" if query.is_deterministic() else "nondeterministic")
    labels.append("selective" if query.is_selective() else "non-selective")
    k = query.uniformity()
    labels.append(f"{k}-uniform" if k is not None else "non-uniform")
    if query.is_mealy():
        labels.append("Mealy")
    if query.is_projector():
        labels.append("projector")
    return f"transducer |Q|={len(query.nfa.states)} ({', '.join(labels)})"


def _cmd_info(args) -> int:
    sequence = read_sequence(args.sequence)
    print(
        f"Markov sequence: length {sequence.length}, "
        f"{len(sequence.symbols)} node symbols, "
        f"support of {sequence.support_size()} worlds"
    )
    if args.query:
        query = read_query(args.query)
        print(f"Query: {_describe_query(query)}")
    return 0


def _cmd_sample(args) -> int:
    sequence = read_sequence(args.sequence)
    rng = random.Random(args.seed)
    for _ in range(args.count):
        world = sequence.sample(rng)
        print(" ".join(str(s) for s in world))
    return 0


def _cmd_evaluate(args) -> int:
    sequence = read_sequence(args.sequence)
    query = read_query(args.query)
    approximate = args.epsilon is not None
    answers = evaluate(
        sequence,
        query,
        order=args.order,
        # In (ε, δ) mode, exact per-answer confidences are replaced by
        # FPRAS estimates after enumeration.
        with_confidence=not args.no_confidence and not approximate,
        limit=args.limit,
        allow_exponential=args.allow_exponential,
    )
    for answer in answers:
        fields = [answer.rendered()]
        if answer.score is not None:
            fields.append(f"score={float(answer.score):.6g}")
        if approximate and not args.no_confidence:
            estimate = approximate_confidence(
                sequence,
                query,
                answer.output,
                epsilon=args.epsilon,
                delta=args.delta,
                seed=_approx_cli_seed(args.approx_seed, repr(answer.output)),
            )
            fields.append(
                f"confidence~{estimate.estimate:.6g} "
                f"[{estimate.low:.6g},{estimate.high:.6g}] "
                f"({estimate.method})"
            )
        elif answer.confidence is not None:
            fields.append(f"confidence={float(answer.confidence):.6g}")
        print("\t".join(fields))
    return 0


def _cmd_confidence(args) -> int:
    sequence = read_sequence(args.sequence)
    query = read_query(args.query)
    output = _parse_answer(args.answer)
    if isinstance(query, IndexedSProjector):
        if args.index is None:
            raise ReproError("indexed s-projector answers need --index")
        answer = (output, args.index)
    else:
        answer = output
    if args.epsilon is not None:
        estimate = approximate_confidence(
            sequence,
            query,
            answer,
            epsilon=args.epsilon,
            delta=args.delta,
            seed=args.approx_seed,
        )
        print(_render_approx(estimate))
        return 0
    value = compute_confidence(
        sequence, query, answer, allow_exponential=args.allow_exponential
    )
    print(f"{float(value):.10g}")
    return 0


def _cmd_top_k(args) -> int:
    sequence = read_sequence(args.sequence)
    query = read_query(args.query)
    for answer in top_k(sequence, query, args.k):
        fields = [answer.rendered()]
        if answer.score is not None:
            fields.append(f"score={float(answer.score):.6g}")
        if answer.confidence is not None:
            fields.append(f"confidence={float(answer.confidence):.6g}")
        print("\t".join(fields))
    return 0


def _cmd_profile(args) -> int:
    sequence = read_sequence(args.sequence)
    query = read_query(args.query)
    if isinstance(query, SProjector):
        pattern = query.pattern.to_nfa()
    elif isinstance(query, Transducer):
        pattern = query.nfa
    else:  # pragma: no cover - read_query only returns the above
        raise ReproError("profile needs a transducer or s-projector query")
    profile = occurrence_profile(sequence, pattern)
    for i, probability in enumerate(profile, start=1):
        bar = "#" * int(float(probability) * 40)
        print(f"{i}\t{float(probability):.6f}\t{bar}")
    return 0


def _cmd_plan(args) -> int:
    cache = default_plan_cache()
    query = read_query(args.query)
    plan = cache.get(query)
    print(plan.describe())
    if args.epsilon is not None:
        from repro.approx import dklr_target

        target = dklr_target(args.epsilon, args.delta)
        print(
            f"approx knobs: ε={args.epsilon:g} δ={args.delta:g} — DKLR "
            f"stopping rule needs ≈{int(target)} successful samples "
            "(zero when the answer product is unambiguous)"
        )
    if args.sequence:
        sequence = read_sequence(args.sequence)
        start = time.perf_counter()
        answers = list(
            evaluate(
                sequence,
                query,
                order=args.order,
                allow_exponential=args.allow_exponential,
            )
        )
        elapsed = time.perf_counter() - start
        print(
            f"evaluated:   order={args.order}, {len(answers)} answers "
            f"in {elapsed * 1000:.2f} ms"
        )
        run_stats = plan.stats.as_dict()
        print(
            f"plan stats:  evaluations={run_stats['evaluations']} "
            f"answers={run_stats['answers']} "
            f"time={run_stats['seconds'] * 1000:.2f} ms "
            f"dp_cells={run_stats['dp_cells']} appends={run_stats['appends']}"
        )
    cache_stats = cache.stats()
    print(
        f"plan cache:  size={cache_stats['size']}/{cache_stats['capacity']} "
        f"hits={cache_stats['hits']} misses={cache_stats['misses']} "
        f"evictions={cache_stats['evictions']}"
    )
    return 0


def _collect_corpus(args) -> dict:
    """Named streams from repeated --sequence files and/or a --corpus dir."""
    paths: list[pathlib.Path] = [pathlib.Path(p) for p in args.sequence or []]
    if args.corpus:
        directory = pathlib.Path(args.corpus)
        if not directory.is_dir():
            raise ReproError(f"--corpus {args.corpus!r} is not a directory")
        paths.extend(sorted(directory.glob("*.json")))
    if not paths:
        raise ReproError("batch needs --sequence files and/or --corpus DIR")
    corpus: dict = {}
    for path in paths:
        name = path.stem
        suffix = 1
        while name in corpus:
            suffix += 1
            name = f"{path.stem}~{suffix}"
        corpus[name] = read_sequence(path)
    return corpus


def _print_pool_stats(stats: dict) -> None:
    speedup = stats["speedup_estimate"]
    print(
        f"pool stats:  batches={stats['batches']} tasks={stats['tasks']} "
        f"completed={stats['completed']} streams={stats['streams']} "
        f"chunks={stats['chunks']}"
    )
    print(
        f"             retries={stats['retries']} timeouts={stats['timeouts']} "
        f"broken_pools={stats['broken_pools']} worker_errors={stats['worker_errors']} "
        f"serial_fallbacks={stats['serial_fallbacks']} "
        f"serial_batches={stats['serial_batches']} "
        f"vectorized_batches={stats['vectorized_batches']}"
    )
    line = (
        f"             wall={stats['wall_seconds'] * 1000:.2f} ms "
        f"serial_estimate={stats['serial_estimate_seconds'] * 1000:.2f} ms"
    )
    if speedup is not None:
        line += f" speedup_estimate={speedup:.2f}x"
    print(line)


def _cmd_batch(args) -> int:
    corpus = _collect_corpus(args)
    query = read_query(args.query)
    if args.epsilon is not None:
        if args.answer is None:
            raise ReproError("batch --epsilon needs --answer (approximate top-k "
                             "is not supported; rankings need exact confidences)")
        output = _parse_answer(args.answer)
        for name, sequence in corpus.items():
            estimate = approximate_confidence(
                sequence,
                query,
                output,
                epsilon=args.epsilon,
                delta=args.delta,
                seed=_approx_cli_seed(args.approx_seed, name),
            )
            print(f"{name}\t{_render_approx(estimate)}")
        return 0
    vectorized = {"auto": "auto", "always": True, "never": False}[args.vectorized]
    with WorkerPool(
        args.workers,
        chunk_size=args.chunk_size,
        task_timeout=args.timeout,
    ) as pool:
        if args.answer is not None:
            output = _parse_answer(args.answer)
            confidences = pool.batch_confidence(
                query,
                corpus,
                output,
                allow_exponential=args.allow_exponential,
                vectorized=vectorized,
            )
            for name, value in confidences.items():
                print(f"{name}\t{float(value):.10g}")
        else:
            merged = pool.batch_top_k(
                query,
                corpus,
                args.k,
                order=args.order,
                allow_exponential=args.allow_exponential,
            )
            for name, answer in merged:
                fields = [name, answer.rendered()]
                if answer.score is not None:
                    fields.append(f"score={float(answer.score):.6g}")
                if answer.confidence is not None:
                    fields.append(f"confidence={float(answer.confidence):.6g}")
                print("\t".join(fields))
        _print_pool_stats(pool.stats.as_dict())
    return 0


def _cmd_verify(args) -> int:
    from repro.oracle.generators import CLASS_LABELS
    from repro.oracle.harness import verify

    if args.workers is not None and args.workers < 1:
        raise ReproError("--workers must be at least 1")
    classes = (
        tuple(label.strip() for label in args.classes.split(",") if label.strip())
        if args.classes
        else CLASS_LABELS
    )
    report = verify(
        seed=args.seed,
        budget=args.budget,
        max_rounds=args.max_rounds,
        classes=classes,
        workers=args.workers if args.workers is not None else 1,
        corpus=args.corpus,
        save_failures=args.save_failures,
        metamorphic=not args.no_metamorphic,
        epsilon=args.epsilon,
        delta=args.delta,
    )
    print(report.matrix_report())
    for diff in report.diffs:
        print(f"DIFF {diff.describe()}")
    for path in report.saved:
        print(f"saved minimized case: {path}")
    print(report.summary())
    if report.diffs:
        print(
            "reproduce with: repro verify "
            f"--seed {report.seed} --max-rounds {max(report.rounds, 2)}",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def _cmd_stats(args) -> int:
    snapshot = telemetry.load_snapshot(args.snapshot)
    print(telemetry.render_snapshot(snapshot))
    return 0


def _cmd_lint(args) -> int:
    # Imported lazily: the analyzer is only needed by this subcommand.
    from repro.analysis import lint_paths, render_json, render_pretty

    reverse = None
    if args.no_reverse_telemetry:
        reverse = False
    rules = set(args.rules.split(",")) if args.rules else None
    report = lint_paths(
        args.paths,
        rules=rules,
        observability_doc=args.observability,
        reverse_telemetry=reverse,
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_pretty(report))
    return 0 if report.clean else 1


def _cmd_dot(args) -> int:
    if args.sequence:
        print(sequence_to_dot(read_sequence(args.sequence)))
    elif args.query:
        query = read_query(args.query)
        if isinstance(query, SProjector):
            query = query.to_transducer()
        print(transducer_to_dot(query))
    else:
        raise ReproError("dot needs --sequence or --query")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.server import ReproServer

    if args.socket is None and args.host is None:
        raise ReproError("serve needs --socket PATH or --host/--port")

    async def _run() -> None:
        server = ReproServer(
            shards=args.shards,
            queue_size=args.queue_size,
            pool_workers=args.workers or 0,
            data_dir=args.data_dir,
            fsync=not args.no_fsync,
            compact_records=args.compact_every,
        )
        address = await server.start(
            socket_path=args.socket, host=args.host, port=args.port
        )
        if address["family"] == "unix":
            print(f"repro serve: listening on unix socket {address['path']}")
        else:
            print(
                f"repro serve: listening on {address['host']}:{address['port']}"
            )
        if server.recovered is not None:
            recovered = server.recovered
            print(
                f"repro serve: durable in {args.data_dir} — recovered "
                f"{recovered['streams']} stream(s), "
                f"{recovered['standing_queries']} standing, "
                f"LSN {recovered['last_lsn']} "
                f"({recovered['records_replayed']} replayed, "
                f"{recovered['truncated_bytes']} torn bytes truncated)"
            )
        print(
            f"repro serve: {args.shards} shard(s), "
            f"queue size {args.queue_size}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signame in ("SIGINT", "SIGTERM"):
            try:
                loop.add_signal_handler(
                    getattr(signal, signame),
                    lambda: asyncio.ensure_future(server.shutdown()),
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if args.max_seconds is not None:
            loop.call_later(
                args.max_seconds,
                lambda: asyncio.ensure_future(server.shutdown()),
            )
        await server.wait_closed()
        print(
            f"repro serve: drained — {server.appends} appends, "
            f"{server.alerts_fired} alerts, {server.connections} connections",
            flush=True,
        )

    asyncio.run(_run())
    return 0


def _cmd_store_inspect(args) -> int:
    from repro.store import inspect_data_dir

    report = inspect_data_dir(args.data_dir)
    print(f"store: {report['data_dir']}")
    print(
        f"log:   last LSN {report['last_lsn']}, "
        f"snapshot LSN {report['snapshot_lsn']} "
        f"({report['replay_records']} record(s) to replay), "
        f"{report['snapshots']} snapshot(s)"
    )
    for segment in report["segments"]:
        span = (
            f"LSN {segment['first_lsn']}..{segment['last_lsn']}"
            if segment["first_lsn"] is not None
            else "empty"
        )
        line = (
            f"  {segment['file']}  {segment['records']} record(s), "
            f"{segment['bytes']} bytes, {span}"
        )
        if segment["torn_bytes"]:
            line += f", torn tail of {segment['torn_bytes']} bytes"
        print(line)
    for record_type in sorted(report["records"]):
        print(f"  {record_type}: {report['records'][record_type]}")
    if report["torn_bytes"]:
        print(
            f"torn tail: {report['torn_bytes']} bytes "
            "(recovery will truncate and continue)"
        )
    return 0


def _cmd_store_compact(args) -> int:
    from repro.store import Store, capture_recovered, replay

    recovered = replay(args.data_dir)
    store = Store(args.data_dir, fsync=not args.no_fsync)
    before = store.stats()
    store.compact(capture_recovered(recovered))
    store.close()
    after = store.stats()
    print(
        f"compacted {args.data_dir}: snapshot at LSN {after['snapshot_lsn']}, "
        f"{before['segments']} -> {after['segments']} segment(s), "
        f"{before['wal_bytes']} -> {after['wal_bytes']} log bytes"
    )
    return 0


def _cmd_store_recover(args) -> int:
    from repro.store import replay, verify_recovery

    recovered = replay(args.data_dir)
    print(
        f"recovered {args.data_dir}: "
        f"{len(recovered.database.streams())} stream(s), "
        f"{len(recovered.queries)} named query(ies), "
        f"{len(recovered.alerts)} standing"
    )
    print(
        f"log:       LSN {recovered.last_lsn} "
        f"(snapshot at {recovered.snapshot_lsn}, "
        f"{recovered.records_replayed} record(s) replayed, "
        f"{recovered.truncated_bytes} torn bytes truncated)"
    )
    for name in recovered.database.streams():
        sequence = recovered.database.stream(name)
        print(f"  stream {name}: length {sequence.length}")
    for name in recovered.alerts.names():
        standing = recovered.alerts.get(name)
        print(
            f"  standing {name}: {standing.kind} on {standing.stream}, "
            f"value {float(standing.current_value()):.6g}, "
            f"{'armed' if standing.watch.armed else 'disarmed'}, "
            f"{standing.alerts_fired} alert(s) fired"
        )
    if not args.verify:
        return 0
    report = verify_recovery(args.data_dir)
    referees = "DP + replay" if report["log_complete"] else "DP (log compacted)"
    if report["ok"]:
        print(f"verify:    OK — {referees} referee(s) agree bit-for-bit")
        return 0
    print(f"verify:    FAILED ({referees})", file=sys.stderr)
    for mismatch in report["mismatches"]:
        print(f"  MISMATCH {mismatch}", file=sys.stderr)
    return 1


def _add_approx_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--epsilon",
        type=float,
        default=None,
        metavar="E",
        help="approximate confidences with the FPRAS to relative error E "
        "(exact algorithms are bypassed; enables --delta/--approx-seed)",
    )
    parser.add_argument(
        "--delta",
        type=float,
        default=0.05,
        metavar="D",
        help="FPRAS failure probability: the certified interval holds "
        "with probability at least 1-D (default: 0.05)",
    )
    parser.add_argument(
        "--approx-seed",
        type=int,
        default=0,
        help="base seed for the FPRAS sampler (default: 0; runs are "
        "deterministic given the same seed)",
    )


def _add_telemetry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="run with tracing enabled and export the metric snapshot "
        "here (.ndjson suffix selects ndjson; see `repro stats`)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query Markov sequences with finite-state transducers (PODS 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a sequence (and optionally a query)")
    info.add_argument("--sequence", required=True)
    info.add_argument("--query")
    info.set_defaults(handler=_cmd_info)

    sample = sub.add_parser("sample", help="draw random worlds")
    sample.add_argument("--sequence", required=True)
    sample.add_argument("--count", type=int, default=5)
    sample.add_argument("--seed", type=int, default=None)
    sample.set_defaults(handler=_cmd_sample)

    run = sub.add_parser("evaluate", help="evaluate a query")
    run.add_argument("--sequence", required=True)
    run.add_argument("--query", required=True)
    run.add_argument(
        "--order",
        default="unranked",
        choices=["unranked", "emax", "imax", "confidence"],
    )
    run.add_argument("--limit", type=int, default=None)
    run.add_argument("--no-confidence", action="store_true")
    run.add_argument("--allow-exponential", action="store_true")
    _add_approx_flags(run)
    run.set_defaults(handler=_cmd_evaluate)

    conf = sub.add_parser("confidence", help="confidence of one answer")
    conf.add_argument("--sequence", required=True)
    conf.add_argument("--query", required=True)
    conf.add_argument("--answer", required=True, help="comma-separated output symbols")
    conf.add_argument("--index", type=int, default=None)
    conf.add_argument("--allow-exponential", action="store_true")
    _add_approx_flags(conf)
    conf.set_defaults(handler=_cmd_confidence)

    best = sub.add_parser("top-k", help="top answers under the class's best order")
    best.add_argument("--sequence", required=True)
    best.add_argument("--query", required=True)
    best.add_argument("-k", type=int, default=5)
    best.set_defaults(handler=_cmd_top_k)

    profile = sub.add_parser(
        "profile", help="per-timestep match probability (Lahar event query)"
    )
    profile.add_argument("--sequence", required=True)
    profile.add_argument("--query", required=True)
    profile.set_defaults(handler=_cmd_profile)

    plan = sub.add_parser(
        "plan", help="show the query plan (chosen algorithms, cache stats)"
    )
    plan.add_argument("--query", required=True)
    plan.add_argument("--sequence", help="also run the plan once and time it")
    plan.add_argument(
        "--order",
        default="unranked",
        choices=["unranked", "emax", "imax", "confidence"],
    )
    plan.add_argument("--allow-exponential", action="store_true")
    _add_approx_flags(plan)
    _add_telemetry_flag(plan)
    plan.set_defaults(handler=_cmd_plan)

    batch = sub.add_parser(
        "batch",
        help="run one query across many streams (process pool / vectorized)",
    )
    batch.add_argument("--query", required=True)
    batch.add_argument(
        "--sequence",
        action="append",
        help="a stream file; repeat for more (stream name = file stem)",
    )
    batch.add_argument("--corpus", help="directory of *.json stream files")
    batch.add_argument("-k", type=int, default=5)
    batch.add_argument(
        "--order",
        default=None,
        choices=["unranked", "emax", "imax", "confidence"],
        help="ranked order (default: the plan's best order)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: usable CPUs; 1 = serial)",
    )
    batch.add_argument("--chunk-size", type=int, default=None)
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-chunk timeout in seconds"
    )
    batch.add_argument(
        "--answer",
        default=None,
        help="batched confidence of this comma-separated answer instead of top-k",
    )
    batch.add_argument(
        "--vectorized",
        default="auto",
        choices=["auto", "always", "never"],
        help="dense same-plan batching for --answer (default: auto)",
    )
    batch.add_argument("--allow-exponential", action="store_true")
    _add_approx_flags(batch)
    _add_telemetry_flag(batch)
    batch.set_defaults(handler=_cmd_batch)

    check = sub.add_parser(
        "verify",
        help="differential & metamorphic conformance fuzzing (repro.oracle)",
    )
    check.add_argument(
        "--budget",
        type=float,
        default=10.0,
        help="wall-clock budget in seconds (default: 10)",
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        help="stop after this many fuzz rounds regardless of budget",
    )
    check.add_argument(
        "--classes",
        default=None,
        help="comma-separated Table-2 classes (default: all five)",
    )
    check.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool-engine worker processes (default: 1 = serial in-process)",
    )
    check.add_argument("--corpus", help="directory of oracle_case regression files")
    check.add_argument(
        "--save-failures",
        help="write minimized failing cases into this directory",
    )
    check.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic transforms (differential checks only)",
    )
    check.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="approx-engine relative error (default: the harness's "
        "flake-free 0.25)",
    )
    check.add_argument(
        "--delta",
        type=float,
        default=None,
        help="approx-engine per-probe failure probability (default: 1e-9, "
        "so an interval miss means a real bug)",
    )
    _add_telemetry_flag(check)
    check.set_defaults(handler=_cmd_verify)

    serve = sub.add_parser(
        "serve",
        help="run the streaming query service (standing queries, alerts)",
    )
    serve.add_argument("--socket", help="unix socket path to listen on")
    serve.add_argument("--host", help="TCP host to listen on (with --port)")
    serve.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="stream shards; appends on different shards never contend",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=256,
        help="outbound frames buffered per connection before alerts drop",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool workers for cross-stream batch reads (default: in-process)",
    )
    serve.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="gracefully shut down after this long (CI smoke guard)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        help="durable mode: journal every mutation here and recover "
        "previous state on startup (see `repro store`)",
    )
    serve.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip the per-record fsync (faster, loses the crash guarantee)",
    )
    serve.add_argument(
        "--compact-every",
        type=int,
        default=None,
        metavar="N",
        help="fold the log into a snapshot every N records (default: 1024)",
    )
    _add_telemetry_flag(serve)
    serve.set_defaults(handler=_cmd_serve)

    store = sub.add_parser(
        "store",
        help="inspect, compact, or recover a `serve --data-dir` store",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_inspect = store_sub.add_parser(
        "inspect", help="read-only structural summary of the log and snapshots"
    )
    store_inspect.add_argument("data_dir", help="the serve --data-dir directory")
    store_inspect.set_defaults(handler=_cmd_store_inspect)

    store_compact = store_sub.add_parser(
        "compact", help="fold the log into a fresh snapshot offline"
    )
    store_compact.add_argument("data_dir", help="the serve --data-dir directory")
    store_compact.add_argument(
        "--no-fsync", action="store_true", help="skip fsyncs during the fold"
    )
    store_compact.set_defaults(handler=_cmd_store_compact)

    store_recover = store_sub.add_parser(
        "recover", help="rebuild state from the store and report what it holds"
    )
    store_recover.add_argument("data_dir", help="the serve --data-dir directory")
    store_recover.add_argument(
        "--verify",
        action="store_true",
        help="cross-check the recovery against from-scratch evaluation",
    )
    store_recover.set_defaults(handler=_cmd_store_recover)

    stats = sub.add_parser(
        "stats", help="pretty-print an exported telemetry snapshot"
    )
    stats.add_argument("snapshot", help="snapshot file written by --telemetry")
    stats.set_defaults(handler=_cmd_stats)

    lint = sub.add_parser(
        "lint",
        help="check project invariants statically (RX01-RX05; see docs/ANALYSIS.md)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    lint.add_argument("--format", choices=("pretty", "json"), default="pretty")
    lint.add_argument(
        "--rules", help="comma-separated rule ids to run (default: all)"
    )
    lint.add_argument(
        "--observability",
        help="path to the metric catalogue doc (default: auto-discover docs/OBSERVABILITY.md)",
    )
    lint.add_argument(
        "--no-reverse-telemetry",
        action="store_true",
        help="skip the documented-but-never-emitted RX05 pass",
    )
    lint.set_defaults(handler=_cmd_lint)

    dot = sub.add_parser("dot", help="emit a graphviz rendering")
    dot.add_argument("--sequence")
    dot.add_argument("--query")
    dot.set_defaults(handler=_cmd_dot)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        telemetry_path = getattr(args, "telemetry", None)
        if telemetry_path is not None:
            # The snapshot is exported even when the handler fails — a
            # diffing `verify` run's telemetry is exactly what you want.
            with telemetry.session(telemetry_path):
                return args.handler(args)
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
