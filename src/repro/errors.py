"""Exception hierarchy for the repro library.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single exception type at API
boundaries while still discriminating finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidDistributionError(ReproError):
    """A probability distribution does not sum to one (or has bad entries)."""


class InvalidMarkovSequenceError(ReproError):
    """A Markov sequence is structurally malformed."""


class InvalidAutomatonError(ReproError):
    """An automaton definition is malformed (e.g. unknown state in delta)."""


class InvalidTransducerError(ReproError):
    """A transducer definition is malformed or violates a class restriction.

    The paper restricts attention to transducers with *deterministic
    emission*; constructions that would require nondeterministic emission
    raise this error.
    """


class AlphabetMismatchError(ReproError):
    """The alphabets of a query and a Markov sequence do not agree.

    The paper assumes ``Sigma_A == Sigma_mu`` throughout (Section 3.1.2);
    we check the assumption eagerly and fail with this error.
    """


class NotAnAnswerError(ReproError):
    """A string claimed to be an answer has zero probability."""


class RegexSyntaxError(ReproError):
    """A regular-expression pattern could not be parsed."""
