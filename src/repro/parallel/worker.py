"""Worker-side chunk execution for the process pool.

A :class:`ChunkTask` is what actually crosses the process boundary: the
*query object* (not the plan — plans hold compiled automata, minimized
components and live counters, and are deliberately never pickled), its
structural fingerprint, a chunk of named streams, and the execution
options. Each worker process keeps a small process-local
:class:`~repro.runtime.cache.PlanCache`; the shipped fingerprint is
passed as a hint so the worker never re-canonicalizes the query — the
first chunk of a given shape pays one plan build, every later chunk is a
cache hit.

:func:`execute_chunk` is also what the parent runs in-process for the
serial fallback paths, so pool and fallback execution share one code
path (and therefore one set of semantics).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ReproError
from repro.runtime.cache import PlanCache
from repro.runtime.executor import batch_top_k, plan_confidence, run_evaluate

#: Modes a chunk task can run in.
MODE_TOP_K = "top_k"
MODE_EVALUATE = "evaluate"
MODE_CONFIDENCE = "confidence"

#: The per-process plan cache (one per worker; also used by the parent's
#: serial fallback). Bounded so a long-lived pool serving many query
#: shapes cannot grow without limit.
_WORKER_CACHE = PlanCache(capacity=64)


def worker_plan_cache() -> PlanCache:
    """This process's worker-side plan cache (for tests and stats)."""
    return _WORKER_CACHE


@dataclass(frozen=True)
class ChunkTask:
    """One unit of pool work: a query shape applied to a chunk of streams.

    Attributes
    ----------
    mode:
        ``"top_k"`` (merged ranked answers), ``"evaluate"`` (full answer
        lists per stream) or ``"confidence"`` (one output's confidence
        per stream).
    query:
        The raw query object (transducer or s-projector). Never a plan.
    fingerprint:
        ``repro.runtime.plan.fingerprint(query)``, shipped so workers
        skip re-canonicalization.
    items:
        The ``(name, sequence)`` pairs of this chunk, in corpus order.
    options:
        Mode-specific keyword options (``k``, ``order``,
        ``allow_exponential``, ``with_confidence``, ``limit``,
        ``min_confidence``, ``output``).
    sparse_threshold:
        The parent plan's resolved density threshold, shipped alongside
        the fingerprint so the worker-local cache rebuilds the plan
        under the *same* sparse/dense representation decision (the
        fingerprint already encodes it; this carries the value itself).
    """

    mode: str
    query: object
    fingerprint: str
    items: tuple
    options: tuple
    sparse_threshold: float | None = None

    def option_dict(self) -> dict:
        return dict(self.options)


@dataclass(frozen=True)
class ChunkResult:
    """What a worker sends back: the payload plus its compute time.

    ``cache_hits`` / ``cache_misses`` are the worker-local plan-cache
    deltas this chunk caused — shipped explicitly because a worker
    process's own telemetry registry (if any) is invisible to the
    parent; the parent folds them into its telemetry as
    ``parallel.worker_cache.*``.
    """

    payload: tuple
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0


def make_task(mode: str, plan, items, **options) -> ChunkTask:
    """Build a :class:`ChunkTask` from an already-built plan."""
    return ChunkTask(
        mode=mode,
        query=plan.query,
        fingerprint=plan.fingerprint,
        items=tuple(items),
        options=tuple(sorted(options.items())),
        sparse_threshold=plan.sparse_threshold,
    )


def execute_chunk(task: ChunkTask) -> ChunkResult:
    """Run one chunk in this process; the pool's worker entry point."""
    start = time.perf_counter()
    hits_before = _WORKER_CACHE.hits
    misses_before = _WORKER_CACHE.misses
    plan = _WORKER_CACHE.get(
        task.query,
        fingerprint_hint=task.fingerprint,
        sparse_threshold=task.sparse_threshold,
    )
    options = task.option_dict()
    if task.mode == MODE_TOP_K:
        payload = tuple(
            batch_top_k(
                plan,
                dict(task.items),
                options["k"],
                order=options.get("order"),
                allow_exponential=options.get("allow_exponential", False),
            )
        )
    elif task.mode == MODE_EVALUATE:
        payload = tuple(
            (
                name,
                tuple(
                    run_evaluate(
                        plan,
                        sequence,
                        order=options.get("order", "unranked"),
                        with_confidence=options.get("with_confidence", True),
                        limit=options.get("limit"),
                        allow_exponential=options.get("allow_exponential", False),
                        min_confidence=options.get("min_confidence"),
                    )
                ),
            )
            for name, sequence in task.items
        )
    elif task.mode == MODE_CONFIDENCE:
        output = options["output"]
        payload = tuple(
            (
                name,
                plan_confidence(
                    plan,
                    sequence,
                    output,
                    allow_exponential=options.get("allow_exponential", True),
                ),
            )
            for name, sequence in task.items
        )
    else:
        raise ReproError(f"unknown chunk mode {task.mode!r}")
    return ChunkResult(
        payload=payload,
        seconds=time.perf_counter() - start,
        cache_hits=_WORKER_CACHE.hits - hits_before,
        cache_misses=_WORKER_CACHE.misses - misses_before,
    )
