"""Partitioning a stream corpus into worker-sized chunks.

The unit of work shipped to a worker process is a *chunk*: a slice of
the ``{name: MarkovSequence}`` corpus, small enough to load-balance
across workers and large enough to amortize task overhead (pickling the
query, re-planning in the worker on first sight of a fingerprint).

Chunks preserve the corpus's mapping order and carry stream names, so
any merge the parent performs can reproduce the exact deterministic
(name, output) ordering of serial execution regardless of the order in
which workers finish.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.errors import ReproError
from repro.markov.sequence import MarkovSequence

#: Target number of chunks handed to each worker: oversubscribing a few
#: chunks per worker keeps stragglers from idling the rest of the pool.
OVERSUBSCRIPTION = 4


def auto_chunk_size(items: int, workers: int) -> int:
    """A chunk size giving ~``OVERSUBSCRIPTION`` chunks per worker."""
    if items <= 0:
        return 1
    if workers < 1:
        raise ReproError("chunking requires at least one worker")
    return max(1, math.ceil(items / (workers * OVERSUBSCRIPTION)))


def chunk_corpus(
    sequences: Mapping[str, MarkovSequence],
    chunk_size: int | None,
    workers: int,
) -> list[tuple[tuple[str, MarkovSequence], ...]]:
    """Split a named corpus into chunks of ``chunk_size`` streams.

    ``chunk_size=None`` picks :func:`auto_chunk_size`. Mapping order is
    preserved within and across chunks.
    """
    items = list(sequences.items())
    if chunk_size is None:
        chunk_size = auto_chunk_size(len(items), workers)
    if chunk_size < 1:
        raise ReproError("chunk size must be at least 1")
    return [
        tuple(items[start : start + chunk_size])
        for start in range(0, len(items), chunk_size)
    ]


def chunk_by_shard(
    sequences: Mapping[str, MarkovSequence],
    shard_of,
    shards: int,
) -> list[tuple[tuple[str, MarkovSequence], ...]]:
    """Group a named corpus into one chunk per (non-empty) shard.

    ``shard_of(name) -> index`` assigns each stream its shard (the
    service uses a stable content hash of the stream id). Streams of one
    shard always travel together, so a long-lived pool sees a stable
    name -> chunk assignment and per-shard state (worker-local caches,
    OS page cache) stays hot. Within a chunk, corpus mapping order is
    preserved — the parent merge remains bit-identical to serial.
    """
    if shards < 1:
        raise ReproError("sharded chunking requires at least one shard")
    groups: list[list[tuple[str, MarkovSequence]]] = [[] for _ in range(shards)]
    for name, sequence in sequences.items():
        index = shard_of(name)
        if not 0 <= index < shards:
            raise ReproError(
                f"shard_of({name!r}) returned {index}, outside [0, {shards})"
            )
        groups[index].append((name, sequence))
    return [tuple(group) for group in groups if group]
