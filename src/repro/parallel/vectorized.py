"""Same-plan batching: one numpy forward DP over a stack of streams.

When many equal-length streams share one dense deterministic plan, the
Theorem 4.6 dynamic program is the *same* sequence of vector-matrix
products for every stream — only the transition probabilities differ.
Following the sparse-batching observation of Nuel & Dumas (one automaton,
many sequences), this module stacks the per-stream DP vectors into a
``(B, S)`` matrix (``S = |Sigma| * |Q|``) and the per-step matrices into
a ``(B, S, S)`` tensor, so one batched ``einsum`` per timestep advances
all ``B`` streams at once.

The step matrices share their *sparsity structure* across streams: an
entry ``(symbol, state) -> (symbol', state')`` exists iff the (unique)
deterministic move on ``symbol'`` from ``state`` emits exactly the
expected slice of the target output — a property of the transducer and
the output alone. The structure is therefore computed once per distinct
expected emission and only the probability values are gathered per
stream, which is what makes the batch path fast: the per-stream python
work is a single sparse scan of the transition rows.

Float-only (numpy), like :mod:`repro.confidence.dense`; for exact
rationals use the serial sparse DP. Verified against both in the test
suite.
"""

from __future__ import annotations

import weakref
from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import InvalidTransducerError, ReproError
from repro.markov.sequence import MarkovSequence
from repro.runtime.plan import PlanKind, QueryPlan
from repro.transducers.transducer import Transducer


def _check_batch(sequences: Sequence[MarkovSequence]) -> None:
    if not sequences:
        raise ReproError("dense batch requires at least one sequence")
    first = sequences[0]
    for sequence in sequences[1:]:
        if sequence.length != first.length:
            raise ReproError(
                "dense batch requires equal-length sequences "
                f"({sequence.length} != {first.length})"
            )
        if sequence.symbols != first.symbols:
            raise ReproError("dense batch requires a shared symbol order")


def dense_batch_eligible(
    plan: QueryPlan, sequences: Sequence[MarkovSequence], require_float: bool = True
) -> bool:
    """Whether the batched dense path applies to this plan and corpus.

    Requires a deterministic k-uniform compiled transducer, a non-empty
    corpus of equal-length streams over one shared symbol order, and —
    unless ``require_float`` is False — float probabilities throughout
    (the dense path would silently downgrade exact ``Fraction`` streams
    to floats, so auto-dispatch refuses them).
    """
    if plan.kind is not PlanKind.DETERMINISTIC or plan.uniformity is None:
        return False
    if not sequences:
        return False
    first = sequences[0]
    if any(
        s.length != first.length or s.symbols != first.symbols for s in sequences
    ):
        return False
    if require_float and not all(map(_is_float_valued, sequences)):
        return False
    return True


#: Gathered per-stream tensors, cached weakly off the (immutable) stream:
#: the gather depends only on the stream — not on the probed output — so a
#: database probing many outputs against a persistent corpus pays the
#: python flattening once per stream, ever.
_GATHER_CACHE: "weakref.WeakKeyDictionary[MarkovSequence, tuple]" = (
    weakref.WeakKeyDictionary()
)


def _stream_tensors(sequence: MarkovSequence) -> tuple:
    """``(initial_row, flat_indices, values)`` for one stream.

    ``initial_row`` is the dense ``(|Sigma|,)`` initial distribution;
    ``flat_indices``/``values`` are the sparse entries of the stream's
    ``(n-1, |Sigma|, |Sigma|)`` transition block, flattened so a batch
    assignment can place them at ``b * block + flat_indices``.
    """
    cached = _GATHER_CACHE.get(sequence)
    if cached is None:
        symbols = sequence.symbols
        index_of = {s: i for i, s in enumerate(symbols)}
        num_symbols = len(symbols)
        initial_row = np.zeros(num_symbols)
        for symbol, prob in sequence.initial_support():
            initial_row[index_of[symbol]] = float(prob)
        indices: list[int] = []
        values: list = []
        for i in range(1, sequence.length):
            step_base = (i - 1) * num_symbols
            for source, row in sequence.transition_rows(i).items():
                offset = (step_base + index_of[source]) * num_symbols
                indices += [offset + index_of[t] for t in row]
                values += row.values()
        cached = (
            initial_row,
            np.asarray(indices, dtype=np.intp),
            np.fromiter(map(float, values), dtype=np.float64, count=len(values)),
        )
        _GATHER_CACHE[sequence] = cached
    return cached


def _is_float_valued(sequence: MarkovSequence) -> bool:
    """True when every stored probability is a float (sampled exhaustively;
    the scan is one pass over the sparse entries, far cheaper than a DP)."""
    for _symbol, prob in sequence.initial_support():
        if not isinstance(prob, float):
            return False
    for i in range(1, sequence.length):
        for symbol in sequence.symbols:
            for _target, prob in sequence.successors(i, symbol):
                if not isinstance(prob, float):
                    return False
    return True


def confidence_dense_batch(
    sequences: Sequence[MarkovSequence],
    transducer: Transducer,
    output: Sequence,
) -> list[float]:
    """``Pr(S_b -> [A^omega] -> output)`` for every stream ``b``, batched.

    Semantically equal to calling
    :func:`repro.confidence.dense.confidence_deterministic_dense` per
    stream, but runs one ``(B, S) @ (B, S, S)`` contraction per timestep
    instead of ``B`` python DPs. Requires a deterministic k-uniform
    transducer and an equal-length corpus over one symbol order.
    """
    if not transducer.is_deterministic():
        raise InvalidTransducerError("dense batch requires a deterministic transducer")
    k = transducer.uniformity()
    if k is None:
        raise InvalidTransducerError("dense batch requires k-uniform emission")
    _check_batch(sequences)

    first = sequences[0]
    batch = len(sequences)
    n = first.length
    target = tuple(output)
    if len(target) != k * n:
        return [0.0] * batch

    symbols = list(first.symbols)
    states = sorted(transducer.nfa.states, key=repr)
    symbol_index = {s: i for i, s in enumerate(symbols)}
    state_index = {q: i for i, q in enumerate(states)}
    size = len(symbols) * len(states)

    def pair_index(symbol, state) -> int:
        return symbol_index[symbol] * len(states) + state_index[state]

    # Single deterministic move per (state, symbol): precompute once.
    move: dict[tuple, tuple] = {}
    for state in states:
        for symbol in symbols:
            successors = transducer.nfa.successors(state, symbol)
            if successors:
                (target_state,) = successors
                move[(state, symbol)] = (
                    target_state,
                    transducer.emission(state, symbol, target_state),
                )

    # Stream-independent step structure, one entry list per distinct
    # expected emission: (row, col, source-symbol idx, target-symbol idx).
    structure_cache: dict[tuple, tuple[np.ndarray, ...]] = {}

    def step_structure(expected: tuple) -> tuple[np.ndarray, ...]:
        cached = structure_cache.get(expected)
        if cached is None:
            rows, cols, srcs, tgts = [], [], [], []
            for target_symbol in symbols:
                for state in states:
                    entry = move.get((state, target_symbol))
                    if entry is None or entry[1] != expected:
                        continue
                    for source_symbol in symbols:
                        rows.append(pair_index(source_symbol, state))
                        cols.append(pair_index(target_symbol, entry[0]))
                        srcs.append(symbol_index[source_symbol])
                        tgts.append(symbol_index[target_symbol])
            cached = tuple(np.asarray(a, dtype=np.intp) for a in (rows, cols, srcs, tgts))
            structure_cache[expected] = cached
        return cached

    # Per-stream probability tensors, gathered once: initial (B, |Sigma|)
    # and transitions (B, n-1, |Sigma|, |Sigma|). The sparse entries are
    # collected into flat index lists and written with a single fancy
    # assignment — per-entry numpy stores would dominate the batch DP.
    num_symbols = len(symbols)
    initial = np.zeros((batch, num_symbols))
    transitions = np.zeros((batch, max(n - 1, 1), num_symbols, num_symbols))
    block = (n - 1) * num_symbols * num_symbols
    flat = transitions.reshape(-1)
    for b, sequence in enumerate(sequences):
        initial_row, indices, values = _stream_tensors(sequence)
        initial[b] = initial_row
        if indices.size:
            flat[indices + b * block] = values

    # Initial vector (position 1): mass lands on (symbol, move-target).
    vector = np.zeros((batch, size))
    for symbol in symbols:
        entry = move.get((transducer.nfa.initial, symbol))
        if entry is not None and entry[1] == target[0:k]:
            vector[:, pair_index(symbol, entry[0])] += initial[:, symbol_index[symbol]]

    # One batched contraction per step.
    for i in range(1, n):
        rows, cols, srcs, tgts = step_structure(target[k * i : k * (i + 1)])
        matrices = np.zeros((batch, size, size))
        if len(rows):
            matrices[:, rows, cols] = transitions[:, i - 1, srcs, tgts]
        vector = np.einsum("bs,bst->bt", vector, matrices)

    mask = np.zeros(size)
    for symbol in symbols:
        for state in transducer.nfa.accepting:
            mask[pair_index(symbol, state)] = 1.0
    return [float(value) for value in vector @ mask]


def confidence_dense_batch_named(
    sequences: Mapping[str, MarkovSequence],
    transducer: Transducer,
    output: Sequence,
) -> dict[str, float]:
    """Named-corpus convenience wrapper around the batched DP."""
    names = list(sequences)
    values = confidence_dense_batch([sequences[name] for name in names], transducer, output)
    return dict(zip(names, values))
