"""Parallel batch execution: process-pool fan-out + same-plan batching.

The runtime (:mod:`repro.runtime`) made queries cheap to *re-run* —
plan once, execute many times. This package makes them cheap to run
*wide*: one :class:`~repro.runtime.plan.QueryPlan` against an entire
corpus of Markov streams at once.

* :mod:`repro.parallel.pool` — :class:`WorkerPool`: chunks a
  ``{name: MarkovSequence}`` corpus across a
  ``concurrent.futures.ProcessPoolExecutor``, shipping the query plus
  its fingerprint (plans never pickle; workers re-plan into a
  process-local cache), with per-task timeouts, bounded retry with
  exponential backoff on worker crashes, and graceful fallback to
  serial execution. Merged results are deterministically ordered,
  identical to serial execution.
* :mod:`repro.parallel.vectorized` — the same-plan batching fast path:
  equal-length streams sharing a dense deterministic plan are stacked
  into one numpy tensor and advanced by a single batched forward DP per
  timestep.
* :mod:`repro.parallel.chunking` / :mod:`repro.parallel.worker` — the
  corpus partitioner and the (picklable) worker-side chunk runner.
* Bookkeeping lands in :class:`~repro.runtime.stats.PoolStats`,
  surfaced by the ``repro batch`` CLI subcommand.

The module-level helpers below run one batch through an ephemeral pool —
the convenient form for one-shot callers like
:meth:`repro.lahar.database.MarkovStreamDatabase.top_k_across`; callers
issuing many batches should hold a :class:`WorkerPool` open instead.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.markov.sequence import MarkovSequence, Number
from repro.core.results import Answer, Order
from repro.parallel.chunking import auto_chunk_size, chunk_by_shard, chunk_corpus
from repro.parallel.pool import WorkerPool, default_worker_count
from repro.parallel.vectorized import (
    confidence_dense_batch,
    confidence_dense_batch_named,
    dense_batch_eligible,
)
from repro.parallel.worker import ChunkTask, execute_chunk, worker_plan_cache
from repro.runtime.stats import PoolStats

__all__ = [
    "ChunkTask",
    "PoolStats",
    "WorkerPool",
    "auto_chunk_size",
    "chunk_by_shard",
    "chunk_corpus",
    "confidence_dense_batch",
    "confidence_dense_batch_named",
    "default_worker_count",
    "dense_batch_eligible",
    "execute_chunk",
    "parallel_batch_confidence",
    "parallel_batch_top_k",
    "parallel_evaluate_many",
    "worker_plan_cache",
]


def parallel_batch_top_k(
    query,
    sequences: Mapping[str, MarkovSequence],
    k: int,
    *,
    workers: int | None = None,
    order: Order | str | None = None,
    allow_exponential: bool = False,
    stats: PoolStats | None = None,
    **pool_options,
) -> list[tuple[str, Answer]]:
    """One-shot pooled :func:`repro.runtime.executor.batch_top_k`.

    Opens a :class:`WorkerPool` for the duration of the call; pass
    ``stats`` to keep the pool's counters after it closes.
    """
    with WorkerPool(workers, **pool_options) as pool:
        if stats is not None:
            pool.stats = stats
        return pool.batch_top_k(
            query, sequences, k, order=order, allow_exponential=allow_exponential
        )


def parallel_evaluate_many(
    query,
    sequences: Mapping[str, MarkovSequence],
    *,
    workers: int | None = None,
    stats: PoolStats | None = None,
    pool_options: dict | None = None,
    **evaluate_options,
) -> dict[str, list[Answer]]:
    """One-shot pooled per-stream evaluation over a corpus."""
    with WorkerPool(workers, **(pool_options or {})) as pool:
        if stats is not None:
            pool.stats = stats
        return pool.evaluate_many(query, sequences, **evaluate_options)


def parallel_batch_confidence(
    query,
    sequences: Mapping[str, MarkovSequence],
    output,
    *,
    workers: int | None = None,
    allow_exponential: bool = True,
    vectorized: bool | str = "auto",
    stats: PoolStats | None = None,
    **pool_options,
) -> dict[str, Number]:
    """One-shot confidence of ``output`` across a corpus (vectorized when
    the plan and corpus allow; see :meth:`WorkerPool.batch_confidence`)."""
    with WorkerPool(workers, **pool_options) as pool:
        if stats is not None:
            pool.stats = stats
        return pool.batch_confidence(
            query,
            sequences,
            output,
            allow_exponential=allow_exponential,
            vectorized=vectorized,
        )
