"""A process-pool executor for one-plan/many-streams workloads.

:class:`WorkerPool` fans a corpus of named Markov streams out across
worker processes, ``OVERSUBSCRIPTION`` chunks per worker, and merges the
results back into the exact deterministic ordering serial execution
produces. What crosses the process boundary is always the *query* plus
its fingerprint — never the plan (see :mod:`repro.parallel.worker`).

Robustness model
----------------
* **Per-task timeouts** — the parent bounds how long it waits on each
  chunk; a chunk that blows the budget is recomputed serially in the
  parent (correct results, recorded as a timeout + serial fallback) and
  the executor is retired, since a hung worker poisons its queue.
* **Bounded retry with backoff** — a chunk whose worker raised, or that
  died with the pool (``BrokenProcessPool``), is resubmitted up to
  ``max_retries`` times with exponential backoff; the executor is
  re-created after a breakage.
* **Graceful serial fallback** — a chunk that exhausts its retries, and
  every chunk of a batch when no executor can be created at all, runs
  serially in the parent through the *same* chunk-execution code path,
  so degraded batches return complete, identical results. Every event
  lands in :class:`~repro.runtime.stats.PoolStats`.

Batches over fewer than two streams, and pools configured with
``workers <= 1``, skip process fan-out entirely and run serially
in-process (``serial_batches`` in the stats).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from collections.abc import Mapping
from concurrent.futures.process import BrokenProcessPool

import multiprocessing

from repro import telemetry
from repro.errors import ReproError
from repro.markov.sequence import MarkovSequence, Number
from repro.core.results import Answer, Order
from repro.parallel.chunking import chunk_corpus
from repro.parallel.vectorized import confidence_dense_batch, dense_batch_eligible
from repro.parallel.worker import (
    MODE_CONFIDENCE,
    MODE_EVALUATE,
    MODE_TOP_K,
    ChunkResult,
    ChunkTask,
    execute_chunk,
    make_task,
)
from repro.runtime.cache import PlanCache, plan_for
from repro.runtime.executor import _merge_rank
from repro.runtime.stats import PoolStats


def default_worker_count() -> int:
    """Usable CPUs for this process (affinity-aware when available)."""
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)


class WorkerPool:
    """Executes one query plan against many streams concurrently.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` uses the machine's usable CPUs,
        ``<= 1`` keeps every batch serial in-process.
    chunk_size:
        Streams per task; ``None`` auto-sizes for ~4 chunks per worker.
    task_timeout:
        Parent-side bound, in seconds, on waiting for each chunk; ``None``
        waits indefinitely.
    max_retries:
        Resubmissions allowed per chunk before falling back to serial.
    retry_backoff:
        Base of the exponential backoff sleep between retry rounds.
    start_method:
        Multiprocessing start method; ``None`` prefers ``fork`` where
        available (workers inherit the imported engine; no re-import per
        process) and otherwise uses the platform default.
    cache:
        Parent-side :class:`PlanCache` used to plan incoming queries;
        a private cache when ``None``.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        chunk_size: int | None = None,
        task_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        start_method: str | None = None,
        cache: PlanCache | None = None,
        _worker_fn=None,
    ) -> None:
        if workers is not None and workers < 0:
            raise ReproError("worker count cannot be negative")
        if max_retries < 0:
            raise ReproError("max_retries cannot be negative")
        self.workers = workers if workers is not None else default_worker_count()
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.start_method = start_method
        self.stats = PoolStats()
        self._cache = cache if cache is not None else PlanCache()
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None
        self._worker_fn = _worker_fn if _worker_fn is not None else execute_chunk

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the executor down without waiting for stragglers."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _mp_context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _ensure_executor(self):
        if self._executor is None:
            try:
                self._executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self._mp_context()
                )
            except (OSError, ValueError, PermissionError):
                self._executor = None
        return self._executor

    def _retire_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    # ------------------------------------------------------------------
    # Public batch operations
    # ------------------------------------------------------------------

    def batch_top_k(
        self,
        query,
        sequences: Mapping[str, MarkovSequence],
        k: int,
        order: Order | str | None = None,
        allow_exponential: bool = False,
        chunks: list[tuple] | None = None,
    ) -> list[tuple[str, Answer]]:
        """Globally best ``k`` answers across the corpus, one shared plan.

        Result is identical — answers, scores, confidences, and
        (name, output) ordering — to serial
        :func:`repro.runtime.executor.batch_top_k`. ``chunks`` optionally
        pre-partitions the corpus (e.g. one chunk per service shard via
        :func:`repro.parallel.chunking.chunk_by_shard`) instead of the
        size-based auto-chunking.
        """
        plan = plan_for(query, self._cache)
        start = time.perf_counter()
        options = {"k": k, "order": order, "allow_exponential": allow_exponential}
        payloads = self._run_batch(MODE_TOP_K, plan, sequences, options, chunks=chunks)
        candidates = [pair for payload in payloads for pair in payload]
        candidates.sort(key=_merge_rank)
        self._record_batch(time.perf_counter() - start)
        return candidates[:k]

    def evaluate_many(
        self,
        query,
        sequences: Mapping[str, MarkovSequence],
        order: Order | str = Order.UNRANKED,
        with_confidence: bool = True,
        limit: int | None = None,
        allow_exponential: bool = False,
        min_confidence: Number | None = None,
        chunks: list[tuple] | None = None,
    ) -> dict[str, list[Answer]]:
        """Full per-stream answer lists, keyed by name in corpus order."""
        plan = plan_for(query, self._cache)
        start = time.perf_counter()
        options = {
            "order": Order(order),
            "with_confidence": with_confidence,
            "limit": limit,
            "allow_exponential": allow_exponential,
            "min_confidence": min_confidence,
        }
        payloads = self._run_batch(MODE_EVALUATE, plan, sequences, options, chunks=chunks)
        collected = {
            name: list(answers) for payload in payloads for name, answers in payload
        }
        self._record_batch(time.perf_counter() - start)
        return {name: collected[name] for name in sequences}

    def batch_confidence(
        self,
        query,
        sequences: Mapping[str, MarkovSequence],
        output,
        allow_exponential: bool = True,
        vectorized: bool | str = "auto",
        chunks: list[tuple] | None = None,
    ) -> dict[str, Number]:
        """One output's confidence on every stream of the corpus.

        ``vectorized="auto"`` uses the batched numpy DP when the plan is
        dense-eligible (deterministic, k-uniform) and the corpus is an
        equal-length float stack; ``True`` forces it (exact streams are
        downgraded to floats); ``False`` always takes the exact
        per-stream path through the pool.
        """
        plan = plan_for(query, self._cache)
        start = time.perf_counter()
        ordered = list(sequences.values())
        if vectorized is True or (
            vectorized == "auto" and dense_batch_eligible(plan, ordered)
        ):
            values = confidence_dense_batch(ordered, plan.execution, output)
            self.stats.vectorized_batches += 1
            self.stats.streams += len(ordered)
            telemetry.count("parallel.vectorized_batches")
            telemetry.count("parallel.streams", len(ordered))
            self._record_batch(time.perf_counter() - start)
            return dict(zip(sequences, values))
        options = {"output": tuple(output), "allow_exponential": allow_exponential}
        payloads = self._run_batch(MODE_CONFIDENCE, plan, sequences, options, chunks=chunks)
        collected = {name: value for payload in payloads for name, value in payload}
        self._record_batch(time.perf_counter() - start)
        return {name: collected[name] for name in sequences}

    # ------------------------------------------------------------------
    # Fan-out machinery
    # ------------------------------------------------------------------

    def _record_batch(self, wall_seconds: float) -> None:
        self.stats.record_batch(wall_seconds)
        telemetry.count("parallel.batches")
        telemetry.observe("parallel.batch.seconds", wall_seconds)

    def _record_chunk(self, task: ChunkTask, result: ChunkResult) -> None:
        """Fold one executed chunk into PoolStats and telemetry."""
        self.stats.record_chunk(result.seconds, len(task.items))
        recorder = telemetry.recorder()
        if recorder is not None:
            recorder.observe("parallel.chunk.seconds", result.seconds)
            recorder.observe(
                "parallel.chunk.streams",
                float(len(task.items)),
                bounds=telemetry.SIZE_BOUNDS,
            )
            recorder.count("parallel.streams", len(task.items))
            recorder.count("parallel.worker_cache.hits", result.cache_hits)
            recorder.count("parallel.worker_cache.misses", result.cache_misses)

    def _run_batch(self, mode, plan, sequences, options, chunks=None) -> list[tuple]:
        """Chunk, ship, retry, fall back; returns per-chunk payloads.

        ``chunks`` optionally supplies the partition (a list of
        ``(name, sequence)`` tuples covering the corpus, e.g. one chunk
        per service shard); ``None`` auto-chunks by size.
        """
        if self.workers <= 1 or len(sequences) <= 1:
            task = make_task(mode, plan, sequences.items(), **options)
            result = execute_chunk(task)
            self.stats.serial_batches += 1
            telemetry.count("parallel.serial_batches")
            self._record_chunk(task, result)
            return [result.payload]
        if chunks is None:
            chunks = chunk_corpus(sequences, self.chunk_size, self.workers)
        tasks = [
            make_task(mode, plan, chunk, **options) for chunk in chunks
        ]
        return self._run_chunks(tasks)

    def _run_chunks(self, tasks: list[ChunkTask]) -> list[tuple]:
        results: list[tuple | None] = [None] * len(tasks)
        attempts = [0] * len(tasks)
        pending = list(range(len(tasks)))
        while pending:
            executor = self._ensure_executor()
            if executor is None:
                # No process pool available at all: degrade gracefully.
                for index in pending:
                    self._serial_fallback(tasks, results, index)
                break
            submitted = [
                (index, executor.submit(self._worker_fn, tasks[index]))
                for index in pending
            ]
            self.stats.tasks += len(submitted)
            telemetry.count("parallel.tasks", len(submitted))
            retry: list[int] = []
            pool_broke = False
            for index, future in submitted:
                try:
                    chunk: ChunkResult = future.result(timeout=self.task_timeout)
                except concurrent.futures.TimeoutError:
                    self.stats.timeouts += 1
                    telemetry.count("parallel.timeouts")
                    future.cancel()
                    # A worker stuck past its budget poisons the queue;
                    # retire the executor and answer from the parent.
                    self._retire_executor()
                    self._serial_fallback(tasks, results, index)
                except BrokenProcessPool:
                    if not pool_broke:
                        pool_broke = True
                        self.stats.broken_pools += 1
                        telemetry.count("parallel.broken_pools")
                    self._retire_executor()
                    self._schedule_retry(tasks, results, attempts, retry, index)
                except concurrent.futures.CancelledError:
                    # Cancelled alongside a retired executor: just retry.
                    self._schedule_retry(tasks, results, attempts, retry, index)
                except Exception:
                    self.stats.worker_errors += 1
                    telemetry.count("parallel.worker_errors")
                    self._schedule_retry(tasks, results, attempts, retry, index)
                else:
                    self.stats.completed += 1
                    telemetry.count("parallel.completed")
                    self._record_chunk(tasks[index], chunk)
                    results[index] = chunk.payload
            if retry:
                round_number = max(attempts[index] for index in retry)
                time.sleep(self.retry_backoff * (2 ** (round_number - 1)))
            pending = retry
        # Every index completed, fell back, or was retried to one of those
        # ends, so all slots are filled; chunk (= corpus) order preserved.
        return list(results)

    def _schedule_retry(self, tasks, results, attempts, retry, index) -> None:
        attempts[index] += 1
        if attempts[index] <= self.max_retries:
            self.stats.retries += 1
            telemetry.count("parallel.retries")
            retry.append(index)
        else:
            self._serial_fallback(tasks, results, index)

    def _serial_fallback(self, tasks, results, index) -> None:
        result = execute_chunk(tasks[index])
        self.stats.serial_fallbacks += 1
        telemetry.count("parallel.serial_fallbacks")
        self._record_chunk(tasks[index], result)
        results[index] = result.payload
