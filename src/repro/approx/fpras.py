"""FPRAS (ε, δ) confidence estimation for the #P-hard Table-2 cells.

The general/nondeterministic cells of Table 2 are FP^#P-complete
(Theorem 4.9): ``conf(o)`` is the probability that the Markov sequence
emits a world with at least one accepting run of the answer product
(:mod:`repro.approx.product`). Brute force enumerates all |Σ|^n worlds;
this module gets a certified (1±ε) answer in polynomial samples via the
Karp–Luby union-of-runs scheme, the shape "#NFA admits an FPRAS"
(Arenas, Croquevielle, Jayaram, Riveros) proves approximable:

1. **Run weight** Σ = E[#accepting runs] — exact dynamic program over
   (sequence symbol, product state) pairs, a polynomial-size sum that
   *overcounts* the confidence by each world's ambiguity.
2. **Self-reducible sampling** — draw accepting (world, run) pairs
   exactly proportionally to their weight, walking the same DP forward
   with backward weights as conditionals.
3. **Union of runs** — score a sampled pair 1 only when its run is the
   world's *canonical* accepting run. Each accepted world then
   contributes exactly once, so E[score] = conf/Σ and the estimate
   Σ·mean(score) is unbiased. The success rate is ≥ 1/ambiguity, so
   polynomially-ambiguous products need polynomially many samples.
4. **DKLR stopping rule** (Dagum–Karp–Luby–Ross) — sample until the
   success count reaches Υ = 4(e−2)·ln(2/δ)·(1+ε)/ε², giving
   Pr[|μ̂ − μ| ≤ ε·μ] ≥ 1−δ without knowing μ in advance.

Two free exactness shortcuts: Σ = 0 means conf = 0 with certainty, and a
*deterministic* answer product has at most one run per world, so Σ
already equals the confidence — no sampling at all. The hardness gap
families are deterministic, so on them the "estimator" is exact; genuine
sampling kicks in on ambiguous products (e.g. ``hardness/counting.py``).
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro import telemetry
from repro.approx.product import AnswerProduct, state_key
from repro.errors import ReproError
from repro.markov.sequence import MarkovSequence
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.transducers.transducer import Transducer

#: Worlds repeat heavily on small supports; cache their canonical runs,
#: bounded so adversarial long sequences cannot grow memory unboundedly.
_CANONICAL_CACHE_LIMIT = 65_536


def dklr_target(epsilon: float, delta: float) -> float:
    """Success count Υ₁ required by the DKLR stopping rule.

    Sampling until ``successes ≥ Υ₁`` and returning ``Υ₁ / samples``
    yields an (ε, δ) relative-error estimate of the success probability
    (Dagum–Karp–Luby–Ross 2000, "An optimal algorithm for Monte Carlo
    estimation", stopping rule AA).
    """
    _check_tolerances(epsilon, delta)
    return 1.0 + 4.0 * (math.e - 2.0) * math.log(2.0 / delta) * (1.0 + epsilon) / (
        epsilon * epsilon
    )


def _check_tolerances(epsilon: float, delta: float) -> None:
    # "not 0 < x < 1" also rejects NaN.
    if not 0.0 < epsilon < 1.0:
        raise ReproError("epsilon must satisfy 0 < epsilon < 1")
    if not 0.0 < delta < 1.0:
        raise ReproError("delta must satisfy 0 < delta < 1")
    if epsilon * epsilon == 0.0:
        raise ReproError("epsilon is too small: epsilon**2 underflows to zero")


@dataclass(frozen=True)
class ApproxConfidence:
    """An estimated confidence with its certified error interval.

    ``certified`` is True when the (ε, δ) guarantee holds: with
    probability at least 1−δ (over the sampler's randomness) the exact
    confidence lies in ``[low, high]``. The ``method`` field records how
    the estimate was produced: ``"exact-zero"`` and ``"unambiguous"``
    are exact zero-sample shortcuts, ``"dklr"`` is the certified
    sampling path, and ``"capped"`` hit ``max_samples`` first and only
    carries a weaker additive (Hoeffding) interval.
    """

    estimate: float
    low: float
    high: float
    epsilon: float
    delta: float
    samples: int
    successes: int
    run_weight: float
    certified: bool
    method: str

    @property
    def interval(self) -> tuple[float, float]:
        return (self.low, self.high)

    @property
    def relative_width(self) -> float:
        """Interval width relative to the estimate (0 for exact points)."""
        if self.estimate == 0.0:
            return 0.0 if self.high == self.low else math.inf
        return (self.high - self.low) / self.estimate

    def contains(self, value, slack: float = 1e-12) -> bool:
        """True when ``value`` lies inside the interval (tiny float slack)."""
        return self.low - slack <= float(value) <= self.high + slack

    def __float__(self) -> float:
        return self.estimate

    def describe(self) -> dict:
        """Wire/CLI rendering — plain JSON-safe types only."""
        return {
            "estimate": self.estimate,
            "low": self.low,
            "high": self.high,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "samples": self.samples,
            "successes": self.successes,
            "run_weight": self.run_weight,
            "certified": self.certified,
            "method": self.method,
        }


def _compile_query(query) -> Transducer:
    """Resolve a query object to the transducer the FPRAS runs on."""
    if isinstance(query, IndexedSProjector):
        raise ReproError(
            "indexed s-projectors have an exact polynomial algorithm "
            "(Theorem 5.8); use compute_confidence instead of the FPRAS"
        )
    if isinstance(query, SProjector):
        return query.to_transducer()
    if isinstance(query, Transducer):
        return query
    raise ReproError(f"cannot approximate confidence for query type {type(query).__name__}")


def _run_weight_layers(sequence: MarkovSequence, product: AnswerProduct):
    """Backward accepting-run weights over (symbol, product-state) pairs.

    ``back[i][(s, u)]`` is the expected number of accepting completions
    given the world has symbol ``s`` at position ``i`` (0-based) with
    the product in state ``u``. Returns ``(back, sigma)`` where sigma is
    the total run weight Σ = E[#accepting runs], exact (Fraction) when
    the sequence is exact. Zero-weight entries are dropped so sampling
    never proposes a dead end. All dict orders are deterministic
    (insertion order from the sequence's own dicts and sorted product
    moves), keeping the sampler reproducible across processes.
    """
    n = sequence.length
    # Forward frontiers: which (symbol, state) pairs are reachable.
    # Dicts double as ordered sets — no hash-order nondeterminism.
    front: list[dict] = [dict()]
    for symbol, prob in sequence.initial_support():
        for target in product.moves(product.initial, symbol):
            front[0].setdefault((symbol, target), None)
    for i in range(n - 1):
        grown: dict = {}
        for symbol, state in front[i]:
            for successor, prob in sequence.successors(i + 1, symbol):
                for target in product.moves(state, successor):
                    grown.setdefault((successor, target), None)
        front.append(grown)

    back: list[dict] = [dict() for _ in range(n)]
    for symbol, state in front[n - 1]:
        if product.is_accepting(state):
            back[n - 1][(symbol, state)] = 1
    for i in range(n - 2, -1, -1):
        layer = back[i + 1]
        for symbol, state in front[i]:
            weight = 0
            for successor, prob in sequence.successors(i + 1, symbol):
                for target in product.moves(state, successor):
                    entry = layer.get((successor, target))
                    if entry is not None:
                        weight += prob * entry
            if weight:
                back[i][(symbol, state)] = weight

    sigma = 0
    for symbol, prob in sequence.initial_support():
        for target in product.moves(product.initial, symbol):
            entry = back[0].get((symbol, target))
            if entry is not None:
                sigma += prob * entry
    return back, sigma


def _weighted_pick(choices: list, total: float, rng: random.Random):
    """Draw one ``(item, weight)`` entry proportionally to weight."""
    point = rng.random() * total
    acc = 0.0
    for item, weight in choices:
        acc += weight
        if point < acc:
            return item
    return choices[-1][0]  # float round-off at the top end


class _PairSampler:
    """Draw accepting (world, run) pairs proportionally to run weight.

    The forward walk draws each next (symbol, state) pair with
    probability transition-prob × backward-weight, i.e. the exact
    conditional of the run-weight distribution — self-reducible
    sampling over the same DP that computed Σ. Per-cell float choice
    lists are precomputed lazily and cached.
    """

    def __init__(self, sequence: MarkovSequence, product: AnswerProduct, back: list[dict]):
        self._sequence = sequence
        self._product = product
        self._back = back
        self._first: list | None = None
        self._first_total = 0.0
        self._choices: dict[tuple, tuple[list, float]] = {}

    def _first_choices(self):
        if self._first is None:
            layer = self._back[0]
            choices = []
            for symbol, prob in self._sequence.initial_support():
                for target in self._product.moves(self._product.initial, symbol):
                    entry = layer.get((symbol, target))
                    if entry is not None:
                        choices.append(((symbol, target), float(prob * entry)))
            self._first = choices
            self._first_total = sum(weight for _, weight in choices)
        return self._first, self._first_total

    def _step_choices(self, i: int, symbol, state):
        key = (i, symbol, state)
        cached = self._choices.get(key)
        if cached is None:
            layer = self._back[i + 1]
            choices = []
            for successor, prob in self._sequence.successors(i + 1, symbol):
                for target in self._product.moves(state, successor):
                    entry = layer.get((successor, target))
                    if entry is not None:
                        choices.append(((successor, target), float(prob * entry)))
            cached = (choices, sum(weight for _, weight in choices))
            self._choices[key] = cached
        return cached

    def sample(self, rng: random.Random) -> tuple[tuple, tuple]:
        """One (world, run) pair; the world always has ≥ 1 accepting run."""
        choices, total = self._first_choices()
        symbol, state = _weighted_pick(choices, total, rng)
        world = [symbol]
        run = [state]
        for i in range(self._sequence.length - 1):
            choices, total = self._step_choices(i, symbol, state)
            symbol, state = _weighted_pick(choices, total, rng)
            world.append(symbol)
            run.append(state)
        return tuple(world), tuple(run)


def approximate_confidence(
    sequence: MarkovSequence,
    query,
    answer: Sequence,
    *,
    epsilon: float = 0.1,
    delta: float = 0.05,
    seed: int | None = None,
    rng: random.Random | None = None,
    max_samples: int | None = None,
    exact_shortcut: bool = True,
) -> ApproxConfidence:
    """Estimate ``conf(answer)`` to relative error ε with probability 1−δ.

    Parameters
    ----------
    sequence, query, answer:
        As in :func:`repro.confidence.brute_force.brute_force_confidence`;
        ``query`` may be a transducer or a (non-indexed) s-projector.
    epsilon, delta:
        Relative error and failure probability, both in (0, 1).
    seed, rng:
        Randomness: pass an explicit ``rng`` or a ``seed`` for a private
        ``random.Random(seed)``. Mutually exclusive.
    max_samples:
        Hard cap on samples drawn. Defaults to 64× the DKLR success
        target; hitting the cap downgrades to an uncertified additive
        (Hoeffding) interval with ``method="capped"``.
    exact_shortcut:
        When True (default), a deterministic answer product returns the
        run weight itself as an exact zero-sample answer. Set False to
        force the sampling path (used by the conformance suite to
        exercise the estimator on instances that would short-circuit).
    """
    target = dklr_target(epsilon, delta)  # validates epsilon/delta
    if rng is not None and seed is not None:
        raise ReproError("pass either rng or seed, not both")
    if max_samples is None:
        max_samples = math.ceil(64.0 * target)
    if max_samples < 1:
        raise ReproError("max_samples must be at least 1")

    transducer = _compile_query(query)
    transducer.check_alphabet(sequence.symbols)
    product = AnswerProduct(transducer, answer)

    with telemetry.span("approx.estimate"):
        telemetry.count("approx.estimates")
        back, sigma = _run_weight_layers(sequence, product)
        sigma_float = float(sigma)

        if sigma == 0:
            # No accepting run anywhere: conf is exactly 0, and there is
            # nothing to sample from — this path holds even when
            # exact_shortcut is disabled.
            telemetry.count("approx.exact_zero")
            telemetry.observe("approx.interval_width", 0.0)
            return ApproxConfidence(
                estimate=0.0, low=0.0, high=0.0,
                epsilon=epsilon, delta=delta, samples=0, successes=0,
                run_weight=0.0, certified=True, method="exact-zero",
            )

        if exact_shortcut and product.is_deterministic(sequence.symbols):
            # ≤ 1 run per world ⇒ Σ counts each accepting world once ⇒
            # Σ is the confidence, exactly.
            telemetry.count("approx.unambiguous")
            telemetry.observe("approx.interval_width", 0.0)
            return ApproxConfidence(
                estimate=sigma_float, low=sigma_float, high=sigma_float,
                epsilon=epsilon, delta=delta, samples=0, successes=0,
                run_weight=sigma_float, certified=True, method="unambiguous",
            )

        if rng is None:
            rng = random.Random(seed)
        sampler = _PairSampler(sequence, product, back)
        canonical: dict[tuple, tuple] = {}
        successes = 0
        samples = 0
        while successes < target and samples < max_samples:
            world, run = sampler.sample(rng)
            samples += 1
            least = canonical.get(world)
            if least is None:
                least = product.canonical_run(world)
                if len(canonical) < _CANONICAL_CACHE_LIMIT:
                    canonical[world] = least
            if run == least:
                successes += 1
        telemetry.count("approx.samples", samples)

        upper = min(sigma_float, 1.0)
        if successes >= target:
            telemetry.count("approx.early_stop")
            mean = target / samples
            estimate = sigma_float * mean
            low = estimate / (1.0 + epsilon)
            high = min(estimate / (1.0 - epsilon), upper)
            estimate = min(max(estimate, low), high)
            certified = True
            method = "dklr"
        else:
            # Cap hit: fall back to the plain mean with an additive
            # Hoeffding bound — honest but uncertified relative error.
            mean = successes / samples
            half = math.sqrt(math.log(2.0 / delta) / (2.0 * samples))
            estimate = min(sigma_float * mean, upper)
            low = max(sigma_float * (mean - half), 0.0)
            high = min(sigma_float * (mean + half), upper)
            certified = False
            method = "capped"
        telemetry.observe("approx.interval_width", high - low)
        return ApproxConfidence(
            estimate=estimate, low=low, high=high,
            epsilon=epsilon, delta=delta, samples=samples, successes=successes,
            run_weight=sigma_float, certified=certified, method=method,
        )


__all__ = [
    "ApproxConfidence",
    "AnswerProduct",
    "approximate_confidence",
    "dklr_target",
    "state_key",
]
