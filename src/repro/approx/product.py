"""The answer product: transducer × one fixed answer (the #NFA shape).

The confidence of an answer ``o`` for a nondeterministic transducer is
the probability that the Markov sequence emits a world with *at least
one* accepting run producing ``o``. Fixing ``o`` turns the transducer
into an ordinary NFA over the input alphabet — the **answer product** —
whose states are pairs ``(q, j)``: transducer state ``q`` having emitted
exactly the first ``j`` symbols of ``o`` so far. A move on input ``s``
follows each transducer move ``(q', e) ∈ moves(q, s)`` whose emission
``e`` extends the answer prefix (``o[j : j + |e|] == e``); a product
state accepts when ``q`` accepts and all of ``o`` has been emitted.

``conf(o)`` is then exactly the acceptance probability of this NFA under
the Markov measure — the quantity "#NFA admits an FPRAS" (Arenas et al.)
shows is approximable. The hardness is *ambiguity*: a world may carry
several accepting runs, and summing run weights overcounts it. The
union-of-runs fix used by :mod:`repro.approx.fpras` needs one canonical
representative per accepted world, which this module provides:
:meth:`AnswerProduct.canonical_run` returns the unique least accepting
run under a deterministic total order, computed greedily against
backward viability sets (no enumeration of the run set).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.transducers.transducer import Transducer

Symbol = Hashable
#: A product state: (transducer state, answer symbols emitted so far).
ProductState = tuple


def state_key(state: ProductState) -> tuple:
    """Deterministic total order on product states.

    Keyed on ``(emitted, repr(q))`` — ``repr`` because transducer states
    are arbitrary hashables; the order must be stable across processes
    (no ``hash``, which ``PYTHONHASHSEED`` perturbs).
    """
    q, emitted = state
    return (emitted, repr(q))


class AnswerProduct:
    """The NFA ``transducer × answer`` with canonical-run support."""

    __slots__ = ("transducer", "answer", "initial", "_length", "_moves")

    def __init__(self, transducer: Transducer, answer: Sequence) -> None:
        self.transducer = transducer
        self.answer = tuple(answer)
        self._length = len(self.answer)
        self.initial: ProductState = (transducer.nfa.initial, 0)
        self._moves: dict[tuple, tuple[ProductState, ...]] = {}

    def moves(self, state: ProductState, symbol: Symbol) -> tuple[ProductState, ...]:
        """Successor product states on ``symbol``, sorted by :func:`state_key`.

        Memoized per ``(state, symbol)`` — the innermost call of the
        FPRAS's dynamic programs, exactly like ``Transducer.moves``.
        """
        key = (state, symbol)
        cached = self._moves.get(key)
        if cached is None:
            q, emitted = state
            targets = []
            for target, emission in self.transducer.moves(q, symbol):
                grown = emitted + len(emission)
                if grown <= self._length and self.answer[emitted:grown] == emission:
                    targets.append((target, grown))
            targets.sort(key=state_key)
            cached = tuple(targets)
            self._moves[key] = cached
        return cached

    def is_accepting(self, state: ProductState) -> bool:
        q, emitted = state
        return emitted == self._length and q in self.transducer.nfa.accepting

    def is_deterministic(self, alphabet: Iterable[Symbol]) -> bool:
        """True when every reachable product state has ≤ 1 move per symbol.

        A deterministic product has at most one run per world, so the
        run-weight DP already *is* the confidence — the FPRAS's exact
        shortcut. (Determinism is sufficient for unambiguity, not
        necessary; a nondeterministic-but-unambiguous product just takes
        the sampling path, which remains correct.)
        """
        symbols = tuple(alphabet)
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for symbol in symbols:
                targets = self.moves(state, symbol)
                if len(targets) > 1:
                    return False
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        return True

    def viable_sets(self, world: Sequence[Symbol]) -> list[set]:
        """Per-position sets of states on some accepting run of ``world``.

        ``viable[i]`` holds the product states reachable after ``i``
        input symbols from which acceptance at position ``n`` is still
        possible — the backward pruning that makes the greedy canonical
        run correct without enumerating runs.
        """
        n = len(world)
        layers: list[set] = [{self.initial}]
        for symbol in world:
            grown: set = set()
            for state in layers[-1]:
                grown.update(self.moves(state, symbol))
            layers.append(grown)
        viable: list[set] = [set() for _ in range(n + 1)]
        viable[n] = {state for state in layers[n] if self.is_accepting(state)}
        for i in range(n - 1, -1, -1):
            viable[i] = {
                state
                for state in layers[i]
                if any(target in viable[i + 1] for target in self.moves(state, world[i]))
            }
        return viable

    def canonical_run(self, world: Sequence[Symbol]) -> tuple | None:
        """The least accepting run on ``world`` under :func:`state_key`.

        Greedy forward choice restricted to viable states picks, at each
        position, the smallest successor that can still reach acceptance;
        the result is the lexicographically least accepting run. Returns
        None when ``world`` has no accepting run at all.
        """
        viable = self.viable_sets(world)
        if self.initial not in viable[0]:
            return None
        run = []
        state = self.initial
        for i, symbol in enumerate(world):
            # moves() is sorted by state_key, so the first viable
            # successor is the least one.
            state = next(
                target for target in self.moves(state, symbol) if target in viable[i + 1]
            )
            run.append(state)
        return tuple(run)

    def count_runs(self, world: Sequence[Symbol]) -> int:
        """Exact number of accepting runs on ``world`` (the ambiguity).

        Used by tests and referees; the estimator itself never needs it.
        """
        counts: dict[ProductState, int] = {self.initial: 1}
        for symbol in world:
            grown: dict[ProductState, int] = {}
            for state, count in counts.items():
                for target in self.moves(state, symbol):
                    grown[target] = grown.get(target, 0) + count
            counts = grown
        return sum(count for state, count in counts.items() if self.is_accepting(state))
