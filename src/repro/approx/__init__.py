"""FPRAS-style (ε, δ) confidence estimation for the #P-hard cells.

See :mod:`repro.approx.fpras` for the estimator and
:mod:`repro.approx.product` for the answer-product automaton it
samples over.
"""

from repro.approx.fpras import (
    AnswerProduct,
    ApproxConfidence,
    approximate_confidence,
    dklr_target,
    state_key,
)

__all__ = [
    "AnswerProduct",
    "ApproxConfidence",
    "approximate_confidence",
    "dklr_target",
    "state_key",
]
