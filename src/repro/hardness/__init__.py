"""Executable lower-bound constructions (Theorems 4.4, 4.5, 4.9, 5.3).

The paper's negative results are reductions; their measurable content is
the growth of approximation ratios and of required work. This subpackage
provides instance generators realizing each phenomenon (see DESIGN.md for
what is faithful reduction vs. engineered gap family):

* :mod:`gap_instances` — families where the ``E_max`` heuristic's top
  answer has confidence an exponential factor below the true top
  (Theorems 4.4/4.5), including the paper's amplification construction;
* :mod:`counting` — the Proposition 4.7 reduction from counting
  ``|L(A) ∩ Sigma^n|`` (non-selective, 1-uniform transducer), composed
  with a monotone bipartite 2-DNF model-counting front end (Theorem 4.9's
  source problem);
* :mod:`max3dnf` — max-3-DNF instances, the source problem of
  Theorems 4.4/4.5;
* :mod:`independent_set` — s-projector families exhibiting the
  ``conf / I_max`` gap approaching the factor ``n`` (Theorem 5.3's regime),
  built from independent-set-style interval conflicts.
"""

from repro.hardness.gap_instances import (
    amplified_gap_instance,
    mealy_gap_instance,
    projector_gap_instance,
)
from repro.hardness.counting import (
    dnf_to_nfa,
    nfa_counting_instance,
    two_dnf_counting_instance,
)
from repro.hardness.max3dnf import Max3DnfInstance, random_3dnf
from repro.hardness.independent_set import occurrence_gap_instance

__all__ = [
    "mealy_gap_instance",
    "projector_gap_instance",
    "amplified_gap_instance",
    "nfa_counting_instance",
    "dnf_to_nfa",
    "two_dnf_counting_instance",
    "Max3DnfInstance",
    "random_3dnf",
    "occurrence_gap_instance",
]
