"""max-3-DNF: the source problem of Theorems 4.4 and 4.5.

Both inapproximability theorems reduce from max-3-DNF — maximize the
number of satisfied conjunctive clauses of three literals — which admits
no efficient 7/8-approximation unless P = NP. This module supplies the
problem itself (instances, exact and greedy solvers), so the benchmark
harness can exhibit the reduction pipeline's source side and the
amplification arithmetic of Section 4.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product

from repro.errors import ReproError

#: A literal is ``(variable_index, polarity)``; polarity True = positive.
Literal = tuple[int, bool]
Clause = tuple[Literal, Literal, Literal]


@dataclass(frozen=True)
class Max3DnfInstance:
    """A 3-DNF formula: a disjunction of 3-literal conjunctions."""

    num_vars: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if len(clause) != 3:
                raise ReproError(f"clause {clause!r} does not have 3 literals")
            for var, _polarity in clause:
                if not 0 <= var < self.num_vars:
                    raise ReproError(f"variable {var} out of range")

    def clause_satisfied(self, clause: Clause, assignment: tuple[bool, ...]) -> bool:
        """A conjunctive clause holds iff all three literals hold."""
        return all(assignment[var] == polarity for var, polarity in clause)

    def num_satisfied(self, assignment: tuple[bool, ...]) -> int:
        """Number of clauses the assignment satisfies."""
        if len(assignment) != self.num_vars:
            raise ReproError("assignment length mismatch")
        return sum(
            1 for clause in self.clauses if self.clause_satisfied(clause, assignment)
        )

    def optimum(self) -> tuple[int, tuple[bool, ...]]:
        """Exact max-3-DNF by exhaustive search (exponential; tests only)."""
        best_count = -1
        best_assignment: tuple[bool, ...] = ()
        for bits in product((False, True), repeat=self.num_vars):
            count = self.num_satisfied(bits)
            if count > best_count:
                best_count, best_assignment = count, bits
        return best_count, best_assignment

    def greedy(self) -> tuple[int, tuple[bool, ...]]:
        """A simple greedy baseline: fix variables one by one, keeping the
        choice that maximizes the expected number of satisfiable clauses
        under uniform completion (a 1/8-guarantee style heuristic)."""
        assignment: list[bool | None] = [None] * self.num_vars

        def expected(partial: list[bool | None]) -> float:
            total = 0.0
            for clause in self.clauses:
                prob = 1.0
                for var, polarity in clause:
                    value = partial[var]
                    if value is None:
                        prob *= 0.5
                    elif value != polarity:
                        prob = 0.0
                        break
                total += prob
            return total

        for var in range(self.num_vars):
            assignment[var] = True
            with_true = expected(assignment)
            assignment[var] = False
            with_false = expected(assignment)
            assignment[var] = with_true >= with_false
        final = tuple(bool(v) for v in assignment)
        return self.num_satisfied(final), final


def random_3dnf(num_vars: int, num_clauses: int, rng: random.Random) -> Max3DnfInstance:
    """A random 3-DNF instance with distinct variables per clause."""
    if num_vars < 3:
        raise ReproError("need at least 3 variables")
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(num_vars), 3)
        clause = tuple((var, rng.random() < 0.5) for var in variables)
        clauses.append(clause)
    return Max3DnfInstance(num_vars, tuple(clauses))
