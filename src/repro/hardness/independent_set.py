"""s-projector gap families (Theorem 5.3's regime).

Theorem 5.3 (from independent set): even for a fixed *simple* s-projector
``[*]A[*]``, approximating the top answer within ``n^{1/2 - delta}`` is
hard, so the factor-``n`` guarantee of the ``I_max`` order (Theorem 5.2)
cannot be improved to a constant or logarithm. The measurable content is
the gap ``conf(o) / I_max(o)``, which can approach ``n``: an answer with
many disjoint low-probability occurrences aggregates confidence the
best-single-occurrence score cannot see.

:func:`occurrence_gap_instance` builds the canonical such family — a
fixed two-symbol-pattern projector over an i.i.d. sequence where the
pattern has ``~n`` potential occurrences of probability ``~p^2`` each —
realizing ratios ``Theta(n)`` as ``p → 0``. The benchmarks sweep ``n``
and verify Proposition 5.9's sandwich ``I_max <= conf <= n * I_max`` on
random instances as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import ReproError
from repro.markov.builders import iid
from repro.markov.sequence import MarkovSequence
from repro.automata.dfa import DFA
from repro.automata.operations import sigma_star
from repro.transducers.sprojector import SProjector


@dataclass(frozen=True)
class OccurrenceGapInstance:
    """A simple s-projector instance with a many-occurrence answer."""

    sequence: MarkovSequence
    projector: SProjector
    answer: tuple

    @property
    def n(self) -> int:
        return self.sequence.length


def occurrence_gap_instance(
    n: int, match_prob: Fraction = Fraction(1, 20)
) -> OccurrenceGapInstance:
    """A simple s-projector whose top answer has ``~n`` equal occurrences.

    Alphabet ``{a, b, c}``; positions i.i.d. with ``P(a) = P(b) = p`` and
    ``P(c) = 1 - 2p``; the pattern DFA accepts exactly ``ab``. The answer
    ``(a, b)`` has ``n - 1`` possible start positions, each of confidence
    ``p^2`` (times the free prefix/suffix mass, which is 1 for the simple
    projector), while ``I_max`` is a single occurrence's confidence — the
    union bound makes ``conf / I_max → (n-1)`` as ``p → 0``.
    """
    if n < 2:
        raise ReproError("need n >= 2 for the pattern to occur")
    p = match_prob
    if not 0 < p < Fraction(1, 2):
        raise ReproError("match_prob must be in (0, 1/2)")
    sequence = iid({"a": p, "b": p, "c": 1 - 2 * p}, n)
    alphabet = ("a", "b", "c")
    # Pattern DFA accepting exactly the string "ab".
    delta = {
        ("s0", "a"): "s1",
        ("s0", "b"): "dead",
        ("s0", "c"): "dead",
        ("s1", "a"): "dead",
        ("s1", "b"): "s2",
        ("s1", "c"): "dead",
        ("s2", "a"): "dead",
        ("s2", "b"): "dead",
        ("s2", "c"): "dead",
        ("dead", "a"): "dead",
        ("dead", "b"): "dead",
        ("dead", "c"): "dead",
    }
    pattern = DFA(alphabet, {"s0", "s1", "s2", "dead"}, "s0", {"s2"}, delta)
    projector = SProjector(sigma_star(alphabet), pattern, sigma_star(alphabet))
    return OccurrenceGapInstance(sequence, projector, ("a", "b"))
