"""The counting connection (Proposition 4.7 / Theorem 4.9's source problem).

Proposition 4.7: computing the confidence of an answer for a
nondeterministic transducer is FP^#P-complete, already for non-selective,
1-uniform transducers — by reduction from counting ``|L(A) ∩ Sigma^n|``
(#P-complete, Kannan–Sweedyk–Mahaney). :func:`nfa_counting_instance`
implements that reduction faithfully: it produces a non-selective
1-uniform transducer and an answer whose confidence, under the uniform
i.i.d. Markov sequence, equals ``|L(A) ∩ Sigma^n| / |Sigma|^n``.

Theorem 4.9's source problem — counting models of a monotone bipartite
2-DNF — composes with it: :func:`dnf_to_nfa` encodes the satisfying
assignments of such a formula as a regular language of fixed-length bit
strings, giving an executable end-to-end chain

    #2-DNF models  →  |L(A) ∩ {0,1}^n|  →  confidence computation.

(The theorem's stronger statement fixes one 3-state transducer; our
transducer grows with the NFA — see the substitution note in DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product

from repro.errors import ReproError
from repro.markov.builders import uniform_iid
from repro.markov.sequence import MarkovSequence
from repro.automata.nfa import NFA
from repro.transducers.transducer import Transducer


@dataclass(frozen=True)
class CountingInstance:
    """Output of the Proposition 4.7 reduction.

    ``confidence(answer) * scale`` equals the number being counted.
    """

    sequence: MarkovSequence
    transducer: Transducer
    answer: tuple
    scale: int


def nfa_counting_instance(nfa: NFA, n: int) -> CountingInstance:
    """Reduce counting ``|L(nfa) ∩ Sigma^n|`` to a confidence computation.

    Construction: layer the NFA by position and keep only states
    co-accessible to acceptance at layer ``n`` — then *every* complete
    layered run is accepting. The transducer's layered transitions emit
    ``1``; every state also falls to an absorbing ``dead`` state emitting
    ``0`` (making the machine non-selective and total). Under the uniform
    i.i.d. sequence of length ``n``,

        conf(1^n) = Pr(some accepting run)  =  |L ∩ Sigma^n| / |Sigma|^n.
    """
    if n < 1:
        raise ReproError("need n >= 1")
    alphabet = sorted(nfa.alphabet, key=repr)

    # Backward co-accessibility per layer: kept[i] can reach F in n-i steps.
    kept: list[set] = [set() for _ in range(n + 1)]
    kept[n] = set(nfa.accepting)
    for i in range(n - 1, -1, -1):
        for state in nfa.states:
            if any(
                nfa.successors(state, symbol) & kept[i + 1] for symbol in alphabet
            ):
                kept[i].add(state)

    delta: dict[tuple, set] = {}
    omega: dict[tuple, tuple] = {}
    states: set = {"dead"}
    initial = ("L", nfa.initial, 0)
    states.add(initial)

    def fall_to_dead(state) -> None:
        for symbol in alphabet:
            delta.setdefault((state, symbol), set()).add("dead")
            omega[(state, symbol, "dead")] = ("0",)

    fall_to_dead("dead")
    fall_to_dead(initial)

    frontier = [initial] if nfa.initial in kept[0] else []
    seen = set(frontier)
    while frontier:
        state = frontier.pop()
        _tag, q, i = state
        if i == n:
            continue
        for symbol in alphabet:
            for q2 in nfa.successors(q, symbol) & kept[i + 1]:
                target = ("L", q2, i + 1)
                delta.setdefault((state, symbol), set()).add(target)
                omega[(state, symbol, target)] = ("1",)
                if target not in states:
                    states.add(target)
                    fall_to_dead(target)
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)

    transducer_nfa = NFA(alphabet, states, initial, states, delta)  # non-selective
    transducer = Transducer(transducer_nfa, omega)
    sequence = uniform_iid(alphabet, n, exact=True)
    return CountingInstance(
        sequence=sequence,
        transducer=transducer,
        answer=("1",) * n,
        scale=len(alphabet) ** n,
    )


def dnf_to_nfa(clauses: list[tuple[int, int]], nx: int, ny: int) -> NFA:
    """Encode a monotone bipartite 2-DNF as an NFA over ``{'0', '1'}``.

    The formula is ``OR_{(i,j) in clauses} (x_i AND y_j)`` with ``i`` in
    ``1..nx`` and ``j`` in ``1..ny``. Its models, written as bit strings
    ``x_1 .. x_nx y_1 .. y_ny``, form the language of the returned NFA:
    the automaton guesses a clause up front and checks the two required
    positions carry ``1``.
    """
    length = nx + ny
    for i, j in clauses:
        if not (1 <= i <= nx and 1 <= j <= ny):
            raise ReproError(f"clause ({i},{j}) out of range")
    triples = []
    for c, (i, j) in enumerate(clauses):
        required = {i, nx + j}
        # States (c, pos) after reading pos bits.
        for pos in range(length):
            for bit in ("0", "1"):
                if pos + 1 in required and bit == "0":
                    continue
                source = ("c", c, pos) if pos > 0 else "start"
                triples.append((source, bit, ("c", c, pos + 1)))
    accepting = {("c", c, length) for c in range(len(clauses))}
    return NFA.from_transitions(("0", "1"), "start", accepting, triples)


def count_dnf_models(clauses: list[tuple[int, int]], nx: int, ny: int) -> int:
    """Brute-force model count of the monotone bipartite 2-DNF (oracle)."""
    count = 0
    for bits in product((0, 1), repeat=nx + ny):
        if any(bits[i - 1] and bits[nx + j - 1] for i, j in clauses):
            count += 1
    return count


def two_dnf_counting_instance(
    clauses: list[tuple[int, int]], nx: int, ny: int
) -> CountingInstance:
    """End-to-end Theorem 4.9 chain: #2-DNF models as a confidence value.

    The returned instance satisfies
    ``confidence(answer) * scale == count_dnf_models(clauses, nx, ny)``
    (with exact rational arithmetic), where the confidence must be
    computed for a *nondeterministic* transducer — the computation the
    theorem proves FP^#P-complete.
    """
    nfa = dnf_to_nfa(clauses, nx, ny)
    return nfa_counting_instance(nfa, nx + ny)


def exact_count_via_confidence(instance: CountingInstance, confidence: Fraction) -> int:
    """Recover the integer count from a computed confidence."""
    value = confidence * instance.scale
    if value.denominator != 1:
        raise ReproError(f"confidence {confidence} does not scale to an integer")
    return int(value)
