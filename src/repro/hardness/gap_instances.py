"""Gap families for the inapproximability results (Theorems 4.4 / 4.5).

Both theorems say: no polynomial algorithm finds a top answer within a
``2^{n^{1-delta}}`` factor of the best confidence — already for a 1-state
Mealy machine (Thm 4.4) and for a fixed 1-state deterministic projector
over a 4-symbol alphabet (Thm 4.5). The engine of both is *collapsing*:
when many worlds map to one answer, the answer's confidence aggregates
masses the best-single-evidence heuristic cannot see.

These generators build instances where the gap between the true top
confidence and the confidence of the ``E_max``-top answer grows as
``c^n`` — the shape of the lower bound, checkable by brute force on small
``n`` and extrapolated by the benchmarks on larger ``n`` (where both
quantities are still computable in closed form for these instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import ReproError
from repro.markov.builders import iid
from repro.markov.sequence import MarkovSequence
from repro.automata.dfa import DFA
from repro.transducers.library import collapse_transducer, projector_from_dfa
from repro.transducers.transducer import Transducer


@dataclass(frozen=True)
class GapInstance:
    """A hardness instance with its analytically known gap.

    Attributes
    ----------
    sequence, query:
        The instance itself.
    emax_top_answer:
        The answer the ``E_max`` heuristic ranks first.
    emax_top_confidence:
        Its true confidence (closed form).
    best_answer:
        An answer whose confidence witnesses the gap (for the Mealy family
        it is the exact top answer; for the projector family it is a
        near-top binomial-mode answer).
    best_confidence:
        Its confidence (closed form).
    """

    sequence: MarkovSequence
    query: Transducer
    emax_top_answer: tuple
    emax_top_confidence: Fraction
    best_answer: tuple
    best_confidence: Fraction

    @property
    def ratio(self) -> Fraction:
        """The approximation ratio the heuristic incurs on this instance."""
        return self.best_confidence / self.emax_top_confidence


def mealy_gap_instance(
    n: int, group_size: int = 4, heavy: Fraction = Fraction(3, 10)
) -> GapInstance:
    """Theorem 4.4 phenomenon: one-state Mealy machine, exponential gap.

    Alphabet ``{a_1 .. a_m, b}`` with ``m = group_size``; positions are
    i.i.d. with ``P(b) = heavy`` and the rest uniform on the ``a_i``. The
    Mealy machine collapses every ``a_i`` to ``A`` and keeps ``b``.

    Choosing ``(1 - heavy) / m < heavy < 1 - heavy`` makes the single most
    likely world ``b^n`` (so the ``E_max``-top answer is ``B^n``, with
    confidence ``heavy^n``) while the answer ``A^n`` has confidence
    ``(1 - heavy)^n`` — a gap of ``((1-heavy)/heavy)^n``, exponential in
    ``n`` with a fixed one-state machine, as the theorem requires.
    """
    m = group_size
    light = (1 - heavy) / m
    if not light < heavy < 1 - heavy:
        raise ReproError(
            "need (1-heavy)/group_size < heavy < 1-heavy for the gap to appear"
        )
    distribution = {f"a{i}": light for i in range(1, m + 1)}
    distribution["b"] = heavy
    sequence = iid(distribution, n)
    query = collapse_transducer(
        {**{f"a{i}": "A" for i in range(1, m + 1)}, "b": "B"}
    )
    # Worlds are i.i.d.; most likely world is b^n since heavy > light.
    return GapInstance(
        sequence=sequence,
        query=query,
        emax_top_answer=("B",) * n,
        emax_top_confidence=heavy**n,
        best_answer=("A",) * n,
        best_confidence=(1 - heavy) ** n,
    )


def projector_gap_instance(n: int, keep_prob: Fraction = Fraction(2, 5)) -> GapInstance:
    """Theorem 4.5 phenomenon: fixed 1-state deterministic projector.

    Alphabet ``{a, b, c, d}`` (``|Sigma| = 4`` as in the theorem);
    positions i.i.d. with ``P(a) = keep_prob`` and ``b, c, d`` sharing the
    rest uniformly. The projector keeps ``a`` and drops the rest, so the
    answers are ``a^k`` with binomial confidences
    ``C(n, k) p^k (1-p)^{n-k}``.

    With ``keep_prob > (1 - keep_prob)/3`` the most likely single world is
    ``a^n``, so the heuristic's top answer is ``a^n`` with confidence
    ``p^n`` — exponentially below the binomial mode ``a^{k*}``.
    """
    p = keep_prob
    other = (1 - p) / 3
    if not other < p:
        raise ReproError("need keep_prob > (1-keep_prob)/3 so the all-a world is modal")
    sequence = iid({"a": p, "b": other, "c": other, "d": other}, n)
    alphabet = ("a", "b", "c", "d")
    dfa = DFA(
        alphabet, {"q"}, "q", {"q"}, {("q", s): "q" for s in alphabet}
    )
    query = projector_from_dfa(dfa, keep={"a"})

    def binom(k: int) -> Fraction:
        from math import comb

        return comb(n, k) * p**k * (1 - p) ** (n - k)

    k_star = max(range(n + 1), key=binom)
    return GapInstance(
        sequence=sequence,
        query=query,
        emax_top_answer=("a",) * n,
        emax_top_confidence=p**n,
        best_answer=("a",) * k_star,
        best_confidence=binom(k_star),
    )


def amplified_gap_instance(base: GapInstance, copies: int) -> GapInstance:
    """The Section 4.2 amplification: concatenate independent copies.

    Concatenating ``c`` independent copies of the Markov sequence turns a
    per-copy gap ``r`` into ``r^c`` (confidences of blockwise answers
    multiply across independent blocks), which is how the paper boosts a
    constant-factor inapproximability to ``2^{n^{1-delta}}``.

    Only valid for the 1-state (position-independent) queries produced by
    the generators in this module, whose answers concatenate blockwise.
    """
    if copies < 1:
        raise ReproError("need at least one copy")
    sequence = base.sequence.power(copies)
    return GapInstance(
        sequence=sequence,
        query=base.query,
        emax_top_answer=base.emax_top_answer * copies,
        emax_top_confidence=base.emax_top_confidence**copies,
        best_answer=base.best_answer * copies,
        best_confidence=base.best_confidence**copies,
    )
