"""Suppression pragmas: ``# repro: allow[RX01] reason`` parsing.

A pragma suppresses findings of the named rule(s) on its own line when
it trails code, or on the next code line when it stands alone. The
reason is mandatory — an unexplained suppression is worse than the
violation, because it survives refactors nobody re-justifies. Malformed
pragmas (unknown rule id, missing reason, unparseable rule list) are
reported as RX00 findings rather than silently ignored, so a typo can
never disable a rule.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.rules.base import META_RULE, Finding

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\b(.*)", re.DOTALL)
_RULES_RE = re.compile(r"^\[([^\]]*)\]\s*(.*)$", re.DOTALL)
_RULE_ID_RE = re.compile(r"^RX\d{2}$")


@dataclass
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    col: int
    rules: tuple[str, ...]
    reason: str
    #: Line the pragma suppresses (the same line, or the next code line
    #: for a standalone comment). Filled in by :func:`parse_pragmas`.
    target_line: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.errors


def _parse_comment(text: str, line: int, col: int, known_rules: set[str]) -> Pragma | None:
    match = _PRAGMA_RE.search(text)
    if match is None:
        return None
    rest = match.group(1).strip()
    errors: list[str] = []
    rules: tuple[str, ...] = ()
    reason = ""
    rules_match = _RULES_RE.match(rest)
    if rules_match is None:
        errors.append("pragma must name rules as allow[RXnn,...]")
    else:
        raw_rules = [part.strip() for part in rules_match.group(1).split(",")]
        reason = rules_match.group(2).strip()
        cleaned = []
        for rule in raw_rules:
            if not rule:
                continue
            if not _RULE_ID_RE.match(rule):
                errors.append(f"malformed rule id {rule!r} in pragma")
            elif rule not in known_rules:
                errors.append(f"unknown rule {rule} in pragma")
            else:
                cleaned.append(rule)
        if not cleaned and not errors:
            errors.append("pragma names no rules")
        rules = tuple(cleaned)
        if not reason:
            errors.append("pragma is missing a reason (# repro: allow[RXnn] <why>)")
    return Pragma(line=line, col=col, rules=rules, reason=reason, errors=errors)


def parse_pragmas(
    source: str, path: str, known_rules: set[str]
) -> tuple[list[Pragma], list[Finding]]:
    """Extract pragmas from ``source`` and resolve their target lines.

    Returns the valid pragmas plus RX00 findings for malformed ones.
    Tokenization errors are swallowed here — the engine already reports
    files that fail to parse.
    """
    comments: list[tuple[int, int, str, bool]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return [], []
    code_lines: set[int] = set()
    for token in tokens:
        if token.type == tokenize.COMMENT:
            standalone = token.line[: token.start[1]].strip() == ""
            comments.append((token.start[0], token.start[1], token.string, standalone))
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
            tokenize.COMMENT,
        ):
            for lineno in range(token.start[0], token.end[0] + 1):
                code_lines.add(lineno)

    pragmas: list[Pragma] = []
    findings: list[Finding] = []
    max_line = max(code_lines, default=0)
    for line, col, text, standalone in comments:
        pragma = _parse_comment(text, line, col, known_rules)
        if pragma is None:
            continue
        if standalone:
            target = line + 1
            while target <= max_line and target not in code_lines:
                target += 1
            pragma.target_line = target
        else:
            pragma.target_line = line
        if pragma.valid:
            pragmas.append(pragma)
        else:
            for error in pragma.errors:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=col + 1,
                        rule=META_RULE,
                        message=error,
                    )
                )
    return pragmas, findings


def apply_pragmas(
    findings: list[Finding], pragmas: list[Pragma]
) -> tuple[list[Finding], list[Pragma]]:
    """Drop findings a pragma covers; return survivors and used pragmas."""
    suppressed_at: dict[int, set[str]] = {}
    for pragma in pragmas:
        suppressed_at.setdefault(pragma.target_line, set()).update(pragma.rules)
    kept: list[Finding] = []
    used_lines: set[int] = set()
    for finding in findings:
        rules = suppressed_at.get(finding.line)
        if rules is not None and finding.rule in rules:
            used_lines.add(finding.line)
        else:
            kept.append(finding)
    used = [p for p in pragmas if p.target_line in used_lines]
    return kept, used
