"""Reporters for lint results: ``repro-lint/1`` JSON and pretty text."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.engine import LintReport

SCHEMA = "repro-lint/1"


def render_json(report: "LintReport") -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=False)


def render_pretty(report: "LintReport") -> str:
    lines = [finding.render() for finding in report.violations]
    counts = report.counts()
    if counts:
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"{len(report.violations)} violation(s) in {report.files} file(s) ({summary})"
        )
    else:
        lines.append(f"clean: {report.files} file(s), 0 violations")
    return "\n".join(lines)
