"""The documented metric catalogue (``docs/OBSERVABILITY.md``) as data.

RX05 needs both directions of the telemetry contract: every metric-name
literal in code is documented, and every documented name is still
emitted somewhere. This module parses the "Metric catalogue" section's
markdown tables into a :class:`MetricRegistry`.

Parsing rules, matching how the catalogue is written:

* only table rows (lines starting ``|``) between ``## Metric
  catalogue`` and the next ``## `` heading count; prose mentioning
  metric names in backticks is ignored;
* only the *first* cell of each row names metrics — later cells may
  quote other names in their "meaning" text;
* a cell listing abbreviated continuations (``` `runtime.plan_cache.hits`
  / `.misses` ``` ) expands each leading-dot form against the most
  recent full name by replacing its trailing segments;
* a first cell containing the word ``span``/``spans`` outside backticks
  declares span paths (``verify/corpus_case``) instead of metric names.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

_CATALOGUE_HEADING = "## Metric catalogue"
_BACKTICKED_RE = re.compile(r"`([^`]+)`")


def _expand(token: str, last_full: str | None) -> str | None:
    """Expand ``.misses`` against ``runtime.plan_cache.hits``."""
    if not token.startswith("."):
        return token
    if last_full is None:
        return None
    suffix_parts = token[1:].split(".")
    base_parts = last_full.split(".")
    if len(suffix_parts) >= len(base_parts):
        return None
    return ".".join(base_parts[: len(base_parts) - len(suffix_parts)] + suffix_parts)


@dataclass
class MetricRegistry:
    """Documented metric names and span paths, with their doc lines."""

    path: str
    #: metric name -> 1-based line in the doc
    metrics: dict[str, int] = field(default_factory=dict)
    #: span path (e.g. ``verify/corpus_case``) -> doc line
    spans: dict[str, int] = field(default_factory=dict)

    @property
    def span_components(self) -> set[str]:
        """Individual segments of the documented span paths.

        ``telemetry.span`` call sites pass one segment; nesting builds
        the ``/``-joined path at runtime, so code literals are matched
        against components as well as full paths.
        """
        parts: set[str] = set()
        for path in self.spans:
            parts.update(path.split("/"))
        return parts

    def documents_metric(self, name: str) -> bool:
        return name in self.metrics

    def documents_span(self, name: str) -> bool:
        return name in self.spans or name in self.span_components

    @classmethod
    def from_file(cls, path: str | Path) -> "MetricRegistry":
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_text(text, str(path))

    @classmethod
    def from_text(cls, text: str, path: str = "OBSERVABILITY.md") -> "MetricRegistry":
        registry = cls(path=path)
        in_catalogue = False
        last_full: str | None = None
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if stripped.startswith("## "):
                in_catalogue = stripped == _CATALOGUE_HEADING
                continue
            if not in_catalogue or not stripped.startswith("|"):
                continue
            cells = [cell.strip() for cell in stripped.strip("|").split("|")]
            if not cells:
                continue
            first = cells[0]
            if not first or set(first) <= {"-", ":", " "} or first.lower() == "name":
                continue
            names = _BACKTICKED_RE.findall(first)
            if not names:
                continue
            outside = _BACKTICKED_RE.sub("", first).lower()
            is_span_row = re.search(r"\bspans?\b", outside) is not None
            for token in names:
                if is_span_row:
                    registry.spans.setdefault(token, lineno)
                    continue
                expanded = _expand(token, last_full)
                if expanded is None:
                    continue
                last_full = expanded
                registry.metrics.setdefault(expanded, lineno)
        return registry


def find_observability_doc(start: str | Path) -> Path | None:
    """Walk up from ``start`` looking for ``docs/OBSERVABILITY.md``."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for candidate_dir in [current, *current.parents]:
        candidate = candidate_dir / "docs" / "OBSERVABILITY.md"
        if candidate.is_file():
            return candidate
    return None
