"""Project-invariant static analysis (the ``repro lint`` gate).

The paper's correctness story rests on invariants no unit test can
guarantee exhaustively: the PTIME Table-2 cells compute in exact
``Fraction`` arithmetic, randomness is certified (and seeded) only in
the FPRAS, the service's event loop never blocks on I/O, shared mutable
state stays behind its lock, and every telemetry metric name is
documented. The oracle of PR 3 only catches what the fuzzer happens to
sample; this package enforces the invariants *statically*, so every
future perf or refactor PR lands against a machine-checked contract
instead of reviewer memory.

Five rules (see ``docs/ANALYSIS.md`` for the full contract):

========  ==========================================================
RX01      exactness-taint: no floats/`math.*` in the exact-Fraction
          modules (``confidence/`` sans ``montecarlo.py``, ``core/``,
          ``runtime/``, ``store/``, ``approx/product.py``)
RX02      async-blocking: no blocking I/O reachable from ``async def``
          bodies in ``serve/`` without an executor hop
RX03      seed-discipline: every RNG is constructed from an explicit
          seed that flows from an argument or derived value
RX04      lock/race: an attribute guarded by a lock somewhere is
          guarded everywhere
RX05      telemetry-registry: metric-name literals and the
          ``docs/OBSERVABILITY.md`` catalogue agree, both directions
========  ==========================================================

Violations are suppressed per line with ``# repro: allow[RULE] reason``
— the reason is mandatory, and malformed pragmas (unknown rule id,
missing reason) are themselves violations (rule RX00).

Programmatic entry points::

    from repro.analysis import lint_paths, lint_source

    report = lint_paths(["src"])          # what `repro lint src` runs
    report.violations                     # list[Finding], sorted
    report.as_dict()                      # the repro-lint/1 JSON form
"""

from __future__ import annotations

from repro.analysis.engine import LintReport, lint_paths, lint_source
from repro.analysis.pragmas import Pragma, parse_pragmas
from repro.analysis.registry_doc import MetricRegistry
from repro.analysis.report import render_json, render_pretty
from repro.analysis.rules import ALL_RULES, Finding, rule_ids

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "MetricRegistry",
    "Pragma",
    "lint_paths",
    "lint_source",
    "parse_pragmas",
    "render_json",
    "render_pretty",
    "rule_ids",
]
