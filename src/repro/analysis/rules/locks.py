"""RX04 — lock/race.

PlanCache counters, pool bookkeeping, and the serve shard state are
mutated from multiple threads/tasks; an attribute that is guarded by a
lock in one method and mutated bare in another is a race the tests will
never reliably reproduce. Per class, this rule collects every
``self.<attr>`` mutation (assignment, augmented assignment, mutating
method call) and whether it happened inside a ``with self._lock`` /
``async with self._locks[...]`` scope. If an attribute has at least one
locked *and* one unlocked mutation site, the unlocked sites are flagged.
``__init__`` is exempt — construction happens-before sharing.

Scope: ``runtime/``, ``parallel/``, ``serve/server.py``, and
``telemetry/metrics.py`` (the registry shared across threads).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.rules.base import FileContext, Finding, Rule

_SCOPE_PREFIXES = ("runtime/", "parallel/")
_SCOPE_FILES = ("serve/server.py", "telemetry/metrics.py")

_MUTATING_METHODS = {
    "append",
    "add",
    "clear",
    "pop",
    "popitem",
    "popleft",
    "appendleft",
    "update",
    "discard",
    "remove",
    "extend",
    "insert",
    "setdefault",
    "move_to_end",
    "difference_update",
    "intersection_update",
    "symmetric_difference_update",
}


def _is_lock_context(expr: ast.expr) -> bool:
    """Does a with-item context expression reference a lock attribute?"""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
    return False


@dataclass
class _Site:
    node: ast.AST
    attr: str
    locked: bool
    kind: str  # "assignment" or "call"


@dataclass
class _ClassState:
    sites: list[_Site] = field(default_factory=list)


class LockRaceRule(Rule):
    rule_id = "RX04"
    title = "lock/race"

    def applies(self, relpath: str) -> bool:
        return relpath in _SCOPE_FILES or relpath.startswith(_SCOPE_PREFIXES)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node))
        return findings

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> list[Finding]:
        state = _ClassState()
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "__init__":
                    continue  # construction happens-before sharing
                collector = _SiteCollector(state)
                for inner in stmt.body:
                    collector.visit(inner)
        guarded = {s.attr for s in state.sites if s.locked}
        bare = {s.attr for s in state.sites if not s.locked}
        racy = guarded & bare
        findings = []
        for site in state.sites:
            if site.locked or site.attr not in racy:
                continue
            findings.append(
                self.finding(
                    ctx,
                    site.node,
                    f"self.{site.attr} is mutated under a lock elsewhere in this "
                    f"class but this {site.kind} is unguarded — wrap it in the "
                    "same lock scope",
                )
            )
        return findings


class _SiteCollector(ast.NodeVisitor):
    """Collects self.<attr> mutation sites with their lock depth."""

    def __init__(self, state: _ClassState) -> None:
        self.state = state
        self._lock_depth = 0

    # Nested defs get their own `self`-binding semantics only if they
    # take self; in this codebase closures over self inside methods run
    # on the same object, so we keep walking into them.

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        locked = any(_is_lock_context(item.context_expr) for item in node.items)
        if locked:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self._lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def _record_targets(self, node: ast.AST, targets: list[ast.expr], kind: str) -> None:
        for target in targets:
            inner = target
            while isinstance(inner, (ast.Subscript, ast.Starred)):
                inner = inner.value
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            ):
                self.state.sites.append(
                    _Site(node=node, attr=inner.attr, locked=self._lock_depth > 0, kind=kind)
                )
            elif isinstance(target, ast.Tuple):
                self._record_targets(node, list(target.elts), kind)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_targets(node, node.targets, "assignment")
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_targets(node, [node.target], "assignment")
        self.visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self.state.sites.append(
                _Site(
                    node=node,
                    attr=func.value.attr,
                    locked=self._lock_depth > 0,
                    kind="call",
                )
            )
        self.generic_visit(node)
