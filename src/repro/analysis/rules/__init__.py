"""The rule set: one module per invariant, assembled for the engine."""

from __future__ import annotations

from repro.analysis.registry_doc import MetricRegistry
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.base import META_RULE, FileContext, Finding, Rule
from repro.analysis.rules.exactness import ExactnessTaintRule
from repro.analysis.rules.locks import LockRaceRule
from repro.analysis.rules.seeds import SeedDisciplineRule
from repro.analysis.rules.telemetry_registry import TelemetryRegistryRule

#: Every shipped rule class, in rule-id order.
ALL_RULES: tuple[type[Rule], ...] = (
    ExactnessTaintRule,
    AsyncBlockingRule,
    SeedDisciplineRule,
    LockRaceRule,
    TelemetryRegistryRule,
)


def rule_ids() -> set[str]:
    """Known rule ids, including the RX00 meta rule (pragma hygiene)."""
    return {META_RULE} | {rule.rule_id for rule in ALL_RULES}


def build_rules(
    registry: MetricRegistry | None,
    reverse_telemetry: bool,
    selected: set[str] | None = None,
) -> list[Rule]:
    """Fresh rule instances for one lint run.

    ``selected`` restricts to a subset of rule ids (RX00 pragma checks
    always run — a malformed pragma must never pass unnoticed).
    """
    rules: list[Rule] = []
    for rule_cls in ALL_RULES:
        if selected is not None and rule_cls.rule_id not in selected:
            continue
        if rule_cls is TelemetryRegistryRule:
            rules.append(TelemetryRegistryRule(registry, reverse_telemetry))
        else:
            rules.append(rule_cls())
    return rules


__all__ = [
    "ALL_RULES",
    "AsyncBlockingRule",
    "ExactnessTaintRule",
    "FileContext",
    "Finding",
    "LockRaceRule",
    "META_RULE",
    "Rule",
    "SeedDisciplineRule",
    "TelemetryRegistryRule",
    "build_rules",
    "rule_ids",
]
