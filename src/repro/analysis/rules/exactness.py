"""RX01 — exactness-taint.

The PTIME cells of the paper's Table 2 are only correct because every
probability flows through exact ``Fraction`` arithmetic; one stray
float silently turns the referee into an estimate. This rule bans float
literals, ``float(...)`` conversions, and ``math.*`` usage inside the
exact zone: ``confidence/`` (except ``montecarlo.py``), ``core/``,
``runtime/``, ``store/``, and ``approx/product.py``. The FPRAS sampler
(``approx/fpras.py``) is the one blessed float zone and sits outside
the scope.

Built-in exemptions (patterns that are float-by-contract, not taint):

* float expressions passed to telemetry recording calls — wall-clock
  metrics are observational, they never touch a probability;
* statements that call ``time.perf_counter``/``monotonic``/… — timing
  instrumentation around the exact math;
* values whose annotation (variable, parameter, or enclosing function
  return type) says ``float`` — an explicitly declared float is a
  reviewed API decision, not silent creep.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import FileContext, Finding, Rule, call_name, dotted_name

_SCOPE_PREFIXES = ("confidence/", "core/", "runtime/", "store/")
_SCOPE_FILES = ("approx/product.py",)
_EXCLUDED = ("confidence/montecarlo.py",)

_TELEMETRY_RECEIVERS = {"telemetry", "recorder"}
_TELEMETRY_METHODS = {"count", "gauge", "observe", "span", "observe_span"}
_CLOCK_CALLS = {
    "time.perf_counter",
    "time.monotonic",
    "time.process_time",
    "time.time",
    "time.perf_counter_ns",
    "time.monotonic_ns",
}


def _is_telemetry_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _TELEMETRY_METHODS:
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id in _TELEMETRY_RECEIVERS
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in _TELEMETRY_RECEIVERS
    return False


def _mentions_clock(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Call) and call_name(sub) in _CLOCK_CALLS for sub in ast.walk(node)
    )


def _annotation_is_float(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name) and sub.id == "float":
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str) and "float" in sub.value:
            return True
    return False


class ExactnessTaintRule(Rule):
    rule_id = "RX01"
    title = "exactness-taint"

    def applies(self, relpath: str) -> bool:
        if relpath in _EXCLUDED:
            return False
        if relpath in _SCOPE_FILES:
            return True
        return relpath.startswith(_SCOPE_PREFIXES)

    def check(self, ctx: FileContext) -> list[Finding]:
        collector = _Collector(self, ctx)
        collector.visit(ctx.tree)
        return collector.findings


class _Collector(ast.NodeVisitor):
    """Walks a module, skipping exempt subtrees, flagging float taint."""

    def __init__(self, rule: ExactnessTaintRule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: list[Finding] = []
        # Whether the innermost enclosing function is annotated -> float.
        self._returns_float: list[bool] = [False]

    # -- exemption plumbing -------------------------------------------

    def _skip_if_clocked(self, node: ast.stmt) -> None:
        if not _mentions_clock(node):
            self.generic_visit(node)

    visit_Expr = _skip_if_clocked
    visit_Assign = _skip_if_clocked
    visit_AugAssign = _skip_if_clocked

    def visit_Return(self, node: ast.Return) -> None:
        if self._returns_float[-1]:
            return
        self._skip_if_clocked(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_is_float(node.annotation):
            return
        if node.value is not None and not _mentions_clock(node):
            self.visit(node.value)

    def _visit_defaults(self, args: ast.arguments) -> None:
        positional = list(args.posonlyargs) + list(args.args)
        offset = len(positional) - len(args.defaults)
        pairs = [
            (arg, args.defaults[i - offset])
            for i, arg in enumerate(positional)
            if i >= offset
        ]
        pairs += [
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ]
        for arg, default in pairs:
            if not _annotation_is_float(arg.annotation):
                self.visit(default)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._visit_defaults(node.args)
        self._returns_float.append(_annotation_is_float(node.returns))
        for stmt in node.body:
            self.visit(stmt)
        self._returns_float.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_defaults(node.args)
        self._returns_float.append(False)
        self.visit(node.body)
        self._returns_float.pop()

    # -- the actual taint checks --------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            self.findings.append(
                self.rule.finding(
                    self.ctx,
                    node,
                    f"float literal {node.value!r} in exact-Fraction zone "
                    "(use Fraction, or move to the blessed FPRAS/montecarlo float zone)",
                )
            )

    def visit_Call(self, node: ast.Call) -> None:
        if _is_telemetry_call(node):
            return  # telemetry values are observational, not probabilities
        if call_name(node) == "float":
            self.findings.append(
                self.rule.finding(
                    self.ctx,
                    node,
                    "float(...) conversion in exact-Fraction zone "
                    "(keep probabilities as Fraction end to end)",
                )
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = dotted_name(node)
        if name is not None and name.startswith("math."):
            self.findings.append(
                self.rule.finding(
                    self.ctx,
                    node,
                    f"{name} in exact-Fraction zone "
                    "(math.* is floating point; exact cells must stay rational)",
                )
            )
            return
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "math":
            self.findings.append(
                self.rule.finding(self.ctx, node, "import from math in exact-Fraction zone")
            )
