"""Shared machinery for analysis rules: findings, contexts, the Rule ABC.

A rule sees one :class:`FileContext` at a time (path, source, parsed
AST) and yields :class:`Finding` records. Rules that need whole-run
state (RX05 cross-checks every file's metric literals against the
documented catalogue) collect during :meth:`Rule.check` and emit the
aggregate from :meth:`Rule.finalize`.

Path scoping works on *package-relative* paths: for a file inside a
``repro`` package directory the context's ``relpath`` is the part after
``repro/`` (``confidence/dense.py``), so rules scope themselves the way
the invariants are stated — by subsystem, not by checkout layout. Tests
inject synthetic locations via ``lint_source(..., virtual_path=...)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

#: Rule id reserved for pragma hygiene and parse failures.
META_RULE = "RX00"


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str
    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


class Rule:
    """Base class for analysis rules.

    Subclasses set ``rule_id`` / ``title`` and implement :meth:`check`.
    A fresh rule instance is built per lint run, so instances may keep
    cross-file state for :meth:`finalize`.
    """

    rule_id: str = META_RULE
    title: str = ""

    def applies(self, relpath: str) -> bool:
        """Whether this rule scopes to ``relpath`` (package-relative)."""
        return True

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finalize(self) -> list[Finding]:
        """Whole-run findings, emitted after every file was checked."""
        return []

    # -- helpers shared by the concrete rules --------------------------

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


def package_relative(path: str) -> str:
    """The path relative to the innermost ``repro`` package directory.

    ``src/repro/confidence/dense.py`` → ``confidence/dense.py``; paths
    outside any ``repro`` directory are returned as given (normalized to
    posix separators), so subsystem-scoped rules simply do not apply to
    them.
    """
    parts = PurePosixPath(path.replace("\\", "/")).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            tail = parts[i + 1 :]
            if tail:
                return "/".join(tail)
    return "/".join(parts)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets, when statically visible."""
    return dotted_name(node.func)
