"""RX03 — seed-discipline.

Determinism is load-bearing everywhere randomness appears: the FPRAS
certificate, pool-merge bit-identity, the oracle shrinker's replayable
corpus, and durable-mode seed journaling all assume every RNG is
constructed from an explicit seed that flows from an argument or a
derived (e.g. sha256) value. This rule flags:

* ``random.Random()`` / ``Random()`` constructed with no seed (or a
  literal ``None`` seed) — OS-entropy seeding, unreproducible;
* calls to the *module-level* global RNG (``random.randint`` etc.) —
  shared hidden state, order-dependent across call sites;
* ``random.seed(...)`` — mutates the global RNG under everyone's feet;
* ``numpy.random.default_rng()`` / ``np.random.<fn>`` with no seed.

The rule is deliberately unscoped: an unseeded RNG is wrong anywhere in
the tree, including test helpers and fixtures.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import FileContext, Finding, Rule, call_name

_GLOBAL_RNG_FNS = {
    "random",
    "randint",
    "randrange",
    "randbytes",
    "getrandbits",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "betavariate",
    "expovariate",
    "gammavariate",
    "gauss",
    "lognormvariate",
    "normalvariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
}

_RNG_CONSTRUCTORS = ("random.Random", "Random", "random.SystemRandom", "SystemRandom")
_NUMPY_RANDOM_PREFIXES = ("numpy.random.", "np.random.")


def _is_unseeded(node: ast.Call) -> bool:
    """No positional seed, or a literal ``None`` seed; kwargs count as seeds."""
    if node.keywords:
        return False
    if not node.args:
        return True
    first = node.args[0]
    return isinstance(first, ast.Constant) and first.value is None


class SeedDisciplineRule(Rule):
    rule_id = "RX03"
    title = "seed-discipline"

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            message = self._violation(name, node)
            if message is not None:
                findings.append(self.finding(ctx, node, message))
        return findings

    def _violation(self, name: str, node: ast.Call) -> str | None:
        if name in _RNG_CONSTRUCTORS:
            if _is_unseeded(node):
                return (
                    f"{name}() constructed without a seed; pass a seed that "
                    "flows from an argument or a derived (sha256) value"
                )
            return None
        if name == "random.seed":
            return (
                "random.seed mutates the shared global RNG; construct a "
                "seeded random.Random(seed) instead"
            )
        if name.startswith("random.") and name[len("random.") :] in _GLOBAL_RNG_FNS:
            return (
                f"{name} uses the unseeded global RNG; draw from a seeded "
                "random.Random(seed) instance"
            )
        if name.startswith(_NUMPY_RANDOM_PREFIXES):
            tail = name.split("random.", 1)[1]
            if tail == "default_rng":
                if _is_unseeded(node):
                    return f"{name}() constructed without a seed"
                return None
            return f"{name} uses numpy's global RNG; use a seeded default_rng(seed) generator"
        return None
