"""RX02 — async-blocking.

``repro serve`` is a single asyncio event loop multiplexing every
connection, standing query, and alert subscriber; one synchronous
``fsync`` or ``time.sleep`` inside an ``async def`` stalls all of them
at once. This rule flags known-blocking calls lexically inside ``async
def`` bodies in ``serve/`` unless they are hopped to an executor
(``asyncio.to_thread`` / ``loop.run_in_executor``). Nested synchronous
``def``s are skipped — they only block if called, and the call site is
what gets flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import FileContext, Finding, Rule, call_name

_BLOCKING_CALLS = {
    "time.sleep": "time.sleep blocks the event loop; use await asyncio.sleep",
    "os.fsync": "os.fsync blocks the event loop; hop via asyncio.to_thread",
    "os.fdatasync": "os.fdatasync blocks the event loop; hop via asyncio.to_thread",
    "os.sync": "os.sync blocks the event loop; hop via asyncio.to_thread",
    "open": "open() does blocking file I/O in an async def; hop via asyncio.to_thread",
    "subprocess.run": "subprocess.run blocks; use asyncio.create_subprocess_exec",
    "subprocess.call": "subprocess.call blocks; use asyncio.create_subprocess_exec",
    "subprocess.check_call": "subprocess.check_call blocks; use asyncio.create_subprocess_exec",
    "subprocess.check_output": "subprocess.check_output blocks; use asyncio.create_subprocess_exec",
    "subprocess.Popen": "subprocess.Popen blocks on pipe I/O; use asyncio subprocesses",
    "socket.socket": "raw sockets block; use asyncio streams",
    "socket.create_connection": "socket.create_connection blocks; use asyncio.open_connection",
}

# Blocking when invoked as a method on anything (Path.write_text, file.fsync, ...).
_BLOCKING_ATTRS = {
    "write_text",
    "write_bytes",
    "read_text",
    "read_bytes",
    "fsync",
}

_EXECUTOR_CALLS = {"asyncio.to_thread"}
_EXECUTOR_ATTRS = {"run_in_executor", "to_thread"}


def _is_executor_hop(node: ast.Call) -> bool:
    name = call_name(node)
    if name in _EXECUTOR_CALLS:
        return True
    func = node.func
    return isinstance(func, ast.Attribute) and func.attr in _EXECUTOR_ATTRS


class AsyncBlockingRule(Rule):
    rule_id = "RX02"
    title = "async-blocking"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("serve/")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                scanner = _BodyScanner(self, ctx)
                for stmt in node.body:
                    scanner.visit(stmt)
                findings.extend(scanner.findings)
        return findings


class _BodyScanner(ast.NodeVisitor):
    """Scans one async body; stops at nested sync/async defs."""

    def __init__(self, rule: AsyncBlockingRule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: list[Finding] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # a nested def only blocks at its call site

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # scanned on its own by the rule's walk

    def visit_Call(self, node: ast.Call) -> None:
        if _is_executor_hop(node):
            return  # args run off-loop by construction
        name = call_name(node)
        if name in _BLOCKING_CALLS:
            self.findings.append(self.rule.finding(self.ctx, node, _BLOCKING_CALLS[name]))
        elif isinstance(node.func, ast.Attribute) and node.func.attr in _BLOCKING_ATTRS:
            self.findings.append(
                self.rule.finding(
                    self.ctx,
                    node,
                    f".{node.func.attr}(...) does blocking I/O in an async def; "
                    "hop via asyncio.to_thread",
                )
            )
        self.generic_visit(node)
