"""RX05 — telemetry-registry.

Dashboards, the bench-regress gate, and `repro stats` all key off
metric names; a renamed counter that nobody re-documents is silent
metric drift (graphs flatline, gates pass vacuously). This rule holds
code and ``docs/OBSERVABILITY.md`` to the same catalogue, both ways:

* **forward** — every metric-name string literal passed to a telemetry
  recording call (``telemetry.count/gauge/observe/span`` and the
  recorder's ``count/gauge/observe/observe_span``) must appear in the
  catalogue (span literals may match a documented path or any
  component of one, since nesting builds paths at runtime);
* **reverse** — every documented metric name must still be emitted by
  some literal in the linted tree. Reverse findings anchor at the
  catalogue line in OBSERVABILITY.md. The engine only enables the
  reverse pass when the lint run covers whole directories — linting a
  single file must not claim the rest of the catalogue is dead.

Dynamic names (f-strings, concatenation) are out of static reach and
are deliberately not flagged; the forward pass covers the plain-literal
idiom every call site in this tree uses.
"""

from __future__ import annotations

import ast

from repro.analysis.registry_doc import MetricRegistry
from repro.analysis.rules.base import FileContext, Finding, Rule

_TELEMETRY_RECEIVERS = {"telemetry", "recorder"}
_METRIC_METHODS = {"count", "gauge", "observe"}
_SPAN_METHODS = {"span", "observe_span"}


def _telemetry_method(node: ast.Call) -> str | None:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in _METRIC_METHODS | _SPAN_METHODS:
        return None
    receiver = func.value
    if isinstance(receiver, ast.Name) and receiver.id in _TELEMETRY_RECEIVERS:
        return func.attr
    if isinstance(receiver, ast.Attribute) and receiver.attr in _TELEMETRY_RECEIVERS:
        return func.attr
    return None


class TelemetryRegistryRule(Rule):
    rule_id = "RX05"
    title = "telemetry-registry"

    def __init__(self, registry: MetricRegistry | None, reverse: bool) -> None:
        self.registry = registry
        self.reverse = reverse
        self._used_metrics: set[str] = set()
        self._used_span_literals: set[str] = set()

    def check(self, ctx: FileContext) -> list[Finding]:
        if self.registry is None:
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            method = _telemetry_method(node)
            if method is None or not node.args:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
                continue  # dynamic names are out of static reach
            name = first.value
            if method in _SPAN_METHODS:
                self._used_span_literals.add(name)
                if not self.registry.documents_span(name):
                    findings.append(
                        self.finding(
                            ctx,
                            first,
                            f"span name {name!r} is not documented in the "
                            f"{self.registry.path} metric catalogue",
                        )
                    )
            else:
                self._used_metrics.add(name)
                if not self.registry.documents_metric(name):
                    findings.append(
                        self.finding(
                            ctx,
                            first,
                            f"metric name {name!r} is not documented in the "
                            f"{self.registry.path} metric catalogue",
                        )
                    )
        return findings

    def finalize(self) -> list[Finding]:
        if self.registry is None or not self.reverse:
            return []
        findings: list[Finding] = []
        for name, lineno in sorted(self.registry.metrics.items()):
            if name not in self._used_metrics:
                findings.append(
                    Finding(
                        path=self.registry.path,
                        line=lineno,
                        col=1,
                        rule=self.rule_id,
                        message=(
                            f"documented metric {name!r} is never emitted by any "
                            "telemetry call in the linted tree (metric drift — "
                            "delete the row or restore the emission)"
                        ),
                    )
                )
        for path, lineno in sorted(self.registry.spans.items()):
            if not self._span_path_covered(path):
                findings.append(
                    Finding(
                        path=self.registry.path,
                        line=lineno,
                        col=1,
                        rule=self.rule_id,
                        message=(
                            f"documented span {path!r} has components never opened "
                            "by any telemetry.span call in the linted tree"
                        ),
                    )
                )
        return findings

    def _span_path_covered(self, path: str) -> bool:
        if path in self._used_span_literals:
            return True
        return all(part in self._used_span_literals for part in path.split("/"))
