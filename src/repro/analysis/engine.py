"""The lint engine: file walking, rule dispatch, pragma application.

``lint_paths`` is what ``repro lint`` runs; ``lint_source`` lints one
in-memory source under a virtual path so tests can exercise scoped
rules without touching the checkout. The reverse telemetry pass (RX05's
"documented but never emitted") only activates when at least one input
is a directory — linting a single file must not claim the rest of the
catalogue is dead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.pragmas import Pragma, apply_pragmas, parse_pragmas
from repro.analysis.registry_doc import MetricRegistry, find_observability_doc
from repro.analysis.report import SCHEMA
from repro.analysis.rules import build_rules, rule_ids
from repro.analysis.rules.base import (
    META_RULE,
    FileContext,
    Finding,
    package_relative,
)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: list[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.violations:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def as_dict(self) -> dict[str, object]:
        return {
            "schema": SCHEMA,
            "clean": self.clean,
            "files": self.files,
            "suppressed": self.suppressed,
            "counts": self.counts(),
            "violations": [finding.as_dict() for finding in self.violations],
        }


def _iter_python_files(paths: list[str | Path]) -> tuple[list[Path], bool]:
    """Expand inputs to .py files; report whether any input was a directory."""
    files: list[Path] = []
    saw_directory = False
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            saw_directory = True
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
        elif path.is_file():
            continue  # non-Python input (e.g. a doc) — nothing to lint
        else:
            raise FileNotFoundError(f"lint input does not exist: {path}")
    unique: list[Path] = []
    seen: set[Path] = set()
    for candidate in files:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(candidate)
    return unique, saw_directory


def _lint_one(
    path: str,
    source: str,
    rules: list,
    known: set[str],
) -> tuple[list[Finding], int]:
    """Lint one source; returns (surviving findings, suppressed count)."""
    relpath = package_relative(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule=META_RULE,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            0,
        )
    ctx = FileContext(path=path, relpath=relpath, source=source, tree=tree)
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies(relpath):
            findings.extend(rule.check(ctx))
    pragmas, pragma_findings = parse_pragmas(source, path, known)
    survivors, _used = apply_pragmas(findings, pragmas)
    suppressed = len(findings) - len(survivors)
    survivors.extend(pragma_findings)
    return survivors, suppressed


def lint_paths(
    paths: list[str | Path],
    *,
    rules: set[str] | None = None,
    observability_doc: str | Path | None = None,
    reverse_telemetry: bool | None = None,
) -> LintReport:
    """Lint files and directories; the entry point behind ``repro lint``.

    ``rules`` restricts to a subset of rule ids. ``observability_doc``
    overrides RX05's catalogue location (auto-discovered by walking up
    from the first input otherwise; RX05 is skipped when no catalogue
    is found). ``reverse_telemetry`` forces the reverse pass on or off
    (default: on exactly when some input is a directory).
    """
    files, saw_directory = _iter_python_files(list(paths))
    if reverse_telemetry is None:
        reverse_telemetry = saw_directory
    registry: MetricRegistry | None = None
    doc_path: Path | None = None
    if observability_doc is not None:
        doc_path = Path(observability_doc)
    elif files:
        doc_path = find_observability_doc(files[0])
    if doc_path is not None and doc_path.is_file():
        registry = MetricRegistry.from_file(doc_path)
    rule_objs = build_rules(registry, reverse_telemetry, selected=rules)
    known = rule_ids()
    report = LintReport()
    for path in files:
        source = path.read_text(encoding="utf-8")
        findings, suppressed = _lint_one(str(path), source, rule_objs, known)
        report.violations.extend(findings)
        report.suppressed += suppressed
        report.files += 1
    for rule in rule_objs:
        report.violations.extend(rule.finalize())
    report.violations.sort()
    return report


def lint_source(
    source: str,
    *,
    virtual_path: str = "repro/module.py",
    rules: set[str] | None = None,
    observability_text: str | None = None,
    reverse_telemetry: bool = False,
) -> LintReport:
    """Lint an in-memory source under a virtual path (for tests).

    ``observability_text`` supplies an in-memory catalogue for RX05;
    without it RX05 has no registry and stays silent.
    """
    registry = (
        MetricRegistry.from_text(observability_text) if observability_text is not None else None
    )
    rule_objs = build_rules(registry, reverse_telemetry, selected=rules)
    known = rule_ids()
    report = LintReport()
    findings, suppressed = _lint_one(virtual_path, source, rule_objs, known)
    report.violations.extend(findings)
    report.suppressed += suppressed
    report.files = 1
    for rule in rule_objs:
        report.violations.extend(rule.finalize())
    report.violations.sort()
    return report


__all__ = ["LintReport", "lint_paths", "lint_source", "Pragma"]
