"""Query evaluation over k-order Markov sequences (footnote 3).

The paper notes all results generalize to order-k Markov sequences for
fixed k. This module makes that generalization a one-liner: it reduces
the order-k specification to a first-order sequence over sliding windows
(:meth:`KOrderMarkovSequence.to_first_order`), lifts the deterministic
transducer to window symbols (:func:`lift_transducer`), and routes the
pair through the standard engine. Emissions of the lifted machine are the
original output symbols, so answers come back unchanged.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.errors import InvalidTransducerError
from repro.markov.korder import KOrderMarkovSequence, lift_transducer
from repro.markov.sequence import Number
from repro.transducers.transducer import Transducer
from repro.core.engine import compute_confidence, evaluate
from repro.core.results import Answer, Order


def evaluate_korder(
    spec: KOrderMarkovSequence,
    transducer: Transducer,
    order: Order | str = Order.UNRANKED,
    with_confidence: bool = True,
    limit: int | None = None,
) -> Iterator[Answer]:
    """Evaluate a deterministic transducer over an order-k Markov sequence.

    Answers and confidences are identical to evaluating the transducer on
    the original order-k distribution; the reduction is internal.
    """
    if not transducer.is_deterministic():
        raise InvalidTransducerError(
            "k-order evaluation lifts the transducer, which requires determinism"
        )
    sequence = spec.to_first_order()
    lifted = lift_transducer(transducer, spec.k)
    return evaluate(
        sequence,
        lifted,
        order=order,
        with_confidence=with_confidence,
        limit=limit,
    )


def confidence_korder(
    spec: KOrderMarkovSequence, transducer: Transducer, output: Sequence[object]
) -> Number:
    """Confidence of one answer over an order-k Markov sequence."""
    if not transducer.is_deterministic():
        raise InvalidTransducerError(
            "k-order evaluation lifts the transducer, which requires determinism"
        )
    sequence = spec.to_first_order()
    lifted = lift_transducer(transducer, spec.k)
    return compute_confidence(sequence, lifted, tuple(output))
