"""Result records for query evaluation."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.markov.sequence import Number


class Order(enum.Enum):
    """Enumeration orders offered by :func:`repro.core.evaluate`.

    ===============  ===========================================================
    member           meaning
    ===============  ===========================================================
    UNRANKED         any order; polynomial delay + space (Theorem 4.1)
    EMAX             decreasing best-evidence score (Theorem 4.3);
                     ``|Sigma|^n``-approximate confidence order
    IMAX             decreasing max-occurrence confidence (Lemma 5.10);
                     ``n``-approximate confidence order; s-projectors only
    CONFIDENCE       exactly decreasing confidence; indexed s-projectors only
                     (Theorem 5.7) — intractable for other classes
    ===============  ===========================================================
    """

    UNRANKED = "unranked"
    EMAX = "emax"
    IMAX = "imax"
    CONFIDENCE = "confidence"


@dataclass(frozen=True)
class Answer:
    """One answer of a query over a Markov sequence.

    Attributes
    ----------
    output:
        The answer itself: a tuple of output symbols for transducers and
        s-projectors, or an ``(output, index)`` pair for indexed
        s-projectors.
    confidence:
        ``Pr(S -> [query] -> output)``, when computed (None when the caller
        asked to skip confidence computation).
    score:
        The value that ordered the enumeration (equals the confidence for
        exact orders, ``E_max``/``I_max`` for heuristic orders, None for
        unranked).
    order:
        Which enumeration produced this answer.
    """

    output: object
    confidence: Number | None
    score: Number | None
    order: Order

    def rendered(self) -> str:
        """Human-readable form of the output (joins character symbols)."""
        payload = self.output
        index = None
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and isinstance(payload[0], tuple)
            and isinstance(payload[1], int)
        ):
            payload, index = payload
        text = "".join(str(symbol) for symbol in payload) if payload else "ε"
        if index is not None:
            return f"({text}, {index})"
        return text
