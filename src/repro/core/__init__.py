"""The query-evaluation facade (the library's primary public API).

:func:`evaluate` and :func:`top_k` tie the algorithm catalog together:
they inspect the query's class (Table 2's columns), pick the right
enumeration order and confidence algorithm, and stream
:class:`~repro.core.results.Answer` records.
"""

from repro.core.engine import compute_confidence, evaluate, top_k
from repro.core.results import Answer, Order

__all__ = ["evaluate", "top_k", "compute_confidence", "Answer", "Order"]
