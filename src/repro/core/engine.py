"""Query evaluation over a Markov sequence — the public facade.

The engine mirrors the paper's complexity landscape (Table 2): it
dispatches on the query's class to the best available algorithm, and
refuses combinations the paper proves intractable unless the caller
explicitly opts into exponential work.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ReproError
from repro.markov.sequence import MarkovSequence, Number
from repro.transducers.sprojector import (
    IndexedSProjector,
    SProjector,
    decode_indexed_output,
)
from repro.transducers.transducer import Transducer
from repro.confidence.brute_force import brute_force_answers, brute_force_confidence
from repro.confidence.deterministic import confidence_deterministic
from repro.confidence.indexed import confidence_indexed
from repro.confidence.sprojector import confidence_sprojector
from repro.confidence.uniform_subset import confidence_uniform
from repro.enumeration.emax import enumerate_emax
from repro.enumeration.indexed_ranked import enumerate_indexed_ranked
from repro.enumeration.sprojector_ranked import enumerate_sprojector_imax
from repro.enumeration.unranked import enumerate_unranked
from repro.core.results import Answer, Order


def compute_confidence(
    sequence: MarkovSequence, query, output, allow_exponential: bool = True
) -> Number:
    """Confidence of one answer, via the best algorithm for the query class.

    * indexed s-projector → Theorem 5.8 (polynomial);
    * s-projector → Theorem 5.5 (exponential in ``|Q_E|`` only);
    * deterministic transducer → Theorem 4.6 (polynomial);
    * uniform nondeterministic transducer → Theorem 4.8 (exp. in ``|Q_A|``);
    * anything else → FP^#P-complete (Prop. 4.7 / Thm 4.9); the
      brute-force oracle runs only if ``allow_exponential`` is True.
    """
    if isinstance(query, IndexedSProjector):
        answer_output, index = output
        return confidence_indexed(sequence, query, answer_output, index)
    if isinstance(query, SProjector):
        return confidence_sprojector(sequence, query, output)
    if isinstance(query, Transducer):
        if query.is_deterministic():
            return confidence_deterministic(sequence, query, output)
        if query.is_uniform():
            return confidence_uniform(sequence, query, output)
        if allow_exponential:
            return brute_force_confidence(sequence, query, output)
        raise ReproError(
            "confidence for a non-uniform nondeterministic transducer is "
            "FP^#P-complete (Theorem 4.9); pass allow_exponential=True to "
            "run the possible-world oracle"
        )
    raise TypeError(f"unsupported query type {type(query).__name__}")


def evaluate(
    sequence: MarkovSequence,
    query,
    order: Order | str = Order.UNRANKED,
    with_confidence: bool = True,
    limit: int | None = None,
    allow_exponential: bool = False,
    min_confidence: Number | None = None,
) -> Iterator[Answer]:
    """Evaluate ``query`` over ``sequence``, streaming :class:`Answer` records.

    Parameters
    ----------
    sequence:
        The probabilistic data.
    query:
        A :class:`Transducer`, :class:`SProjector`, or
        :class:`IndexedSProjector` over the sequence's node alphabet.
    order:
        An :class:`Order` (or its string value). Availability follows
        Table 2: ``CONFIDENCE`` is native only to indexed s-projectors;
        for other classes it requires ``allow_exponential=True`` and runs
        the brute-force oracle (intended for small instances and tests).
        ``IMAX`` requires a (non-indexed) s-projector.
    with_confidence:
        Also compute each answer's exact confidence (skipped automatically
        when the order already is the confidence).
    limit:
        Stop after this many answers (top-k when the order is ranked).
    allow_exponential:
        Permit exponential-time fallbacks that the paper proves necessary.
    min_confidence:
        Only return answers with at least this confidence. Under the
        ``CONFIDENCE`` order the stream simply stops at the threshold
        (exact and output-sensitive); under the heuristic orders the
        ``E_max``/``I_max`` bounds give a sound early stop (an answer
        satisfies ``conf <= support * E_max`` and ``conf <= n * I_max``)
        with per-answer exact filtering; unranked evaluation filters.
        Requires ``with_confidence=True`` (except for ``CONFIDENCE``).
    """
    order = Order(order)
    if min_confidence is not None and order is not Order.CONFIDENCE:
        if not with_confidence:
            raise ReproError("min_confidence requires with_confidence=True")

    if order is Order.CONFIDENCE:
        answers = _evaluate_confidence_order(sequence, query, None, allow_exponential)
    elif order is Order.IMAX:
        answers = _evaluate_imax(sequence, query, with_confidence, None)
    elif order is Order.EMAX:
        answers = _evaluate_emax(
            sequence, query, with_confidence, None, allow_exponential
        )
    else:
        answers = _evaluate_unranked(
            sequence, query, with_confidence, None, allow_exponential
        )

    if min_confidence is not None:
        answers = _apply_threshold(sequence, order, answers, min_confidence)
    yield from _take(answers, limit)


def _apply_threshold(sequence, order, answers, min_confidence):
    """Filter by confidence with the soundest early stop the order allows."""
    if order is Order.CONFIDENCE:
        for answer in answers:
            if answer.confidence < min_confidence:
                return
            yield answer
        return
    if order is Order.EMAX:
        # conf(o) <= support_size * E_max(o): once E_max falls below the
        # scaled threshold no later answer can qualify.
        cutoff = min_confidence / sequence.support_size()
        for answer in answers:
            if answer.score < cutoff:
                return
            if answer.confidence >= min_confidence:
                yield answer
        return
    if order is Order.IMAX:
        # Proposition 5.9: conf(o) <= n * I_max(o).
        cutoff = min_confidence / sequence.length
        for answer in answers:
            if answer.score < cutoff:
                return
            if answer.confidence >= min_confidence:
                yield answer
        return
    for answer in answers:
        if answer.confidence >= min_confidence:
            yield answer


def _take(iterator, limit):
    if limit is None:
        yield from iterator
        return
    for count, item in enumerate(iterator):
        if count >= limit:
            return
        yield item


def _evaluate_unranked(sequence, query, with_confidence, limit, allow_exponential):
    if isinstance(query, IndexedSProjector):
        compiled = query.to_transducer()
        raw = enumerate_unranked(sequence, compiled)
        for output in _take(raw, limit):
            answer = decode_indexed_output(output)
            confidence = (
                compute_confidence(sequence, query, answer) if with_confidence else None
            )
            yield Answer(answer, confidence, None, Order.UNRANKED)
        return
    raw = enumerate_unranked(sequence, query)
    for output in _take(raw, limit):
        confidence = (
            compute_confidence(sequence, query, output, allow_exponential=True)
            if with_confidence
            else None
        )
        yield Answer(output, confidence, None, Order.UNRANKED)


def _evaluate_emax(sequence, query, with_confidence, limit, allow_exponential):
    if isinstance(query, IndexedSProjector):
        compiled = query.to_transducer()
        for score, output in _take(enumerate_emax(sequence, compiled), limit):
            answer = decode_indexed_output(output)
            confidence = (
                compute_confidence(sequence, query, answer) if with_confidence else None
            )
            yield Answer(answer, confidence, score, Order.EMAX)
        return
    for score, output in _take(enumerate_emax(sequence, query), limit):
        confidence = (
            compute_confidence(sequence, query, output, allow_exponential=True)
            if with_confidence
            else None
        )
        yield Answer(output, confidence, score, Order.EMAX)


def _evaluate_imax(sequence, query, with_confidence, limit):
    if isinstance(query, IndexedSProjector) or not isinstance(query, SProjector):
        raise ReproError(
            "the I_max order (Lemma 5.10) applies to non-indexed s-projectors; "
            "use CONFIDENCE for indexed s-projectors and EMAX for transducers"
        )
    raw = enumerate_sprojector_imax(sequence, query, with_confidence=with_confidence)
    for item in _take(raw, limit):
        if with_confidence:
            score, output, confidence = item
            yield Answer(output, confidence, score, Order.IMAX)
        else:
            score, output = item
            yield Answer(output, None, score, Order.IMAX)


def _evaluate_confidence_order(sequence, query, limit, allow_exponential):
    if isinstance(query, IndexedSProjector):
        raw = enumerate_indexed_ranked(sequence, query)
        for confidence, answer in _take(raw, limit):
            yield Answer(answer, confidence, confidence, Order.CONFIDENCE)
        return
    if not allow_exponential:
        raise ReproError(
            "exact decreasing-confidence enumeration is intractable for this "
            "query class (Theorems 4.4/5.3); it is native only to indexed "
            "s-projectors (Theorem 5.7). Pass allow_exponential=True to run "
            "the brute-force oracle on a small instance."
        )
    confidences = brute_force_answers(sequence, query)
    ranked = sorted(confidences.items(), key=lambda item: (-item[1], repr(item[0])))
    for output, confidence in _take(iter(ranked), limit):
        yield Answer(output, confidence, confidence, Order.CONFIDENCE)


def top_k(
    sequence: MarkovSequence,
    query,
    k: int,
    order: Order | str | None = None,
    allow_exponential: bool = False,
) -> list[Answer]:
    """The first ``k`` answers under the best ranked order for the class.

    Default orders: indexed s-projector → exact confidence (Theorem 5.7);
    s-projector → ``I_max`` (n-approximate, Theorem 5.2); transducer →
    ``E_max`` (the Theorem 4.3 heuristic, worst-case optimal by
    Theorem 4.4).
    """
    if order is None:
        if isinstance(query, IndexedSProjector):
            order = Order.CONFIDENCE
        elif isinstance(query, SProjector):
            order = Order.IMAX
        else:
            order = Order.EMAX
    return list(
        evaluate(
            sequence,
            query,
            order=order,
            limit=k,
            allow_exponential=allow_exponential,
        )
    )
