"""Query evaluation over a Markov sequence — the public facade.

The engine mirrors the paper's complexity landscape (Table 2): it
dispatches on the query's class to the best available algorithm, and
refuses combinations the paper proves intractable unless the caller
explicitly opts into exponential work.

Since the :mod:`repro.runtime` package landed, the engine is a thin
shell: each call resolves the query to a cached
:class:`~repro.runtime.plan.QueryPlan` (classification, Hopcroft
minimization, and s-projector compilation happen once per query shape,
via the process-wide :func:`~repro.runtime.cache.default_plan_cache`)
and hands execution to :mod:`repro.runtime.executor`.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro.markov.sequence import MarkovSequence, Number
from repro.core.results import Answer, Order
from repro.runtime.cache import PlanCache, plan_for
from repro.runtime.executor import (
    apply_threshold,
    plan_confidence,
    plan_confidence_approx,
    run_evaluate,
    run_top_k,
)
from repro.runtime.plan import QueryPlan
from repro.transducers.sprojector import SProjector
from repro.transducers.transducer import Transducer

if TYPE_CHECKING:
    from repro.approx.fpras import ApproxConfidence

#: Anything the plan cache can resolve: a query object or a prebuilt plan.
Query = Transducer | SProjector | QueryPlan

#: An answer's output: a symbol sequence, or (output, index) for the
#: indexed s-projector class — which is itself a 2-sequence.
Output = Sequence[object]

#: Backwards-compatible alias — the threshold filter lived here before the
#: runtime split, and its early-stop behaviour is tested against this name.
_apply_threshold = apply_threshold


def compute_confidence(
    sequence: MarkovSequence,
    query: Query,
    output: Output,
    allow_exponential: bool = True,
    cache: PlanCache | None = None,
) -> Number:
    """Confidence of one answer, via the best algorithm for the query class.

    * indexed s-projector → Theorem 5.8 (polynomial);
    * s-projector → Theorem 5.5 (exponential in ``|Q_E|`` only);
    * deterministic transducer → Theorem 4.6 (polynomial);
    * uniform nondeterministic transducer → Theorem 4.8 (exp. in ``|Q_A|``);
    * anything else → FP^#P-complete (Prop. 4.7 / Thm 4.9); the
      brute-force oracle runs only if ``allow_exponential`` is True.
    """
    plan = plan_for(query, cache)
    return plan_confidence(plan, sequence, output, allow_exponential)


def approximate_confidence(
    sequence: MarkovSequence,
    query: Query,
    output: Output,
    epsilon: float = 0.1,
    delta: float = 0.05,
    seed: int | None = None,
    rng: random.Random | None = None,
    max_samples: int | None = None,
    cache: PlanCache | None = None,
) -> "ApproxConfidence":
    """FPRAS (ε, δ) confidence of one answer — the tractable route through
    the cells where :func:`compute_confidence` needs ``allow_exponential``.

    Returns a :class:`repro.approx.ApproxConfidence`: with probability at
    least 1−δ the exact confidence lies in its certified ``[low, high]``
    interval, where ``high/low ≤ (1+ε)/(1−ε)``. Unambiguous products are
    answered exactly without sampling; indexed s-projectors are rejected
    (their exact algorithm is already polynomial, Theorem 5.8).
    """
    plan = plan_for(query, cache)
    return plan_confidence_approx(
        plan,
        sequence,
        output,
        epsilon=epsilon,
        delta=delta,
        seed=seed,
        rng=rng,
        max_samples=max_samples,
    )


def evaluate(
    sequence: MarkovSequence,
    query: Query,
    order: Order | str = Order.UNRANKED,
    with_confidence: bool = True,
    limit: int | None = None,
    allow_exponential: bool = False,
    min_confidence: Number | None = None,
    cache: PlanCache | None = None,
) -> Iterator[Answer]:
    """Evaluate ``query`` over ``sequence``, streaming :class:`Answer` records.

    Parameters
    ----------
    sequence:
        The probabilistic data.
    query:
        A :class:`Transducer`, :class:`SProjector`,
        :class:`IndexedSProjector` over the sequence's node alphabet, or
        an already-built :class:`~repro.runtime.plan.QueryPlan`.
    order:
        An :class:`Order` (or its string value). Availability follows
        Table 2: ``CONFIDENCE`` is native only to indexed s-projectors;
        for other classes it requires ``allow_exponential=True`` and runs
        the brute-force oracle (intended for small instances and tests).
        ``IMAX`` requires a (non-indexed) s-projector.
    with_confidence:
        Also compute each answer's exact confidence (skipped automatically
        when the order already is the confidence).
    limit:
        Stop after this many answers (top-k when the order is ranked).
    allow_exponential:
        Permit exponential-time fallbacks that the paper proves necessary.
    min_confidence:
        Only return answers with at least this confidence. Under the
        ``CONFIDENCE`` order the stream simply stops at the threshold
        (exact and output-sensitive); under the heuristic orders the
        ``E_max``/``I_max`` bounds give a sound early stop (an answer
        satisfies ``conf <= support * E_max`` and ``conf <= n * I_max``)
        with per-answer exact filtering; unranked evaluation filters.
        Requires ``with_confidence=True`` (except for ``CONFIDENCE``).
    cache:
        Plan cache to resolve ``query`` through (the process-wide
        default when None).
    """
    return run_evaluate(
        plan_for(query, cache),
        sequence,
        order=order,
        with_confidence=with_confidence,
        limit=limit,
        allow_exponential=allow_exponential,
        min_confidence=min_confidence,
    )


def top_k(
    sequence: MarkovSequence,
    query: Query,
    k: int,
    order: Order | str | None = None,
    allow_exponential: bool = False,
    cache: PlanCache | None = None,
) -> list[Answer]:
    """The first ``k`` answers under the best ranked order for the class.

    Default orders: indexed s-projector → exact confidence (Theorem 5.7);
    s-projector → ``I_max`` (n-approximate, Theorem 5.2); transducer →
    ``E_max`` (the Theorem 4.3 heuristic, worst-case optimal by
    Theorem 4.4).
    """
    return run_top_k(
        plan_for(query, cache),
        sequence,
        k,
        order=order,
        allow_exponential=allow_exponential,
    )
