"""Ranked enumeration by best-evidence score ``E_max`` (Theorem 4.3).

``E_max(o)`` is the probability of the most likely world transduced into
``o`` (Section 4.2). Enumerating answers in decreasing ``E_max`` is the
paper's heuristic stand-in for the intractable decreasing-confidence
order; the guaranteed approximation ratio is ``|Sigma|^n`` (each answer
has at most ``|Sigma|^n`` evidences), which Theorem 4.4 shows is
worst-case optimal up to the exponent's constant.

The algorithm is Lawler–Murty over prefix constraints, with the
constrained optimization solved by the Viterbi pass of
:func:`~repro.enumeration.constraints.best_evidence` — polynomial delay;
space grows with the number of answers printed, as the theorem warns.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.markov.sequence import MarkovSequence, Number
from repro.transducers.sprojector import SProjector
from repro.transducers.transducer import Transducer
from repro.enumeration.constraints import PrefixConstraint, best_evidence
from repro.enumeration.lawler import lawler_enumerate


def _as_transducer(query) -> Transducer:
    if isinstance(query, SProjector):
        return query.to_transducer()
    if isinstance(query, Transducer):
        return query
    raise TypeError(f"unsupported query type {type(query).__name__}")


def enumerate_emax(
    sequence: MarkovSequence, query
) -> Iterator[tuple[Number, tuple]]:
    """Yield ``(E_max(o), o)`` for every answer, in decreasing ``E_max``.

    ``query`` is a :class:`Transducer` or :class:`SProjector` (compiled on
    the fly; note that for s-projectors the dedicated ``I_max`` order of
    Lemma 5.10 has a far better approximation guarantee).
    """
    transducer = _as_transducer(query)

    def best(constraint: PrefixConstraint):
        found = best_evidence(sequence, transducer, constraint)
        if found is None:
            return None
        score, output, _world = found
        return score, output

    def partition(constraint: PrefixConstraint, answer: tuple):
        return constraint.partition_after(answer, transducer.output_alphabet)

    yield from lawler_enumerate(PrefixConstraint.unconstrained(), best, partition)


def top_answer_emax(sequence: MarkovSequence, query) -> tuple[Number, tuple] | None:
    """The ``E_max``-top answer — the heuristic's pick for the top answer.

    This is the object of the inapproximability theorems: its *confidence*
    can be a factor ``2^{n^{1-delta}}`` below the true top confidence
    (Theorems 4.4/4.5), yet no polynomial algorithm does asymptotically
    better unless P = NP.
    """
    transducer = _as_transducer(query)
    found = best_evidence(sequence, transducer, PrefixConstraint.unconstrained())
    if found is None:
        return None
    score, output, _world = found
    return score, output
