"""Answer enumeration (Sections 4.1, 4.2, 5.1, 5.2).

The paper's central problem: enumerate the answer set ``A^omega(mu)``,
ideally in decreasing confidence. This subpackage implements every
enumeration result:

* :func:`enumerate_unranked` — Theorem 4.1: all answers, polynomial delay
  and polynomial space, via prefix-constraint space partitioning;
* :func:`enumerate_emax` — Theorem 4.3: decreasing best-evidence score
  ``E_max``, polynomial delay, via Lawler–Murty over prefix constraints;
* :func:`enumerate_indexed_ranked` — Theorem 5.7: indexed s-projectors in
  exactly decreasing confidence, via increasing-weight path enumeration in
  a layered DAG;
* :func:`enumerate_sprojector_imax` — Lemma 5.10 / Theorem 5.2:
  s-projectors in decreasing ``I_max`` (an n-approximation of decreasing
  confidence), polynomial delay.
"""

from repro.enumeration.constraints import (
    END,
    PrefixConstraint,
    best_evidence,
    has_answer,
)
from repro.enumeration.emax import enumerate_emax, top_answer_emax
from repro.enumeration.indexed_ranked import (
    build_answer_dag,
    enumerate_indexed_ranked,
)
from repro.enumeration.lawler import lawler_enumerate
from repro.enumeration.pathenum import WeightedDAG
from repro.enumeration.sprojector_ranked import (
    enumerate_sprojector_imax,
    top_answer_imax,
)
from repro.enumeration.unranked import enumerate_unranked

__all__ = [
    "PrefixConstraint",
    "END",
    "has_answer",
    "best_evidence",
    "enumerate_unranked",
    "enumerate_emax",
    "top_answer_emax",
    "lawler_enumerate",
    "WeightedDAG",
    "build_answer_dag",
    "enumerate_indexed_ranked",
    "enumerate_sprojector_imax",
    "top_answer_imax",
]
