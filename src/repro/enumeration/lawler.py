"""A generic Lawler–Murty ranked-enumeration engine.

The technique (Lawler 1972, Murty 1968 — also behind Yen's k-shortest
paths) reduces ranked enumeration to constrained optimization: keep a
priority queue of disjoint subspaces, each with its best answer
precomputed; repeatedly pop the globally best, output it, partition its
subspace around the output, and push each nonempty part with *its* best
answer. Because the parts are disjoint, every answer is produced exactly
once, and in decreasing score.

The engine is parameterized by the subspace type and by ``best`` and
``partition`` callbacks; the paper instantiates it with prefix constraints
(Theorem 4.3 and Lemma 5.10 both do), and the test suite also instantiates
it with toy problems to check the engine in isolation.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterable, Iterator
from typing import Any, TypeVar

Space = TypeVar("Space")
Answer = TypeVar("Answer")


def lawler_enumerate(
    initial: Space,
    best: Callable[[Space], tuple[Any, Answer] | None],
    partition: Callable[[Space, Answer], Iterable[Space]],
) -> Iterator[tuple[Any, Answer]]:
    """Enumerate answers in decreasing score.

    Parameters
    ----------
    initial:
        The whole answer space.
    best:
        Maps a subspace to its best ``(score, answer)``, or None when the
        subspace is empty. Scores must be comparable; higher is better.
    partition:
        Maps ``(subspace, answer)`` to subspaces that are pairwise disjoint
        and cover the subspace minus the answer. Parts may be empty —
        ``best`` is what filters them.

    Yields
    ------
    ``(score, answer)`` pairs in non-increasing score order. The delay per
    answer is one ``partition`` call plus one ``best`` call per part (plus
    logarithmic heap work); the space grows linearly with the number of
    answers yielded so far, matching the paper's remark that Theorem 4.3
    does not guarantee polynomial space.
    """
    counter = itertools.count()  # tie-breaker: heapq must never compare answers
    heap: list[tuple[Any, int, Space, Answer]] = []

    seed = best(initial)
    if seed is not None:
        score, answer = seed
        heapq.heappush(heap, (_neg(score), next(counter), initial, answer))

    while heap:
        neg_score, _tick, space, answer = heapq.heappop(heap)
        yield _neg(neg_score), answer
        for part in partition(space, answer):
            found = best(part)
            if found is None:
                continue
            part_score, part_answer = found
            heapq.heappush(heap, (_neg(part_score), next(counter), part, part_answer))


def _neg(score):
    """Negate a score for min-heap ordering (works for float and Fraction)."""
    return -score
