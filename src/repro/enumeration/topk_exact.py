"""Exact top-k by confidence for s-projectors, Fagin-style.

Theorem 5.3 rules out *polynomial-time* top answers by confidence for
s-projectors, but the sandwich of Proposition 5.9 enables a classic
threshold-algorithm (Fagin–Lotem–Naor, cited as the paper's [16])
combination of the two tractable primitives:

* stream answers in decreasing ``I_max`` (Lemma 5.10, polynomial delay);
* compute each streamed answer's exact confidence (Theorem 5.5);
* stop once the k-th best exact confidence found so far is at least
  ``n * (next I_max)`` — no unseen answer can beat it, because
  ``conf(o) <= n * I_max(o)`` and the stream's ``I_max`` only decreases.

The output is the *exact* top-k by confidence. Worst-case time is not
polynomial (it cannot be, by Theorem 5.3); it is instance-sensitive: the
algorithm stops after the k-th confidence crosses the shrinking
threshold, which on non-adversarial instances happens after a handful of
candidates (measured in ``benchmarks/bench_extensions.py``'s companion).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Hashable

from repro.markov.sequence import MarkovSequence, Number
from repro.transducers.sprojector import SProjector
from repro.confidence.sprojector import confidence_sprojector
from repro.enumeration.sprojector_ranked import enumerate_sprojector_imax

Symbol = Hashable


def exact_topk_confidence(
    sequence: MarkovSequence,
    projector: SProjector,
    k: int,
    max_candidates: int | None = None,
) -> tuple[list[tuple[Number, tuple]], int]:
    """The exact top-``k`` s-projector answers by confidence.

    Returns ``(results, candidates_examined)`` where ``results`` is a
    list of ``(confidence, answer)`` in decreasing confidence (fewer than
    ``k`` if the query has fewer answers). ``max_candidates`` optionally
    caps the scan (for defensive use on adversarial instances); when the
    cap fires before the threshold test passes, the results carry no
    exactness guarantee and a ``RuntimeWarning`` is emitted.

    Guarantee (threshold argument): when the algorithm stops because
    ``k-th best confidence >= n * next_imax``, every unseen answer ``o``
    satisfies ``conf(o) <= n * I_max(o) <= n * next_imax <= k-th best``,
    so the maintained top-k is exact.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = sequence.length
    # Min-heap of (confidence, tiebreak, answer) for the current top-k.
    heap: list[tuple[Number, int, tuple]] = []
    counter = itertools.count()
    examined = 0

    stream = enumerate_sprojector_imax(sequence, projector)
    for imax, answer in stream:
        # Threshold test first: can any answer from here on still matter?
        if len(heap) == k and heap[0][0] >= n * imax:
            break
        confidence = confidence_sprojector(sequence, projector, answer)
        examined += 1
        if len(heap) < k:
            heapq.heappush(heap, (confidence, next(counter), answer))
        elif confidence > heap[0][0]:
            heapq.heapreplace(heap, (confidence, next(counter), answer))
        if max_candidates is not None and examined >= max_candidates:
            import warnings

            warnings.warn(
                "exact_topk_confidence stopped at max_candidates before the "
                "threshold test passed; results may be inexact",
                RuntimeWarning,
                stacklevel=2,
            )
            break

    results = sorted(heap, key=lambda item: (-item[0], item[1]))
    return [(confidence, answer) for confidence, _tick, answer in results], examined


def exact_top_answer_confidence(
    sequence: MarkovSequence, projector: SProjector
) -> tuple[Number, tuple] | None:
    """The exact most-confident s-projector answer (k = 1 special case)."""
    results, _examined = exact_topk_confidence(sequence, projector, 1)
    if not results:
        return None
    confidence, answer = results[0]
    return confidence, answer


def exact_topk_confidence_transducer(
    sequence: MarkovSequence,
    transducer,
    k: int,
    max_candidates: int | None = None,
) -> tuple[list[tuple[Number, tuple]], int]:
    """The exact top-``k`` transducer answers by confidence, TA-style.

    Same threshold-algorithm skeleton as :func:`exact_topk_confidence`
    but over the ``E_max`` stream (Theorem 4.3) with the bound
    ``conf(o) <= support_size * E_max(o)`` (an answer has at most one
    evidence per world). The bound is far looser than the s-projector's
    factor ``n`` — exactly the content of Theorem 4.4 — so the cut-off
    can take long on heavy-collapse instances; ``max_candidates`` bounds
    the scan defensively (then results carry no exactness guarantee and a
    ``RuntimeWarning`` is emitted).

    Confidences are computed with the class's algorithm via
    :func:`repro.core.engine.compute_confidence` (deterministic → Thm 4.6,
    uniform → Thm 4.8; general nondeterministic falls back to the oracle).
    """
    from repro.core.engine import compute_confidence
    from repro.enumeration.emax import enumerate_emax

    if k < 1:
        raise ValueError("k must be at least 1")
    bound = sequence.support_size()
    heap: list[tuple[Number, int, tuple]] = []
    counter = itertools.count()
    examined = 0

    for emax, answer in enumerate_emax(sequence, transducer):
        if len(heap) == k and heap[0][0] >= bound * emax:
            break
        confidence = compute_confidence(sequence, transducer, answer)
        examined += 1
        if len(heap) < k:
            heapq.heappush(heap, (confidence, next(counter), answer))
        elif confidence > heap[0][0]:
            heapq.heapreplace(heap, (confidence, next(counter), answer))
        if max_candidates is not None and examined >= max_candidates:
            import warnings

            warnings.warn(
                "exact_topk_confidence_transducer stopped at max_candidates "
                "before the threshold test passed; results may be inexact",
                RuntimeWarning,
                stacklevel=2,
            )
            break

    results = sorted(heap, key=lambda item: (-item[0], item[1]))
    return [(confidence, answer) for confidence, _tick, answer in results], examined
