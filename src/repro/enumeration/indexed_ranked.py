"""Exact ranked enumeration for indexed s-projectors (Theorem 5.7).

Answers ``(o, i)`` of ``[B]↓A[E]`` over ``mu[n]`` correspond one-to-one to
source→sink paths of a layered weighted DAG:

* ``source --(start: i, o_1)--> ("m", i, o_1, a_1)`` weighted by the mass
  of worlds whose first ``i-1`` symbols lie in ``L(B)`` and whose ``i``-th
  symbol is ``o_1`` (from the forward DP of Theorem 5.8);
* ``("m", p, o_t, a) --(step: o_{t+1})--> ("m", p+1, o_{t+1}, a')``
  weighted ``mu_p(o_t, o_{t+1})``;
* ``("m", p, o_m, a in F_A) --(end)--> sink`` weighted by the probability
  that the remaining symbols satisfy ``E`` (backward DP);
* one extra two-edge path per empty-match answer ``(epsilon, i)``.

The A-component ``a`` is the DFA state of the pattern, so a path is
determined by ``(o, i)`` and vice versa, and its weight-product is exactly
``conf((o, i))`` by the Theorem 5.8 factorization. Enumerating paths in
decreasing weight (:meth:`WeightedDAG.paths_decreasing`) therefore yields
the answers in exactly decreasing confidence with polynomial delay.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import AlphabetMismatchError
from repro.markov.sequence import MarkovSequence, Number
from repro.confidence.indexed import (
    _confidence_empty_match,
    backward_suffix_weights,
    forward_prefix_weights,
)
from repro.semiring import REAL
from repro.transducers.sprojector import SProjector
from repro.enumeration.pathenum import WeightedDAG

SOURCE = "source"
SINK = "sink"


def emitted_symbols(label) -> tuple:
    """Output symbols contributed by one DAG edge label."""
    if label is None:
        return ()
    kind = label[0]
    if kind == "start":
        return (label[2],)
    if kind == "step":
        return (label[1],)
    return ()


def decode_path(labels: tuple) -> tuple[tuple, int]:
    """Decode a DAG path's labels into the indexed answer ``(o, i)``."""
    first = labels[0]
    if first[0] == "eps":
        return (), first[1]
    index = first[1]
    output = [first[2]]
    for label in labels[1:]:
        if label[0] == "step":
            output.append(label[1])
    return tuple(output), index


def build_answer_dag(sequence: MarkovSequence, projector: SProjector) -> WeightedDAG:
    """Construct the answer DAG for ``[B]↓A[E]`` over ``sequence``."""
    if projector.alphabet != sequence.alphabet:
        raise AlphabetMismatchError(
            "s-projector alphabet does not match the Markov sequence alphabet"
        )
    pattern = projector.pattern
    prefix = projector.prefix
    suffix = projector.suffix
    n = sequence.length

    forward = forward_prefix_weights(sequence, projector)
    backward = backward_suffix_weights(sequence, projector)

    dag = WeightedDAG()
    dag.add_node(SOURCE)
    dag.add_node(SINK)

    # Start edges: match begins at position i with first symbol sigma.
    prefix_empty_ok = prefix.initial in prefix.accepting
    for i in range(1, n + 1):
        for sigma in sequence.symbols:
            if i == 1:
                weight = sequence.initial_prob(sigma) if prefix_empty_ok else 0
            else:
                weight = 0
                for (tau, state), mass in forward[i - 1].items():
                    if state in prefix.accepting:
                        step = sequence.transition_prob(i - 1, tau, sigma)
                        if step != 0:
                            weight = weight + mass * step
            if weight != 0:
                a_state = pattern.step(pattern.initial, sigma)
                dag.add_edge(
                    SOURCE, ("m", i, sigma, a_state), weight, ("start", i, sigma)
                )

    # Step edges: extend the match from position p to p + 1.
    for p in range(1, n):
        for sigma in sequence.symbols:
            for a_state in pattern.states:
                node = ("m", p, sigma, a_state)
                for tau, prob in sequence.successors(p, sigma):
                    dag.add_edge(
                        node,
                        ("m", p + 1, tau, pattern.step(a_state, tau)),
                        prob,
                        ("step", tau),
                    )

    # End edges: close the match at position p (pattern state accepting).
    for p in range(1, n + 1):
        for sigma in sequence.symbols:
            for a_state in pattern.accepting:
                weight = backward[p].get((sigma, suffix.initial), 0)
                if weight != 0:
                    dag.add_edge(("m", p, sigma, a_state), SINK, weight, ("end",))

    # Empty-match answers (epsilon, i), present only if epsilon in L(A).
    if pattern.initial in pattern.accepting:
        for i in range(1, n + 2):
            weight = _confidence_empty_match(
                sequence, projector, i, REAL, forward, backward
            )
            if weight != 0:
                dag.add_edge(SOURCE, ("e", i), weight, ("eps", i))
                dag.add_edge(("e", i), SINK, 1, ("end",))

    return dag


def enumerate_indexed_ranked(
    sequence: MarkovSequence, projector: SProjector
) -> Iterator[tuple[Number, tuple[tuple, int]]]:
    """Yield ``(confidence, (o, i))`` in exactly decreasing confidence.

    Polynomial delay; see DESIGN.md on the space behaviour of the path
    enumerator relative to the theorem's statement.
    """
    dag = build_answer_dag(sequence, projector)
    for weight, labels in dag.paths_decreasing(SOURCE, SINK):
        yield weight, decode_path(labels)


def top_answer_indexed(
    sequence: MarkovSequence, projector: SProjector
) -> tuple[Number, tuple[tuple, int]] | None:
    """The most confident indexed answer (first element of the enumeration)."""
    for item in enumerate_indexed_ranked(sequence, projector):
        return item
    return None
