"""Increasing-weight path enumeration in weighted DAGs.

Theorem 5.7 reduces ranked evaluation of indexed s-projectors to
enumerating the s-t paths of an edge-weighted DAG in decreasing weight
(the paper cites Eppstein's k-shortest paths). We implement the standard
best-first (A*) enumeration with an exact completion-weight heuristic:

* ``potential[v]`` = the maximum product of edge weights over v→sink
  paths, computed once in reverse topological order;
* a priority queue holds partial paths ordered by
  ``weight-so-far * potential[endpoint]`` — an admissible and consistent
  bound, so complete paths pop in exactly non-increasing total weight.

Delay: between two consecutive outputs the algorithm pops at most the
not-yet-popped prefixes of the next output path — at most its length —
so the delay is polynomial. Space grows with the number of answers
produced (see DESIGN.md for the deviation from Eppstein's polynomial
space). Weights may be floats or exact Fractions.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Hashable, Iterator

from repro.errors import ReproError
from repro.enumeration.constraints import PrefixConstraint

Node = Hashable


class WeightedDAG:
    """A directed acyclic multigraph with multiplicative edge weights.

    Edges carry an opaque ``label`` used by callers to decode paths into
    answers. Parallel edges are allowed (they are distinct paths).
    """

    __slots__ = ("_adjacency", "_nodes")

    def __init__(self) -> None:
        self._adjacency: dict[Node, list[tuple[Node, object, object]]] = {}
        self._nodes: dict[Node, None] = {}

    def add_node(self, node: Node) -> None:
        self._nodes.setdefault(node, None)
        self._adjacency.setdefault(node, [])

    def add_edge(self, source: Node, target: Node, weight, label=None) -> None:
        """Add an edge; zero-weight edges are dropped (probability zero)."""
        if weight == 0:
            return
        self.add_node(source)
        self.add_node(target)
        self._adjacency[source].append((target, weight, label))

    def out_edges(self, node: Node) -> list[tuple[Node, object, object]]:
        return self._adjacency.get(node, [])

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._adjacency.values())

    def topological_order(self) -> list[Node]:
        """Kahn's algorithm; raises if the graph has a cycle."""
        in_degree: dict[Node, int] = dict.fromkeys(self._nodes, 0)
        for edges in self._adjacency.values():
            for target, _weight, _label in edges:
                in_degree[target] += 1
        frontier = [node for node, degree in in_degree.items() if degree == 0]
        order: list[Node] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for target, _weight, _label in self._adjacency.get(node, []):
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    frontier.append(target)
        if len(order) != len(self._nodes):
            raise ReproError("WeightedDAG.topological_order: graph has a cycle")
        return order

    def potentials(self, sink: Node) -> dict[Node, object]:
        """``potential[v]`` = max product of weights over v→sink paths (0 if none)."""
        order = self.topological_order()
        potential: dict[Node, object] = dict.fromkeys(self._nodes, 0)
        potential[sink] = 1
        for node in reversed(order):
            best = potential[node]
            for target, weight, _label in self._adjacency.get(node, []):
                candidate = weight * potential[target]
                if candidate > best:
                    best = candidate
            potential[node] = best
        return potential

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def paths_decreasing(
        self, source: Node, sink: Node
    ) -> Iterator[tuple[object, tuple]]:
        """Yield ``(weight, labels)`` of all source→sink paths, best first.

        Weight is the product of edge weights; ``labels`` is the tuple of
        edge labels along the path. Paths appear in non-increasing weight.
        """
        potential = self.potentials(sink)
        if potential.get(source, 0) == 0:
            return
        counter = itertools.count()
        # Heap entries: (-bound, tick, node, weight_so_far, labels)
        heap: list[tuple[object, int, Node, object, tuple]] = [
            (-potential[source], next(counter), source, 1, ())
        ]
        while heap:
            neg_bound, _tick, node, weight, labels = heapq.heappop(heap)
            if node == sink:
                yield weight, labels
                continue
            for target, edge_weight, label in self._adjacency.get(node, []):
                reach = potential.get(target, 0)
                if reach == 0:
                    continue
                new_weight = weight * edge_weight
                bound = new_weight * reach
                if bound == 0:
                    continue
                heapq.heappush(
                    heap,
                    (-bound, next(counter), target, new_weight, labels + (label,)),
                )

    def best_path_constrained(
        self,
        source: Node,
        sink: Node,
        constraint: PrefixConstraint,
        emitted,
    ) -> tuple[object, tuple] | None:
        """Max-weight source→sink path whose emitted string obeys ``constraint``.

        ``emitted(label)`` maps an edge label to the tuple of output
        symbols that edge contributes (possibly empty). This is the
        constrained optimization that Lemma 5.10's Lawler–Murty loop needs:
        the best ``I_max`` answer among outputs extending a given prefix.

        Returns ``(weight, labels)`` or None. Viterbi over
        ``(node, output-progress)`` pairs in topological order.
        """
        order = self.topological_order()
        # state: (node, progress) -> (weight, parent_state, label)
        best: dict[tuple[Node, int], tuple[object, tuple | None, object]] = {
            (source, 0): (1, None, None)
        }
        for node in order:
            for progress in range(len(constraint.prefix) + 2):
                state = (node, progress)
                entry = best.get(state)
                if entry is None:
                    continue
                weight = entry[0]
                for target, edge_weight, label in self._adjacency.get(node, []):
                    new_progress = constraint.advance(progress, tuple(emitted(label)))
                    if new_progress is None:
                        continue
                    new_state = (target, new_progress)
                    new_weight = weight * edge_weight
                    current = best.get(new_state)
                    if current is None or new_weight > current[0]:
                        best[new_state] = (new_weight, state, label)

        final: tuple[object, tuple | None, object] | None = None
        final_state = None
        for progress in range(len(constraint.prefix) + 2):
            if not constraint.final_ok(progress):
                continue
            entry = best.get((sink, progress))
            if entry is not None and (final is None or entry[0] > final[0]):
                final = entry
                final_state = (sink, progress)
        if final is None:
            return None

        labels: list = []
        state = final_state
        while state is not None:
            weight, parent, label = best[state]
            if parent is not None:
                labels.append(label)
            state = parent
        labels.reverse()
        return final[0], tuple(labels)
