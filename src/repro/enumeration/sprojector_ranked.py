"""Ranked enumeration for (non-indexed) s-projectors (Lemma 5.10, Theorem 5.2).

For an s-projector the exact decreasing-confidence order is intractable
even to approximate well (Theorem 5.3), so the paper ranks by

    I_max(o) = max_i conf((o, i))               (Section 5.2)

and the sandwich ``I_max(o) <= conf(o) <= n * I_max(o)`` (Proposition 5.9)
makes decreasing-``I_max`` an ``n``-approximately-decreasing-confidence
order — exponentially better than the ``|Sigma|^n`` guarantee of the
``E_max`` order available to general transducers.

Polynomial delay is achieved exactly as the paper prescribes: Lawler–Murty
over output-prefix constraints (so each output string is produced once —
no duplicate filtering, whose backlog would ruin the delay), with the
constrained optimization "best ``I_max`` answer extending prefix ``w``"
solved by a Viterbi pass over the same answer DAG that Theorem 5.7 uses.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.markov.sequence import MarkovSequence, Number
from repro.confidence.sprojector import confidence_sprojector
from repro.transducers.sprojector import SProjector
from repro.enumeration.constraints import PrefixConstraint
from repro.enumeration.indexed_ranked import (
    SINK,
    SOURCE,
    build_answer_dag,
    decode_path,
    emitted_symbols,
)
from repro.enumeration.lawler import lawler_enumerate
from repro.enumeration.pathenum import WeightedDAG


def enumerate_sprojector_imax(
    sequence: MarkovSequence,
    projector: SProjector,
    with_confidence: bool = False,
) -> Iterator[tuple[Number, tuple]] | Iterator[tuple[Number, tuple, Number]]:
    """Yield s-projector answers in decreasing ``I_max``.

    Yields ``(I_max(o), o)`` pairs — or ``(I_max(o), o, conf(o))`` triples
    when ``with_confidence=True``, which additionally runs the Theorem 5.5
    confidence computation per answer (exponential in ``|Q_E|`` only).
    """
    dag = build_answer_dag(sequence, projector)

    def best(constraint: PrefixConstraint):
        found = dag.best_path_constrained(SOURCE, SINK, constraint, emitted_symbols)
        if found is None:
            return None
        weight, labels = found
        output, _index = decode_path(labels)
        return weight, output

    def partition(constraint: PrefixConstraint, answer: tuple):
        return constraint.partition_after(answer, sequence.symbols)

    for score, output in lawler_enumerate(PrefixConstraint.unconstrained(), best, partition):
        if with_confidence:
            yield score, output, confidence_sprojector(sequence, projector, output)
        else:
            yield score, output


def enumerate_sprojector_imax_naive(
    sequence: MarkovSequence, projector: SProjector
) -> Iterator[tuple[Number, tuple]]:
    """The naive deduplicating variant discussed in Section 5.2.

    Run the indexed enumeration of Theorem 5.7 and print each *string*
    the first time it appears. As the paper notes, "a large chunk of
    duplicates may be encountered, [so] polynomial delay is not
    guaranteed (although incremental polynomial time is)" — this variant
    exists as the ablation baseline against the Lawler-based
    :func:`enumerate_sprojector_imax`, which restores polynomial delay.
    The two must produce identical (score, answer) streams.
    """
    from repro.enumeration.indexed_ranked import enumerate_indexed_ranked

    seen: set = set()
    for confidence, (output, _index) in enumerate_indexed_ranked(sequence, projector):
        if output in seen:
            continue
        seen.add(output)
        yield confidence, output


def top_answer_imax(
    sequence: MarkovSequence, projector: SProjector
) -> tuple[Number, tuple] | None:
    """The ``I_max``-top answer — an ``n``-approximate top answer by
    confidence (Proposition 5.9), computable in polynomial time."""
    dag = build_answer_dag(sequence, projector)
    found = dag.best_path_constrained(
        SOURCE, SINK, PrefixConstraint.unconstrained(), emitted_symbols
    )
    if found is None:
        return None
    weight, labels = found
    output, _index = decode_path(labels)
    return weight, output
