"""Prefix constraints over the answer space, and the layered product DP.

Both enumeration theorems for general transducers rest on one class of
constraints over output strings (the paper's *prefix constraints*): a
constraint is a pair ``(w, X)`` of a prefix ``w`` and a forbidden set
``X`` of "next symbols" (output symbols, or the end-of-string marker
:data:`END`), denoting

    { o : o[0:|w|] == w  and  next(o) not in X },

where ``next(o)`` is ``o[|w|]`` when ``|o| > |w|`` and :data:`END` when
``o == w``. The paper enforces such a constraint by transforming the
transducer; we equivalently run the layered product DP over

    (position i, Markov node sigma, transducer state q, output progress j)

with ``j`` tracking how much of ``w`` has been emitted (``j = |w| + 1``
meaning "past the prefix, with an allowed next symbol"). Two queries on
this graph power everything:

* :func:`has_answer` — boolean reachability: does the constrained answer
  space intersect ``A^omega(mu)``? (Theorem 4.1's emptiness test.)
* :func:`best_evidence` — Viterbi with backpointers: the most likely world
  whose output satisfies the constraint, together with that output.
  (Theorem 4.3's constrained optimization: the answer it returns is the
  ``E_max``-best answer in the subspace.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Sequence

from repro.errors import AlphabetMismatchError
from repro.markov.sequence import MarkovSequence, Number
from repro.transducers.transducer import Transducer

Symbol = Hashable


class _End:
    """Sentinel marking "the answer ends here" in forbidden-next sets."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "END"


#: The end-of-answer marker usable inside ``PrefixConstraint.forbidden``.
END = _End()


@dataclass(frozen=True)
class PrefixConstraint:
    """The constraint ``{ o : o starts with prefix, next(o) not in forbidden }``.

    ``exact=True`` restricts to ``{ prefix }`` itself (equivalent to
    forbidding every output symbol but allowing :data:`END`).
    """

    prefix: tuple = ()
    forbidden: frozenset = field(default_factory=frozenset)
    exact: bool = False

    @staticmethod
    def unconstrained() -> "PrefixConstraint":
        """The whole answer space."""
        return PrefixConstraint()

    @staticmethod
    def with_prefix(prefix: Sequence) -> "PrefixConstraint":
        """All answers extending (or equal to) ``prefix``."""
        return PrefixConstraint(prefix=tuple(prefix))

    @staticmethod
    def exact_string(output: Sequence) -> "PrefixConstraint":
        """The singleton candidate ``{ output }``."""
        return PrefixConstraint(prefix=tuple(output), exact=True)

    def admits(self, output: Sequence) -> bool:
        """Membership test (used by tests; the DPs never materialize it)."""
        output = tuple(output)
        k = len(self.prefix)
        if output[:k] != self.prefix:
            return False
        if len(output) == k:
            return True if self.exact else END not in self.forbidden
        if self.exact:
            return False
        return output[k] not in self.forbidden

    def advance(self, j: int, emission: tuple) -> int | None:
        """Advance output progress ``j`` through ``emission``.

        Progress values: ``0..len(prefix)`` = that many prefix symbols
        matched; ``len(prefix) + 1`` = strictly past the prefix. Returns
        the new progress, or None if the emission violates the constraint.
        """
        k = len(self.prefix)
        past = k + 1
        for symbol in emission:
            if j < k:
                if symbol != self.prefix[j]:
                    return None
                j += 1
            elif j == k:
                if self.exact or symbol in self.forbidden:
                    return None
                j = past
            # j == past: anything goes.
        return j

    def final_ok(self, j: int) -> bool:
        """May an answer end with progress ``j``?"""
        k = len(self.prefix)
        if j < k:
            return False
        if j == k:
            return True if self.exact else END not in self.forbidden
        return True

    def partition_after(self, answer: tuple, alphabet: Sequence) -> list["PrefixConstraint"]:
        """Lawler–Murty partition of this subspace minus ``answer``.

        Returns constraints that are pairwise disjoint and whose union is
        exactly this constraint's answer set without ``answer``. (Children
        are only *candidate* subspaces — callers test them for emptiness.)
        ``alphabet`` is unused but kept for signature stability.
        """
        if self.exact:
            return []
        k = len(self.prefix)
        children: list[PrefixConstraint] = []
        for p in range(k, len(answer)):
            forbidden = frozenset({answer[p]}) | (self.forbidden if p == k else frozenset())
            children.append(PrefixConstraint(prefix=answer[:p], forbidden=forbidden))
        tail_forbidden = frozenset({END}) | (
            self.forbidden if len(answer) == k else frozenset()
        )
        children.append(PrefixConstraint(prefix=answer, forbidden=tail_forbidden))
        return children


def _check(sequence: MarkovSequence, transducer: Transducer) -> None:
    if transducer.input_alphabet != sequence.alphabet:
        raise AlphabetMismatchError(
            "transducer alphabet does not match the Markov sequence alphabet"
        )


def has_answer(
    sequence: MarkovSequence,
    transducer: Transducer,
    constraint: PrefixConstraint = PrefixConstraint(),
) -> bool:
    """Does some answer of ``A^omega(mu)`` satisfy the constraint?

    Boolean forward pass over the layered product graph — polynomial in
    the input and in ``len(constraint.prefix)``.
    """
    _check(sequence, transducer)
    nfa = transducer.nfa
    n = sequence.length

    layer: set[tuple[Symbol, object, int]] = set()
    for symbol, _prob in sequence.initial_support():
        for state, emission in transducer.moves(nfa.initial, symbol):
            j = constraint.advance(0, emission)
            if j is not None:
                layer.add((symbol, state, j))

    for i in range(1, n):
        nxt: set[tuple[Symbol, object, int]] = set()
        for symbol, state, j in layer:
            for target, _prob in sequence.successors(i, symbol):
                for target_state, emission in transducer.moves(state, target):
                    j2 = constraint.advance(j, emission)
                    if j2 is not None:
                        nxt.add((target, target_state, j2))
        layer = nxt
        if not layer:
            return False

    return any(
        state in nfa.accepting and constraint.final_ok(j)
        for _symbol, state, j in layer
    )


def best_evidence(
    sequence: MarkovSequence,
    transducer: Transducer,
    constraint: PrefixConstraint = PrefixConstraint(),
) -> tuple[Number, tuple, tuple] | None:
    """The most likely evidence whose output satisfies the constraint.

    Returns ``(probability, output, world)`` maximizing the world
    probability over all pairs (world, accepting run) whose emitted output
    lies in the constraint's answer set — i.e. the returned output is the
    answer of maximal ``E_max`` in the subspace, and the returned world is
    a witness attaining it. Returns None when the subspace is empty.
    """
    _check(sequence, transducer)
    nfa = transducer.nfa
    n = sequence.length

    # Viterbi layer: key -> (score, parent_key, emission). Parents refer to
    # the previous layer; layers are retained for backtracking.
    Key = tuple  # (symbol, state, j)
    layers: list[dict[Key, tuple[Number, Key | None, tuple]]] = []
    layer: dict[Key, tuple[Number, Key | None, tuple]] = {}
    for symbol, prob in sequence.initial_support():
        for state, emission in transducer.moves(nfa.initial, symbol):
            j = constraint.advance(0, emission)
            if j is None:
                continue
            key = (symbol, state, j)
            if key not in layer or prob > layer[key][0]:
                layer[key] = (prob, None, emission)
    layers.append(layer)

    for i in range(1, n):
        nxt: dict[Key, tuple[Number, Key | None, tuple]] = {}
        for key, (score, _parent, _emission) in layer.items():
            symbol, state, j = key
            for target, prob in sequence.successors(i, symbol):
                weight = score * prob
                for target_state, emission in transducer.moves(state, target):
                    j2 = constraint.advance(j, emission)
                    if j2 is None:
                        continue
                    new_key = (target, target_state, j2)
                    if new_key not in nxt or weight > nxt[new_key][0]:
                        nxt[new_key] = (weight, key, emission)
        layer = nxt
        layers.append(layer)
        if not layer:
            return None

    best_key: Key | None = None
    best_score: Number = 0
    for key, (score, _parent, _emission) in layer.items():
        _symbol, state, j = key
        if state in nfa.accepting and constraint.final_ok(j) and (
            best_key is None or score > best_score
        ):
            best_key, best_score = key, score
    if best_key is None:
        return None

    # Backtrack world and output.
    world: list[Symbol] = []
    output_parts: list[tuple] = []
    key = best_key
    for depth in range(n - 1, -1, -1):
        score, parent, emission = layers[depth][key]
        world.append(key[0])
        output_parts.append(emission)
        if parent is None:
            break
        key = parent
    world.reverse()
    output_parts.reverse()
    output: tuple = ()
    for part in output_parts:
        output = output + part
    return best_score, output, tuple(world)
