"""Evidence ranking: the best worlds supporting a given answer.

A probabilistic database should be able to *explain* an answer (cf. the
lineage systems of Section 6): which possible worlds contribute, and how
much? For a transducer answer ``o`` the evidences are the worlds
transduced into ``o``; this module enumerates them in decreasing
probability by Lawler–Murty over world-prefix constraints, where each
constrained optimum is a Viterbi pass over the layered product graph
restricted to the exact output ``o``.

The first evidence's probability is exactly ``E_max(o)`` (Section 4.2),
and the probabilities sum to ``conf(o)`` — both asserted in the tests.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass

from repro.markov.sequence import MarkovSequence, Number
from repro.transducers.transducer import Transducer
from repro.enumeration.constraints import PrefixConstraint, _check
from repro.enumeration.lawler import lawler_enumerate

Symbol = Hashable


@dataclass(frozen=True)
class _WorldSpace:
    """Worlds extending ``prefix`` whose next node avoids ``forbidden``."""

    prefix: tuple
    forbidden: frozenset


def best_evidence_for_answer(
    sequence: MarkovSequence,
    transducer: Transducer,
    answer: Sequence,
    space: _WorldSpace = _WorldSpace((), frozenset()),
) -> tuple[Number, tuple] | None:
    """Most likely world in ``space`` transduced into ``answer``.

    Viterbi over ``(node, transducer state, output progress)`` where the
    output must equal ``answer`` exactly; the world prefix is forced and
    the first free node avoids the forbidden set.
    """
    _check(sequence, transducer)
    constraint = PrefixConstraint.exact_string(tuple(answer))
    nfa = transducer.nfa
    n = sequence.length
    boundary = len(space.prefix)

    Key = tuple  # (symbol, state, progress)
    layers: list[dict[Key, tuple[Number, Key | None]]] = []
    layer: dict[Key, tuple[Number, Key | None]] = {}
    for symbol, prob in sequence.initial_support():
        if boundary >= 1 and symbol != space.prefix[0]:
            continue
        if boundary == 0 and symbol in space.forbidden:
            continue
        for state, emission in transducer.moves(nfa.initial, symbol):
            j = constraint.advance(0, emission)
            if j is None:
                continue
            key = (symbol, state, j)
            if key not in layer or prob > layer[key][0]:
                layer[key] = (prob, None)
    layers.append(layer)

    for i in range(1, n):
        nxt: dict[Key, tuple[Number, Key | None]] = {}
        for key, (score, _parent) in layer.items():
            symbol, state, j = key
            for target, prob in sequence.successors(i, symbol):
                if i < boundary and target != space.prefix[i]:
                    continue
                if i == boundary and target in space.forbidden:
                    continue
                weight = score * prob
                for target_state, emission in transducer.moves(state, target):
                    j2 = constraint.advance(j, emission)
                    if j2 is None:
                        continue
                    new_key = (target, target_state, j2)
                    if new_key not in nxt or weight > nxt[new_key][0]:
                        nxt[new_key] = (weight, key)
        layer = nxt
        layers.append(layer)
        if not layer:
            return None

    best_key, best_score = None, 0
    for key, (score, _parent) in layer.items():
        _symbol, state, j = key
        if state in nfa.accepting and constraint.final_ok(j):
            if best_key is None or score > best_score:
                best_key, best_score = key, score
    if best_key is None:
        return None

    world: list[Symbol] = []
    key = best_key
    for depth in range(n - 1, -1, -1):
        score, parent = layers[depth][key]
        world.append(key[0])
        if parent is None:
            break
        key = parent
    world.reverse()
    return best_score, tuple(world)


def enumerate_evidences(
    sequence: MarkovSequence,
    transducer: Transducer,
    answer: Sequence,
) -> Iterator[tuple[Number, tuple]]:
    """All evidences of ``answer`` in decreasing probability.

    Lawler–Murty over world-prefix subspaces; polynomial delay. Works for
    nondeterministic transducers too (a world is an evidence if *some*
    accepting run emits the answer).
    """
    target = tuple(answer)

    def best(space: _WorldSpace):
        return best_evidence_for_answer(sequence, transducer, target, space)

    def partition(space: _WorldSpace, world: tuple):
        children = []
        for position in range(len(space.prefix), len(world)):
            forbidden = frozenset({world[position]}) | (
                space.forbidden if position == len(space.prefix) else frozenset()
            )
            children.append(_WorldSpace(world[:position], forbidden))
        return children

    yield from lawler_enumerate(_WorldSpace((), frozenset()), best, partition)


def explain(
    sequence: MarkovSequence,
    transducer: Transducer,
    answer: Sequence,
    k: int = 5,
) -> list[tuple[Number, tuple]]:
    """The top-``k`` evidences of ``answer`` (decreasing probability).

    The first entry's probability equals ``E_max(answer)``; summing *all*
    evidences' probabilities gives ``conf(answer)`` — ``explain`` is the
    lineage view connecting the two scores of Section 4.2.
    """
    results: list[tuple[Number, tuple]] = []
    for item in enumerate_evidences(sequence, transducer, answer):
        results.append(item)
        if len(results) >= k:
            break
    return results
