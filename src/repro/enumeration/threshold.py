"""Confidence-threshold queries.

"All answers with confidence at least theta" is the natural companion of
top-k. Its tractability tracks Table 2 exactly:

* **indexed s-projectors** — the exact decreasing-confidence enumeration
  (Theorem 5.7) makes this a simple cut-off: stream until the confidence
  drops below theta. Output-sensitive and exact.
* **deterministic / uniform transducers** — exact ranked enumeration is
  intractable (Theorem 4.4), but the E_max order still yields a *sound
  pruning rule*: ``conf(o) <= support_size * E_max(o)``, so once
  ``E_max`` falls below ``theta / support_size`` no later answer can
  qualify. Each streamed candidate's exact confidence is then checked
  with the class's confidence algorithm. Complete, but the cut-off may
  come late when the support is large (that looseness is Theorem 4.4's
  content).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.markov.sequence import MarkovSequence, Number
from repro.transducers.sprojector import IndexedSProjector, SProjector
from repro.transducers.transducer import Transducer
from repro.core.engine import compute_confidence
from repro.enumeration.emax import enumerate_emax
from repro.enumeration.indexed_ranked import enumerate_indexed_ranked


def indexed_answers_above(
    sequence: MarkovSequence, projector: IndexedSProjector | SProjector, theta: Number
) -> Iterator[tuple[Number, tuple]]:
    """All indexed answers with ``conf >= theta``, in decreasing confidence.

    Exact and output-sensitive (Theorem 5.7's enumeration, cut at theta).
    """
    for confidence, answer in enumerate_indexed_ranked(sequence, projector):
        if confidence < theta:
            return
        yield confidence, answer


def transducer_answers_above(
    sequence: MarkovSequence,
    transducer: Transducer,
    theta: Number,
    allow_exponential: bool = False,
) -> Iterator[tuple[Number, tuple]]:
    """All transducer answers with ``conf >= theta`` (unordered-ish).

    Streams the E_max order and stops once the sound bound
    ``conf <= support_size * E_max`` rules out all remaining answers;
    every streamed candidate's exact confidence is computed and filtered.
    Answers are yielded in E_max order, which is *not* confidence order.
    """
    if theta <= 0:
        raise ValueError("theta must be positive (every answer has conf > 0)")
    support = sequence.support_size()
    cutoff = theta / support
    for emax, answer in enumerate_emax(sequence, transducer):
        if emax < cutoff:
            return
        confidence = compute_confidence(
            sequence, transducer, answer, allow_exponential=allow_exponential
        )
        if confidence >= theta:
            yield confidence, answer
