"""Unranked enumeration of all answers (Theorem 4.1).

The algorithm walks the prefix tree of the output alphabet depth-first.
At a tree node ``w`` it (a) emits ``w`` if ``w`` itself is an answer and
(b) recurses into each child ``w . d`` whose subtree contains an answer.
Both tests are :func:`~repro.enumeration.constraints.has_answer` calls —
the emptiness test the paper reduces to via its prefix-constraint
transformation, implemented here as the layered boolean DP.

Guarantees, exactly as in the theorem: every node visited has at least one
answer in its subtree, so the delay between consecutive answers is bounded
by (answer length) x |Delta| emptiness tests — polynomial in the input and
in the two answers surrounding the delay — and the space is one root-to-
node path plus the DP, i.e. polynomial regardless of how many answers have
been printed.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.markov.sequence import MarkovSequence
from repro.transducers.sprojector import SProjector
from repro.transducers.transducer import Transducer
from repro.enumeration.constraints import PrefixConstraint, has_answer


def _as_transducer(query) -> Transducer:
    if isinstance(query, SProjector):
        return query.to_transducer()
    if isinstance(query, Transducer):
        return query
    raise TypeError(f"unsupported query type {type(query).__name__}")


def enumerate_unranked(
    sequence: MarkovSequence, query, max_output_length: int | None = None
) -> Iterator[tuple]:
    """Yield every answer of ``query`` on ``sequence``, unordered.

    ``query`` is a :class:`Transducer` or an :class:`SProjector` (compiled
    on the fly). Answers are output tuples; the iteration order is
    lexicographic in the canonical output-alphabet order (a by-product of
    the DFS, not a guarantee the theorem needs).

    ``max_output_length`` optionally truncates the exploration depth —
    useful as a safety net; the natural bound is ``n`` times the longest
    emission, past which no answers exist anyway.
    """
    transducer = _as_transducer(query)
    alphabet = sorted(transducer.output_alphabet, key=repr)

    if not has_answer(sequence, transducer, PrefixConstraint.unconstrained()):
        return

    # Iterative DFS; each stack frame is (prefix, next-child-index, emitted?).
    stack: list[list] = [[(), 0, False]]
    while stack:
        frame = stack[-1]
        prefix, child_index, emitted = frame
        if not emitted:
            frame[2] = True
            if has_answer(sequence, transducer, PrefixConstraint.exact_string(prefix)):
                yield prefix
        if max_output_length is not None and len(prefix) >= max_output_length:
            stack.pop()
            continue
        advanced = False
        while child_index < len(alphabet):
            child = prefix + (alphabet[child_index],)
            child_index += 1
            frame[1] = child_index
            if has_answer(sequence, transducer, PrefixConstraint.with_prefix(child)):
                stack.append([child, 0, False])
                advanced = True
                break
        if not advanced:
            stack.pop()


def count_answers(sequence: MarkovSequence, query, limit: int | None = None) -> int:
    """Count answers by running the enumerator (stops early at ``limit``)."""
    count = 0
    for _answer in enumerate_unranked(sequence, query):
        count += 1
        if limit is not None and count >= limit:
            break
    return count
