"""Graphviz DOT renderings of the library's objects.

``sequence_to_dot`` draws a Markov sequence in the layered style of
Figure 1 (one column of nodes per position, probability-labeled edges);
``transducer_to_dot`` draws a transducer in the style of Figure 2
(``sigma : o`` edge labels, double circles for accepting states). The
output is plain DOT text — render it with any graphviz installation.
"""

from __future__ import annotations

from repro.markov.sequence import MarkovSequence
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.transducers.transducer import Transducer


def _quote(value) -> str:
    return '"' + str(value).replace('"', '\\"') + '"'


def _fmt_prob(prob) -> str:
    try:
        return f"{float(prob):.4g}"
    except (TypeError, ValueError):  # pragma: no cover - exotic number types
        return str(prob)


def sequence_to_dot(sequence: MarkovSequence, name: str = "markov_sequence") -> str:
    """Layered drawing of a Markov sequence (Figure 1 style)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box, style=rounded];"]
    lines.append('  start [shape=point, label=""];')

    def node_id(position: int, symbol) -> str:
        return _quote(f"{symbol}@{position}")

    # Emit only nodes reachable with positive probability, like the figure.
    reachable: set = set()
    for symbol, prob in sequence.initial_support():
        reachable.add((1, symbol))
        lines.append(f"  {node_id(1, symbol)} [label={_quote(symbol)}];")
        lines.append(f"  start -> {node_id(1, symbol)} [label={_quote(_fmt_prob(prob))}];")
    for i in range(1, sequence.length):
        next_reachable: set = set()
        for position, symbol in sorted(reachable, key=repr):
            if position != i:
                continue
            for target, prob in sequence.successors(i, symbol):
                if (i + 1, target) not in next_reachable:
                    next_reachable.add((i + 1, target))
                    lines.append(
                        f"  {node_id(i + 1, target)} [label={_quote(target)}];"
                    )
                lines.append(
                    f"  {node_id(i, symbol)} -> {node_id(i + 1, target)}"
                    f" [label={_quote(_fmt_prob(prob))}];"
                )
        reachable |= next_reachable
    lines.append("}")
    return "\n".join(lines)


def automaton_to_dot(automaton: NFA | DFA, name: str = "automaton") -> str:
    """Drawing of an NFA or DFA (double circles for accepting states)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    lines.append('  start [shape=point, label=""];')
    for state in sorted(automaton.states, key=repr):
        shape = "doublecircle" if state in automaton.accepting else "circle"
        lines.append(f"  {_quote(state)} [shape={shape}];")
    lines.append(f"  start -> {_quote(automaton.initial)};")
    grouped: dict[tuple, list] = {}
    if isinstance(automaton, DFA):
        transitions = automaton.transitions()
    else:
        transitions = automaton.transitions()
    for source, symbol, target in transitions:
        grouped.setdefault((source, target), []).append(symbol)
    for (source, target), symbols in sorted(grouped.items(), key=repr):
        label = ",".join(str(s) for s in sorted(symbols, key=repr))
        lines.append(f"  {_quote(source)} -> {_quote(target)} [label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines)


def transducer_to_dot(transducer: Transducer, name: str = "transducer") -> str:
    """Drawing of a transducer with ``sigma : o`` edge labels (Figure 2 style)."""
    nfa = transducer.nfa
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    lines.append('  start [shape=point, label=""];')
    for state in sorted(nfa.states, key=repr):
        shape = "doublecircle" if state in nfa.accepting else "circle"
        lines.append(f"  {_quote(state)} [shape={shape}];")
    lines.append(f"  start -> {_quote(nfa.initial)};")
    grouped: dict[tuple, list] = {}
    for source, symbol, target in nfa.transitions():
        emission = transducer.emission(source, symbol, target)
        out = "".join(str(s) for s in emission) if emission else "ε"
        grouped.setdefault((source, target, out), []).append(symbol)
    for (source, target, out), symbols in sorted(grouped.items(), key=repr):
        label = ",".join(str(s) for s in sorted(symbols, key=repr)) + " : " + out
        lines.append(f"  {_quote(source)} -> {_quote(target)} [label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines)
