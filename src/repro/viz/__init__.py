"""Graphviz DOT export (regenerating the shapes of Figures 1 and 2)."""

from repro.viz.dot import automaton_to_dot, sequence_to_dot, transducer_to_dot

__all__ = ["sequence_to_dot", "automaton_to_dot", "transducer_to_dot"]
