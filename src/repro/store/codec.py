"""Exact, JSON-safe encoding of frontier cells and probability values.

A streaming frontier maps *hashable composite keys* to probability mass:
deterministic-plan cells are ``(node, state, output)`` triples, monitor
cells are ``(node, dfa_state)`` pairs, and the state coordinates may be
arbitrary nestings of strings, tuples, and frozensets (subset
construction produces frozensets of states; product constructions
produce tuples). Snapshots must round-trip these keys **bit-exactly** —
a recovered frontier whose keys merely "look like" the originals would
silently fork the DP — so every term is encoded as a small tagged JSON
array and decoded back to the identical Python value:

====  ==========================  =========================
tag   encodes                     form
====  ==========================  =========================
"s"   str                         ``["s", value]``
"i"   int                         ``["i", value]``
"b"   bool                        ``["b", value]``
"d"   float                       ``["d", value]``
"f"   fractions.Fraction          ``["f", "p/q"]``
"t"   tuple                       ``["t", [term, ...]]``
"S"   frozenset                   ``["S", [term, ...]]``
"n"   None                        ``["n"]``
====  ==========================  =========================

Frozenset elements are sorted by their serialized form, so equal sets
encode identically and snapshot files are deterministic. Probability
*values* reuse the repo's ``"p/q"`` interchange convention
(:mod:`repro.io.json_format`): ``Fraction`` and ``int`` masses stay
exact rationals, floats round-trip through JSON's shortest-repr rule.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from fractions import Fraction

from repro.errors import ReproError
from repro.io.json_format import _decode_number, _encode_number
from repro.markov.sequence import Number


def encode_term(value) -> list:
    """Encode one hashable frontier-key term as a tagged JSON array."""
    if value is None:
        return ["n"]
    if isinstance(value, bool):  # before int: bool is an int subclass
        return ["b", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["d", value]
    if isinstance(value, Fraction):
        return ["f", f"{value.numerator}/{value.denominator}"]
    if isinstance(value, tuple):
        return ["t", [encode_term(item) for item in value]]
    if isinstance(value, frozenset):
        encoded = [encode_term(item) for item in value]
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return ["S", encoded]
    raise ReproError(
        f"cannot snapshot frontier term of type {type(value).__name__}: {value!r}"
    )


def decode_term(document):
    """Decode a tagged term back to the identical Python value."""
    if not isinstance(document, list) or not document:
        raise ReproError(f"malformed frontier term {document!r}")
    tag = document[0]
    if tag == "n":
        return None
    if tag in ("s", "i", "b", "d"):
        return document[1]
    if tag == "f":
        numerator, denominator = document[1].split("/")
        return Fraction(int(numerator), int(denominator))
    if tag == "t":
        return tuple(decode_term(item) for item in document[1])
    if tag == "S":
        return frozenset(decode_term(item) for item in document[1])
    raise ReproError(f"unknown frontier term tag {tag!r}")


def encode_value(value: Number):
    """Encode a probability mass (``Fraction``/``int`` -> ``"p/q"``)."""
    return _encode_number(value)


def decode_value(value) -> Number:
    """Decode a probability mass from its wire form."""
    return _decode_number(value)


def encode_transition(transition: Mapping) -> dict:
    """Encode an append payload (source -> successor distribution)."""
    return {
        str(source): {str(target): _encode_number(p) for target, p in row.items()}
        for source, row in transition.items()
    }


def decode_transition(document) -> dict:
    """Decode an append payload back to ``{source: {target: prob}}``."""
    if not isinstance(document, dict):
        raise ReproError(f"malformed transition document {document!r}")
    try:
        return {
            source: {target: _decode_number(p) for target, p in row.items()}
            for source, row in document.items()
        }
    except (AttributeError, TypeError) as exc:
        raise ReproError(f"malformed transition document: {exc}") from exc


def encode_frontier(frontier: Mapping) -> list:
    """Encode a frontier mapping as a deterministic list of cell pairs."""
    cells = [
        [encode_term(key), encode_value(mass)] for key, mass in frontier.items()
    ]
    cells.sort(key=lambda cell: json.dumps(cell[0], sort_keys=True))
    return cells


def decode_frontier(document) -> dict:
    """Decode a frontier cell list back to ``{key: mass}``."""
    if not isinstance(document, list):
        raise ReproError(f"malformed frontier document {document!r}")
    frontier: dict = {}
    for cell in document:
        if not isinstance(cell, list) or len(cell) != 2:
            raise ReproError(f"malformed frontier cell {cell!r}")
        frontier[decode_term(cell[0])] = decode_value(cell[1])
    return frontier
