"""Frontier snapshots: the materialized state the log suffix replays onto.

A snapshot file ``snapshots/{lsn:016d}.snap`` captures everything the
service holds in memory at one log position:

* every stream's sequence (the repro.io interchange document);
* the registered query catalog;
* every attached :class:`~repro.runtime.incremental.StreamingEvaluator`
  as a ``(stream, query, timestep index, frontier)`` tuple — the plan is
  recompiled from the query at load time (plans are deterministic per
  fingerprint, so the compiled state objects are value-equal to the ones
  in the persisted frontier keys);
* every standing query, including its
  :class:`~repro.serve.alerts.ThresholdWatch` hysteresis state (value +
  armed flag) and, for monitor-kind queries, the product-DP layer.

Recovery loads the newest snapshot and replays only records with
``lsn > snapshot.lsn`` — the whole point: restart cost is proportional
to the log *suffix*, not the stream history.

Snapshots are written atomically (temp file + ``os.replace`` + fsync),
so a crash mid-snapshot leaves the previous snapshot intact and the
recovery path untouched.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.errors import ReproError
from repro.io.json_format import (
    query_from_dict,
    query_to_dict,
    sequence_from_dict,
    sequence_to_dict,
)
from repro.markov.sequence import MarkovSequence
from repro.store.codec import (
    decode_frontier,
    decode_term,
    decode_value,
    encode_frontier,
    encode_term,
    encode_value,
)

#: On-disk snapshot format identifier.
SNAPSHOT_FORMAT = "repro-store/1"

_SNAPSHOT_SUFFIX = ".snap"


@dataclass
class EvaluatorState:
    """One attached streaming evaluator, frozen at the snapshot LSN."""

    stream: str
    query: object
    length: int
    frontier: dict


@dataclass
class StandingState:
    """One standing query with its full alert/hysteresis state."""

    name: str
    stream: str
    kind: str  # "answer" | "monitor"
    label: str
    query: object
    output: tuple
    threshold: object
    rearm: object
    value: object
    armed: bool
    alerts_fired: int
    monitor_length: int | None = None
    monitor_layer: dict | None = None


@dataclass
class StoreState:
    """Everything a snapshot persists (and recovery rebuilds)."""

    streams: dict[str, MarkovSequence] = field(default_factory=dict)
    queries: dict[str, object] = field(default_factory=dict)
    evaluators: list[EvaluatorState] = field(default_factory=list)
    standing: list[StandingState] = field(default_factory=list)


def state_to_dict(state: StoreState) -> dict:
    """Encode a :class:`StoreState` as a JSON-ready document."""
    return {
        "format": SNAPSHOT_FORMAT,
        "streams": {
            name: sequence_to_dict(sequence)
            for name, sequence in sorted(state.streams.items())
        },
        "queries": {
            name: query_to_dict(query)
            for name, query in sorted(state.queries.items())
        },
        "evaluators": [
            {
                "stream": entry.stream,
                "query": query_to_dict(entry.query),
                "length": entry.length,
                "frontier": encode_frontier(entry.frontier),
            }
            for entry in state.evaluators
        ],
        "standing": [
            {
                "name": entry.name,
                "stream": entry.stream,
                "kind": entry.kind,
                "label": entry.label,
                "query": query_to_dict(entry.query),
                "output": encode_term(tuple(entry.output)),
                "threshold": encode_value(entry.threshold),
                "rearm": encode_value(entry.rearm),
                "value": (
                    encode_value(entry.value) if entry.value is not None else None
                ),
                "armed": entry.armed,
                "alerts_fired": entry.alerts_fired,
                "monitor": (
                    {
                        "length": entry.monitor_length,
                        "layer": encode_frontier(entry.monitor_layer),
                    }
                    if entry.monitor_layer is not None
                    else None
                ),
            }
            for entry in sorted(state.standing, key=lambda s: s.name)
        ],
    }


def state_from_dict(document: dict) -> StoreState:
    """Decode a snapshot document back to a :class:`StoreState`."""
    if not isinstance(document, dict) or document.get("format") != SNAPSHOT_FORMAT:
        raise ReproError(
            f"not a {SNAPSHOT_FORMAT} snapshot: {document.get('format')!r}"
            if isinstance(document, dict)
            else f"malformed snapshot document {type(document).__name__}"
        )
    try:
        state = StoreState(
            streams={
                name: sequence_from_dict(doc)
                for name, doc in document.get("streams", {}).items()
            },
            queries={
                name: query_from_dict(doc)
                for name, doc in document.get("queries", {}).items()
            },
        )
        for entry in document.get("evaluators", []):
            state.evaluators.append(
                EvaluatorState(
                    stream=entry["stream"],
                    query=query_from_dict(entry["query"]),
                    length=entry["length"],
                    frontier=decode_frontier(entry["frontier"]),
                )
            )
        for entry in document.get("standing", []):
            monitor = entry.get("monitor")
            state.standing.append(
                StandingState(
                    name=entry["name"],
                    stream=entry["stream"],
                    kind=entry["kind"],
                    label=entry["label"],
                    query=query_from_dict(entry["query"]),
                    output=decode_term(entry["output"]),
                    threshold=decode_value(entry["threshold"]),
                    rearm=decode_value(entry["rearm"]),
                    value=(
                        decode_value(entry["value"])
                        if entry.get("value") is not None
                        else None
                    ),
                    armed=bool(entry["armed"]),
                    alerts_fired=entry["alerts_fired"],
                    monitor_length=monitor["length"] if monitor else None,
                    monitor_layer=(
                        decode_frontier(monitor["layer"]) if monitor else None
                    ),
                )
            )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed snapshot document: {exc}") from exc
    return state


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------


def snapshot_path(snapshot_dir: Path, lsn: int) -> Path:
    return Path(snapshot_dir) / f"{lsn:016d}{_SNAPSHOT_SUFFIX}"


def snapshot_paths(snapshot_dir: Path) -> list[Path]:
    """Snapshot files under ``snapshot_dir``, oldest first."""
    return sorted(Path(snapshot_dir).glob(f"*{_SNAPSHOT_SUFFIX}"))


def snapshot_lsn(path: Path) -> int:
    """The log position a snapshot file captures (from its name)."""
    try:
        return int(path.stem)
    except ValueError:
        raise ReproError(f"bad snapshot filename {path.name!r}") from None


def write_snapshot(snapshot_dir: str | Path, lsn: int, state: StoreState) -> Path:
    """Atomically persist ``state`` as the snapshot at ``lsn``.

    The document lands in a temp file that is fsync'd and then
    ``os.replace``'d into place — a crash at any point leaves either the
    old snapshot set or the complete new file, never a torn snapshot.
    """
    snapshot_dir = Path(snapshot_dir)
    snapshot_dir.mkdir(parents=True, exist_ok=True)
    path = snapshot_path(snapshot_dir, lsn)
    start = time.perf_counter()
    payload = json.dumps(state_to_dict(state), separators=(",", ":"), sort_keys=True)
    tmp = path.with_suffix(".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    telemetry.count("store.snapshots")
    telemetry.observe("store.snapshot.seconds", time.perf_counter() - start)
    return path


def load_snapshot(snapshot_dir: str | Path) -> tuple[int, StoreState] | None:
    """Load the newest snapshot; ``None`` when the directory has none."""
    paths = snapshot_paths(Path(snapshot_dir))
    if not paths:
        return None
    path = paths[-1]
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load snapshot {path.name}: {exc}") from exc
    return snapshot_lsn(path), state_from_dict(document)


def latest_snapshot_lsn(snapshot_dir: str | Path) -> int:
    """The newest snapshot's LSN, or 0 when there is none."""
    paths = snapshot_paths(Path(snapshot_dir))
    return snapshot_lsn(paths[-1]) if paths else 0


def delete_snapshots_before(snapshot_dir: str | Path, lsn: int) -> int:
    """Delete snapshots older than ``lsn``; returns the count removed."""
    deleted = 0
    for path in snapshot_paths(Path(snapshot_dir)):
        if snapshot_lsn(path) < lsn:
            path.unlink()
            deleted += 1
    return deleted
