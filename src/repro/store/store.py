"""The durable store facade: one WAL + snapshot set under a data dir.

On-disk layout::

    <data-dir>/
      wal/
        0000000000000001.seg      sealed and live log segments
        ...
      snapshots/
        0000000000000940.snap     frontier snapshots (newest wins)

:class:`Store` is the journal the database and the service write
through. Every mutating operation appends exactly one record *before*
the in-memory commit (write-ahead ordering), so the log is always a
superset of the acknowledged state, and recovery replays it onto the
newest snapshot.

:class:`CompactionPolicy` decides when the log suffix since the last
snapshot has grown enough to fold into a fresh snapshot;
:meth:`Store.compact` performs the fold — snapshot first (atomic), then
rotate the live segment and delete everything the snapshot supersedes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.io.json_format import query_to_dict, sequence_to_dict
from repro.markov.sequence import MarkovSequence
from repro.store.codec import encode_term, encode_transition, encode_value
from repro.store.snapshot import (
    StoreState,
    delete_snapshots_before,
    latest_snapshot_lsn,
    snapshot_paths,
    write_snapshot,
)
from repro.store.wal import (
    DEFAULT_SEGMENT_BYTES,
    DEFAULT_SEGMENT_RECORDS,
    WriteAheadLog,
    segment_paths,
)


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold the log suffix into a fresh snapshot.

    Compaction triggers once the records *or* bytes appended since the
    last snapshot exceed their bound. Either bound can be disabled with
    ``None``; the default policy keys off record count alone, which is
    the quantity that controls replay time.
    """

    max_records: int | None = 1024
    max_bytes: int | None = None

    def should_compact(self, records_since: int, bytes_since: int) -> bool:
        if self.max_records is not None and records_since >= self.max_records:
            return True
        if self.max_bytes is not None and bytes_since >= self.max_bytes:
            return True
        return False


class Store:
    """A write-ahead log plus frontier snapshots under one directory.

    Parameters
    ----------
    data_dir:
        The store root; created (with ``wal/`` and ``snapshots/``) when
        missing. Opening an existing directory repairs a torn final
        record and resumes at the next LSN.
    fsync:
        Sync every appended record to disk before acknowledging
        (durability); ``False`` trades the crash guarantee for speed.
    policy:
        The :class:`CompactionPolicy` consulted by :meth:`should_compact`.
    """

    def __init__(
        self,
        data_dir: str | Path,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        policy: CompactionPolicy | None = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.wal_dir = self.data_dir / "wal"
        self.snapshot_dir = self.data_dir / "snapshots"
        self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        self.policy = policy if policy is not None else CompactionPolicy()
        self.wal = WriteAheadLog(
            self.wal_dir,
            fsync=fsync,
            segment_bytes=segment_bytes,
            segment_records=segment_records,
        )
        self.snapshot_lsn = latest_snapshot_lsn(self.snapshot_dir)
        self._bytes_since_snapshot = 0

    # ------------------------------------------------------------------
    # Journal records (write-ahead: call *before* the in-memory commit)
    # ------------------------------------------------------------------

    def log_stream_created(self, name: str, sequence: MarkovSequence) -> int:
        return self._append(
            "stream_created", {"name": name, "sequence": sequence_to_dict(sequence)}
        )

    def log_append(self, stream: str, transition) -> int:
        return self._append(
            "append", {"stream": stream, "transition": encode_transition(transition)}
        )

    def log_stream_dropped(self, name: str) -> int:
        return self._append("stream_dropped", {"name": name})

    def log_query_registered(self, name: str, query) -> int:
        return self._append(
            "query_registered", {"name": name, "query": query_to_dict(query)}
        )

    def log_standing_registered(
        self,
        name: str,
        stream: str,
        kind: str,
        label: str,
        query,
        output: tuple,
        threshold,
        rearm,
    ) -> int:
        return self._append(
            "standing_registered",
            {
                "name": name,
                "stream": stream,
                "kind": kind,
                "label": label,
                "query": query_to_dict(query),
                "output": encode_term(tuple(output)),
                "threshold": encode_value(threshold),
                "rearm": encode_value(rearm) if rearm is not None else None,
            },
        )

    def log_standing_dropped(self, name: str) -> int:
        return self._append("standing_dropped", {"name": name})

    def _append(self, record_type: str, data: dict) -> int:
        lsn = self.wal.append(record_type, data)
        self._bytes_since_snapshot += 1  # refreshed precisely on compact
        return lsn

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self.wal.last_lsn

    @property
    def records_since_snapshot(self) -> int:
        return self.wal.last_lsn - self.snapshot_lsn

    def should_compact(self) -> bool:
        """Whether the policy asks for a compaction right now."""
        return self.policy.should_compact(
            self.records_since_snapshot, self._bytes_since_snapshot
        )

    def compact(self, state: StoreState) -> Path:
        """Fold the log into a fresh snapshot of ``state`` at the head LSN.

        The caller must pass a ``state`` consistent with every record up
        to :attr:`last_lsn` (i.e. capture it while holding the same
        locks that order appends). Ordering is crash-safe: the snapshot
        lands atomically first; only then is the live segment rotated
        and everything the snapshot supersedes (older segments, older
        snapshots) deleted. A crash between those steps merely leaves
        extra files that the next compaction removes.
        """
        start = time.perf_counter()
        lsn = self.wal.last_lsn
        write_snapshot(self.snapshot_dir, lsn, state)
        self.snapshot_lsn = lsn
        self._bytes_since_snapshot = 0
        fresh = self.wal.rotate()
        self.wal.delete_segments_before(fresh)
        delete_snapshots_before(self.snapshot_dir, lsn)
        telemetry.count("store.compactions")
        telemetry.observe("store.compaction.seconds", time.perf_counter() - start)
        return fresh

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Seal the live segment (flush + fsync); the store is quiescent."""
        self.wal.close()

    def stats(self) -> dict:
        """Occupancy counters for the service's ``stats`` command."""
        segments = segment_paths(self.wal_dir)
        return {
            "data_dir": str(self.data_dir),
            "last_lsn": self.wal.last_lsn,
            "snapshot_lsn": self.snapshot_lsn,
            "records_since_snapshot": self.records_since_snapshot,
            "segments": len(segments),
            "snapshots": len(snapshot_paths(self.snapshot_dir)),
            "wal_bytes": sum(path.stat().st_size for path in segments),
            "fsync": self.wal.fsync,
        }
