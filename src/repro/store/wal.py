"""The append-only segment log: length-prefixed, checksummed NDJSON.

On disk a log is a directory of numbered *segment* files::

    <data-dir>/wal/
      0000000000000001.seg     records with LSN 1..k
      00000000000000k+1.seg    records with LSN k+1.. (live segment)

Each record is one line framed as::

    {payload_length:08x}{crc32:08x} {payload}\\n

where ``payload`` is a compact JSON object
``{"lsn": N, "type": ..., "data": {...}}`` and the CRC covers the
payload bytes. Probabilities inside ``data`` follow the repo's exact
``"p/q"`` convention, so replaying a record reproduces the same
``Fraction`` values bit-for-bit.

Durability and damage model
---------------------------
:meth:`WriteAheadLog.append` writes, flushes, and (by default) fsyncs
before returning — a record handed back to the caller is on disk. A
crash can therefore leave at most a *torn tail*: a trailing byte prefix
of the record being written when the process died. Scanning classifies
damage accordingly:

* a frame that runs past the end of the **final** segment (or trailing
  bytes too short to hold a header) is a torn tail — recovery truncates
  it and continues;
* a fully present frame that fails its checksum, framing, or JSON parse
  is **corruption** (something other than a torn append-in-flight wrote
  those bytes) and raises :class:`~repro.errors.ReproError`;
* any damage in a non-final segment is corruption — earlier segments
  were sealed by a successful later append, so no torn tail can live
  there.

LSNs are assigned densely (1, 2, 3, ...); a gap or reordering fails the
scan. Segment files are named by the first LSN they hold, which is what
lets compaction delete whole segments older than a snapshot without
reading them.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.errors import ReproError

#: Bytes of ``{length:08x}{crc:08x} `` before each payload.
_HEADER_LEN = 17

#: Rotate the live segment past this many bytes.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Rotate the live segment past this many records.
DEFAULT_SEGMENT_RECORDS = 4096

_SEGMENT_SUFFIX = ".seg"


def frame_record(payload: bytes) -> bytes:
    """Frame one payload as a length-prefixed, checksummed line."""
    return b"%08x%08x " % (len(payload), zlib.crc32(payload)) + payload + b"\n"


def encode_record(lsn: int, record_type: str, data: dict) -> bytes:
    """Serialize one record to its framed wire form."""
    payload = json.dumps(
        {"lsn": lsn, "type": record_type, "data": data},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return frame_record(payload)


@dataclass(frozen=True)
class SegmentInfo:
    """Scan summary of one segment file."""

    path: Path
    records: int
    good_bytes: int
    first_lsn: int | None
    last_lsn: int | None
    torn_bytes: int = 0


@dataclass
class LogScan:
    """The result of scanning a whole log directory."""

    records: list[dict] = field(default_factory=list)
    segments: list[SegmentInfo] = field(default_factory=list)
    torn_bytes: int = 0
    truncated: bool = False

    @property
    def last_lsn(self) -> int:
        return self.records[-1]["lsn"] if self.records else 0

    @property
    def total_bytes(self) -> int:
        return sum(segment.good_bytes for segment in self.segments)


def _corrupt(path: Path, offset: int, reason: str) -> ReproError:
    return ReproError(
        f"corrupt WAL record in {path.name} at byte {offset}: {reason} "
        "(refusing to recover past interior damage; restore from a backup "
        "or remove the damaged segment explicitly)"
    )


def scan_segment(path: Path, final: bool) -> tuple[list[dict], SegmentInfo]:
    """Parse one segment; returns its records and a scan summary.

    ``final`` marks the last segment of the log, the only place a torn
    tail is legal. Interior damage raises :class:`ReproError`.
    """
    data = path.read_bytes()
    records: list[dict] = []
    pos = 0
    torn_at: int | None = None
    while pos < len(data):
        remaining = len(data) - pos
        if remaining < _HEADER_LEN:
            torn_at = pos
            break
        header = data[pos : pos + _HEADER_LEN]
        try:
            length = int(header[0:8], 16)
            crc = int(header[8:16], 16)
        except ValueError as exc:
            raise _corrupt(path, pos, f"bad frame header {header!r}") from exc
        if header[16:17] != b" ":
            raise _corrupt(path, pos, f"bad frame header {header!r}")
        end = pos + _HEADER_LEN + length + 1
        if end > len(data):
            torn_at = pos
            break
        payload = data[pos + _HEADER_LEN : end - 1]
        if data[end - 1 : end] != b"\n":
            raise _corrupt(path, pos, "missing record terminator")
        if zlib.crc32(payload) != crc:
            raise _corrupt(path, pos, "checksum mismatch")
        try:
            record = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise _corrupt(path, pos, f"invalid JSON payload: {exc}") from exc
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("lsn"), int)
            or not isinstance(record.get("type"), str)
        ):
            raise _corrupt(path, pos, f"malformed record object {record!r}")
        records.append(record)
        pos = end
    if torn_at is not None and not final:
        raise _corrupt(path, torn_at, "torn record in a sealed (non-final) segment")
    good_bytes = torn_at if torn_at is not None else len(data)
    info = SegmentInfo(
        path=path,
        records=len(records),
        good_bytes=good_bytes,
        first_lsn=records[0]["lsn"] if records else None,
        last_lsn=records[-1]["lsn"] if records else None,
        torn_bytes=len(data) - good_bytes,
    )
    return records, info


def segment_paths(wal_dir: Path) -> list[Path]:
    """The log's segment files in LSN order."""
    return sorted(wal_dir.glob(f"*{_SEGMENT_SUFFIX}"))


def scan_log(wal_dir: Path, repair: bool = False) -> LogScan:
    """Scan every segment, verifying LSN continuity across the log.

    With ``repair=True`` a torn tail is physically truncated off the
    final segment (the crash-recovery "truncate and continue" step);
    otherwise it is only reported via ``scan.torn_bytes``.
    """
    scan = LogScan()
    paths = segment_paths(wal_dir)
    expected: int | None = None
    for index, path in enumerate(paths):
        final = index == len(paths) - 1
        records, info = scan_segment(path, final=final)
        for record in records:
            if expected is not None and record["lsn"] != expected:
                raise _corrupt(
                    path, 0, f"LSN {record['lsn']} breaks sequence (expected {expected})"
                )
            expected = record["lsn"] + 1
        scan.records.extend(records)
        scan.segments.append(info)
        if info.torn_bytes:
            scan.torn_bytes = info.torn_bytes
            if repair:
                with path.open("r+b") as handle:
                    handle.truncate(info.good_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                scan.truncated = True
                telemetry.count("store.recovery.truncated_bytes", info.torn_bytes)
    return scan


class WriteAheadLog:
    """The writer side of a segment log directory.

    Opening scans (and repairs) the existing log, then appends to the
    last segment. ``fsync=False`` trades durability for speed — useful
    for tests and for measuring pure journaling overhead.
    """

    def __init__(
        self,
        wal_dir: str | Path,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> None:
        self.wal_dir = Path(wal_dir)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.segment_records = segment_records
        scan = scan_log(self.wal_dir, repair=True)
        paths = segment_paths(self.wal_dir)
        # A fresh post-compaction segment is empty but *named* by the LSN
        # it will hold; honour the name so LSNs never restart from 1.
        self.next_lsn = scan.last_lsn + 1
        if paths:
            self.next_lsn = max(self.next_lsn, int(paths[-1].stem))
        self._file = None
        self._current_path: Path | None = None
        self._current_records = 0
        self._current_bytes = 0
        if paths:
            info = scan.segments[-1]
            self._open_segment(paths[-1], info.records, info.good_bytes)
        else:
            self._open_segment(self._segment_path(self.next_lsn), 0, 0)
        telemetry.gauge("store.segments", float(len(segment_paths(self.wal_dir))))

    # ------------------------------------------------------------------
    # Segment management
    # ------------------------------------------------------------------

    def _segment_path(self, first_lsn: int) -> Path:
        return self.wal_dir / f"{first_lsn:016d}{_SEGMENT_SUFFIX}"

    def _open_segment(self, path: Path, records: int, size: int) -> None:
        self._file = path.open("ab")
        self._current_path = path
        self._current_records = records
        self._current_bytes = size

    def rotate(self) -> Path:
        """Seal the live segment and start a fresh one at the next LSN."""
        self.close_segment()
        path = self._segment_path(self.next_lsn)
        self._open_segment(path, 0, 0)
        telemetry.count("store.rotations")
        telemetry.gauge("store.segments", float(len(segment_paths(self.wal_dir))))
        return path

    def close_segment(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def close(self) -> None:
        """Flush and fsync the live segment; the log is sealed on disk."""
        self.close_segment()

    @property
    def current_path(self) -> Path:
        assert self._current_path is not None
        return self._current_path

    @property
    def last_lsn(self) -> int:
        return self.next_lsn - 1

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def append(self, record_type: str, data: dict) -> int:
        """Durably append one record; returns its LSN.

        The record is written, flushed, and (with ``fsync``) synced
        before this method returns — the commit point of every journaled
        operation.
        """
        if self._file is None:
            raise ReproError("write-ahead log is closed")
        lsn = self.next_lsn
        line = encode_record(lsn, record_type, data)
        self._file.write(line)
        self._file.flush()
        if self.fsync:
            start = time.perf_counter()
            os.fsync(self._file.fileno())
            telemetry.observe("store.fsync.seconds", time.perf_counter() - start)
        self.next_lsn = lsn + 1
        self._current_records += 1
        self._current_bytes += len(line)
        telemetry.count("store.records")
        telemetry.count("store.bytes", len(line))
        if (
            self._current_bytes >= self.segment_bytes
            or self._current_records >= self.segment_records
        ):
            self.rotate()
        return lsn

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def delete_segments_before(self, path: Path) -> int:
        """Delete every sealed segment older than ``path``; returns count."""
        deleted = 0
        for candidate in segment_paths(self.wal_dir):
            if candidate.name < path.name and candidate != self._current_path:
                candidate.unlink()
                deleted += 1
        if deleted:
            telemetry.count("store.segments_deleted", deleted)
            telemetry.gauge(
                "store.segments", float(len(segment_paths(self.wal_dir)))
            )
        return deleted
