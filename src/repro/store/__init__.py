"""``repro.store``: the durable substrate under the streaming service.

A write-ahead log plus frontier snapshots plus compaction, giving
``repro serve --data-dir`` (and any :class:`MarkovStreamDatabase` with a
store attached) crash durability with *incremental* recovery:

:mod:`~repro.store.wal`
    Append-only segment log — length-prefixed, checksummed NDJSON
    records with exact ``p/q`` Fractions, fsync'd on commit, rotated
    into numbered segments. Torn final records are truncated on
    recovery; interior corruption refuses loudly.
:mod:`~repro.store.snapshot`
    Atomic frontier snapshots: (plan fingerprint, DP frontier, timestep)
    triples for every attached evaluator and monitor, plus streams,
    queries, and standing-query hysteresis state.
:mod:`~repro.store.recovery`
    Snapshot + log-suffix replay rebuilding the database, evaluators,
    and alert engine bit-identically to an uninterrupted run —
    verifiable against a from-scratch replay.
:mod:`~repro.store.store`
    The :class:`Store` facade the database and server journal through,
    and the :class:`CompactionPolicy` that folds the log into a fresh
    snapshot.
:mod:`~repro.store.codec`
    Tagged-JSON round-tripping of frontier keys (tuples, frozensets,
    Fractions) — recovered keys are value-equal to the originals.

On-disk layout, the CLI (``repro store inspect | compact | recover``),
and the ``store.*`` metrics are documented in ``docs/USAGE.md`` and
``docs/OBSERVABILITY.md``.
"""

from repro.store.codec import (
    decode_frontier,
    decode_term,
    encode_frontier,
    encode_term,
)
from repro.store.recovery import (
    RecoveredState,
    capture_recovered,
    capture_state,
    inspect_data_dir,
    recover_database,
    replay,
    verify_recovery,
)
from repro.store.snapshot import (
    EvaluatorState,
    SNAPSHOT_FORMAT,
    StandingState,
    StoreState,
    load_snapshot,
    write_snapshot,
)
from repro.store.store import CompactionPolicy, Store
from repro.store.wal import LogScan, SegmentInfo, WriteAheadLog, scan_log

__all__ = [
    "CompactionPolicy",
    "EvaluatorState",
    "LogScan",
    "RecoveredState",
    "SNAPSHOT_FORMAT",
    "SegmentInfo",
    "StandingState",
    "Store",
    "StoreState",
    "WriteAheadLog",
    "capture_recovered",
    "capture_state",
    "decode_frontier",
    "decode_term",
    "encode_frontier",
    "encode_term",
    "inspect_data_dir",
    "load_snapshot",
    "recover_database",
    "replay",
    "scan_log",
    "verify_recovery",
    "write_snapshot",
]
