"""Crash recovery: newest snapshot + log-suffix replay = the live state.

:func:`replay` rebuilds a :class:`~repro.lahar.database.MarkovStreamDatabase`
plus its attached evaluators and the standing-query
:class:`~repro.serve.alerts.AlertEngine` from a store directory:

1. load the newest snapshot (if any) — streams, query catalog, restored
   evaluator frontiers, standing queries with exact hysteresis state;
2. scan the log (repairing a torn final record when asked — a partial
   write from the append in flight at crash time is truncated and
   recovery continues; *interior* damage always refuses with a
   :class:`~repro.errors.ReproError`);
3. apply every record with ``lsn > snapshot.lsn``, mirroring the
   server's own handling exactly — appends advance evaluators and
   monitors one DP layer and feed each standing query's threshold watch,
   so alert hysteresis (armed flag, fired counts) is reproduced
   bit-identically, never re-fired and never swallowed.

Because the journal is written *before* each in-memory commit and
fsync'd, the replayed state is a superset-of-acknowledged guarantee:
every operation a client saw succeed is recovered; an unacknowledged
tail-of-one record may be (harmlessly) recovered or truncated.

:func:`verify_recovery` cross-checks the incremental path against a
from-scratch replay that ignores snapshots — the store's self-test, used
by ``repro store recover --verify`` and the oracle-style recovery tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.errors import ReproError
from repro.io.json_format import query_from_dict, sequence_from_dict, sequence_to_dict
from repro.lahar.database import MarkovStreamDatabase
from repro.lahar.monitor import StreamingMonitor, query_pattern, unanchored_match_dfa
from repro.runtime.incremental import StreamingEvaluator
from repro.serve.alerts import AlertEngine, StandingQuery, ThresholdWatch
from repro.store.codec import decode_term, decode_transition, decode_value, encode_value
from repro.store.snapshot import (
    EvaluatorState,
    StandingState,
    StoreState,
    latest_snapshot_lsn,
    load_snapshot,
    snapshot_paths,
)
from repro.store.wal import scan_log, segment_paths


@dataclass
class RecoveredState:
    """Everything :func:`replay` rebuilds from a store directory."""

    database: MarkovStreamDatabase
    alerts: AlertEngine
    queries: dict[str, object] = field(default_factory=dict)
    last_lsn: int = 0
    snapshot_lsn: int = 0
    records_replayed: int = 0
    truncated_bytes: int = 0


def replay(
    data_dir: str | Path,
    plan_cache=None,
    use_snapshot: bool = True,
    repair: bool = True,
) -> RecoveredState:
    """Rebuild the full service state from ``data_dir``.

    ``use_snapshot=False`` forces a from-scratch replay of the whole log
    (the referee side of :func:`verify_recovery`); ``repair=False``
    leaves a torn tail on disk untouched (read-only inspection) while
    still skipping it.
    """
    start = time.perf_counter()
    data_dir = Path(data_dir)
    database = MarkovStreamDatabase(plan_cache=plan_cache)
    alerts = AlertEngine()
    recovered = RecoveredState(database=database, alerts=alerts)

    base_lsn = 0
    if use_snapshot:
        loaded = load_snapshot(data_dir / "snapshots")
        if loaded is not None:
            base_lsn, state = loaded
            _apply_snapshot(recovered, state)
            recovered.snapshot_lsn = base_lsn

    scan = scan_log(data_dir / "wal", repair=repair)
    recovered.truncated_bytes = scan.torn_bytes
    for record in scan.records:
        if record["lsn"] <= base_lsn:
            continue
        _apply_record(recovered, record)
        recovered.records_replayed += 1
    recovered.last_lsn = max(scan.last_lsn, base_lsn)
    telemetry.observe("store.replay.seconds", time.perf_counter() - start)
    telemetry.count("store.replay.records", recovered.records_replayed)
    return recovered


def recover_database(data_dir: str | Path, plan_cache=None) -> MarkovStreamDatabase:
    """The database-only view of :func:`replay` (CLI and library use)."""
    return replay(data_dir, plan_cache=plan_cache).database


# ---------------------------------------------------------------------------
# Snapshot application
# ---------------------------------------------------------------------------


def _apply_snapshot(recovered: RecoveredState, state) -> None:
    database = recovered.database
    for name, sequence in state.streams.items():
        database.register_stream(name, sequence)
    for name, query in state.queries.items():
        recovered.queries[name] = query
        database.register_query(name, query)
    for entry in state.evaluators:
        sequence = database.stream(entry.stream)
        if sequence.length != entry.length:
            raise ReproError(
                f"snapshot evaluator for stream {entry.stream!r} is at "
                f"timestep {entry.length} but the stream is at {sequence.length}"
            )
        database.install_evaluator(
            entry.stream,
            StreamingEvaluator.restore(
                entry.query, sequence, entry.frontier, cache=database.plan_cache
            ),
        )
    for entry in state.standing:
        watch = ThresholdWatch.restore(
            entry.threshold, entry.rearm, entry.value, entry.armed
        )
        evaluator = monitor = None
        if entry.kind == "monitor":
            # Subset construction is deterministic, so the rebuilt DFA's
            # states are value-equal to the ones in the persisted layer.
            dfa = unanchored_match_dfa(query_pattern(entry.query))
            monitor = StreamingMonitor.restore(
                dfa, entry.monitor_layer, entry.monitor_length
            )
        else:
            evaluator = recovered.database.streaming_evaluator(
                entry.stream, entry.query
            )
        recovered.alerts.register(
            StandingQuery(
                name=entry.name,
                stream=entry.stream,
                kind=entry.kind,
                query_label=entry.label,
                watch=watch,
                output=tuple(entry.output),
                evaluator=evaluator,
                monitor=monitor,
                alerts_fired=entry.alerts_fired,
                query=entry.query,
            )
        )


# ---------------------------------------------------------------------------
# Log replay (mirrors the server's handling, record type by record type)
# ---------------------------------------------------------------------------


def _apply_record(recovered: RecoveredState, record: dict) -> None:
    data = record.get("data", {})
    record_type = record["type"]
    try:
        handler = _HANDLERS[record_type]
    except KeyError:
        raise ReproError(
            f"unknown WAL record type {record_type!r} at LSN {record['lsn']}"
        ) from None
    try:
        handler(recovered, data)
    except ReproError as exc:
        raise ReproError(
            f"replay failed at LSN {record['lsn']} ({record_type}): {exc}"
        ) from exc


def _replay_stream_created(recovered: RecoveredState, data: dict) -> None:
    name = data["name"]
    if name in recovered.database.streams():
        recovered.alerts.drop_stream(name)
    recovered.database.register_stream(name, sequence_from_dict(data["sequence"]))


def _replay_append(recovered: RecoveredState, data: dict) -> None:
    stream = data["stream"]
    transition = decode_transition(data["transition"])
    grown = recovered.database.append(stream, transition)
    recovered.alerts.observe_append(stream, transition, grown.length)


def _replay_stream_dropped(recovered: RecoveredState, data: dict) -> None:
    recovered.database.drop_stream(data["name"])
    recovered.alerts.drop_stream(data["name"])


def _replay_query_registered(recovered: RecoveredState, data: dict) -> None:
    query = query_from_dict(data["query"])
    recovered.queries[data["name"]] = query
    recovered.database.register_query(data["name"], query)


def _replay_standing_registered(recovered: RecoveredState, data: dict) -> None:
    query = query_from_dict(data["query"])
    output = decode_term(data["output"])
    threshold = decode_value(data["threshold"])
    rearm = decode_value(data["rearm"]) if data.get("rearm") is not None else None
    kind = data["kind"]
    evaluator = monitor = None
    if kind == "answer":
        evaluator = recovered.database.streaming_evaluator(data["stream"], query)
        initial = evaluator.confidences().get(tuple(output), 0)
    else:
        monitor = StreamingMonitor.occurrence(
            recovered.database.stream(data["stream"]), query_pattern(query)
        )
        initial = monitor.value
    recovered.alerts.register(
        StandingQuery(
            name=data["name"],
            stream=data["stream"],
            kind=kind,
            query_label=data["label"],
            watch=ThresholdWatch(threshold, rearm, initial=initial),
            output=tuple(output),
            evaluator=evaluator,
            monitor=monitor,
            query=query,
        )
    )


def _replay_standing_dropped(recovered: RecoveredState, data: dict) -> None:
    recovered.alerts.drop(data["name"])


_HANDLERS = {
    "stream_created": _replay_stream_created,
    "append": _replay_append,
    "stream_dropped": _replay_stream_dropped,
    "query_registered": _replay_query_registered,
    "standing_registered": _replay_standing_registered,
    "standing_dropped": _replay_standing_dropped,
}


# ---------------------------------------------------------------------------
# State capture (the inverse of _apply_snapshot)
# ---------------------------------------------------------------------------


def capture_state(streams, queries, evaluators, alerts: AlertEngine) -> StoreState:
    """A snapshot-ready :class:`StoreState` image of live service state.

    Shared by the server's compactor and ``repro store compact``; the
    caller is responsible for consistency (capture under the same locks
    that order appends, or from a quiescent :class:`RecoveredState`).
    """
    state = StoreState(streams=dict(streams), queries=dict(queries))
    for stream, evaluator in evaluators:
        state.evaluators.append(
            EvaluatorState(
                stream, evaluator.plan.query, evaluator.length, evaluator.frontier
            )
        )
    for name in alerts.names():
        standing = alerts.get(name)
        state.standing.append(
            StandingState(
                name=standing.name,
                stream=standing.stream,
                kind=standing.kind,
                label=standing.query_label,
                query=standing.query,
                output=standing.output,
                threshold=standing.watch.threshold,
                rearm=standing.watch.rearm,
                value=standing.watch.value,
                armed=standing.watch.armed,
                alerts_fired=standing.alerts_fired,
                monitor_length=standing.monitor.length if standing.monitor else None,
                monitor_layer=standing.monitor.layer if standing.monitor else None,
            )
        )
    return state


def capture_recovered(recovered: RecoveredState) -> StoreState:
    """Capture a :class:`RecoveredState` (offline ``repro store compact``)."""
    database = recovered.database
    return capture_state(
        {name: database.stream(name) for name in database.streams()},
        recovered.queries,
        database.attached_evaluators(),
        recovered.alerts,
    )


# ---------------------------------------------------------------------------
# Verification and inspection
# ---------------------------------------------------------------------------


def verify_recovery(data_dir: str | Path, plan_cache=None) -> dict:
    """Cross-check incremental recovery against from-scratch evaluation.

    Two referees, both exact:

    * **DP referee** (always): every recovered evaluator frontier and
      standing-query value is compared against a *fresh full-DP run*
      over the recovered sequence — bit-identical Fractions or it's a
      mismatch. This catches any snapshot/restore corruption and works
      even after compaction has deleted the old log.
    * **Replay referee** (when the log is still complete from LSN 1):
      the whole log is replayed with snapshots ignored, and streams,
      standing values, *and hysteresis state* (watch value, armed flag,
      fired count) must match the snapshot-based recovery exactly.

    Read-only (no tail repair). Returns a report dict with ``ok`` and
    any ``mismatches``.
    """
    fast = replay(data_dir, plan_cache=plan_cache, repair=False)
    mismatches: list[str] = []

    # --- DP referee: recovered frontiers vs from-scratch evaluation ---
    for stream, evaluator in fast.database.attached_evaluators():
        fresh = StreamingEvaluator(
            evaluator.plan.query, fast.database.stream(stream)
        )
        if fresh.confidences() != evaluator.confidences():
            mismatches.append(
                f"evaluator on {stream!r} "
                f"({evaluator.plan.fingerprint[:12]}) diverges from "
                "from-scratch evaluation"
            )
    for name in fast.alerts.names():
        standing = fast.alerts.get(name)
        sequence = fast.database.stream(standing.stream)
        if standing.kind == "monitor":
            referee = StreamingMonitor.occurrence(
                sequence, query_pattern(standing.query)
            ).value
        else:
            referee = (
                StreamingEvaluator(standing.query, sequence)
                .confidences()
                .get(standing.output, 0)
            )
        if standing.current_value() != referee:
            mismatches.append(
                f"standing {name!r} value {standing.current_value()!r} "
                f"diverges from from-scratch value {referee!r}"
            )

    # --- Replay referee: only possible while the full log survives ---
    scan = scan_log(Path(data_dir) / "wal", repair=False)
    log_complete = bool(scan.records) and scan.records[0]["lsn"] == 1
    if log_complete:
        scratch = replay(data_dir, use_snapshot=False, repair=False)
        if fast.database.streams() != scratch.database.streams():
            mismatches.append(
                f"stream catalogs differ: {fast.database.streams()} vs "
                f"{scratch.database.streams()}"
            )
        for name in set(fast.database.streams()) & set(scratch.database.streams()):
            left = sequence_to_dict(fast.database.stream(name))
            right = sequence_to_dict(scratch.database.stream(name))
            if left != right:
                mismatches.append(f"stream {name!r} content differs from replay")
        if fast.alerts.names() != scratch.alerts.names():
            mismatches.append(
                f"standing catalogs differ: {fast.alerts.names()} vs "
                f"{scratch.alerts.names()}"
            )
        for name in set(fast.alerts.names()) & set(scratch.alerts.names()):
            left, right = fast.alerts.get(name), scratch.alerts.get(name)
            if left.current_value() != right.current_value():
                mismatches.append(
                    f"standing {name!r} value differs from replay: "
                    f"{left.current_value()!r} vs {right.current_value()!r}"
                )
            if (left.watch.value, left.watch.armed, left.alerts_fired) != (
                right.watch.value,
                right.watch.armed,
                right.alerts_fired,
            ):
                mismatches.append(
                    f"standing {name!r} hysteresis state differs from replay"
                )

    return {
        "ok": not mismatches,
        "mismatches": mismatches,
        "last_lsn": fast.last_lsn,
        "snapshot_lsn": fast.snapshot_lsn,
        "records_replayed": fast.records_replayed,
        "log_complete": log_complete,
        "streams": len(fast.database.streams()),
        "standing": len(fast.alerts),
        "evaluators": len(fast.database.attached_evaluators()),
    }


def inspect_data_dir(data_dir: str | Path) -> dict:
    """A read-only structural summary of a store directory (CLI inspect)."""
    data_dir = Path(data_dir)
    scan = scan_log(data_dir / "wal", repair=False)
    counts: dict[str, int] = {}
    for record in scan.records:
        counts[record["type"]] = counts.get(record["type"], 0) + 1
    snapshot_lsn = latest_snapshot_lsn(data_dir / "snapshots")
    return {
        "data_dir": str(data_dir),
        # Right after a compaction the log is empty and the snapshot is
        # the head — the effective position is whichever is newer.
        "last_lsn": max(scan.last_lsn, snapshot_lsn),
        "snapshot_lsn": snapshot_lsn,
        "replay_records": sum(
            1 for record in scan.records if record["lsn"] > snapshot_lsn
        ),
        "snapshots": len(snapshot_paths(data_dir / "snapshots")),
        "segments": [
            {
                "file": info.path.name,
                "records": info.records,
                "bytes": info.good_bytes,
                "first_lsn": info.first_lsn,
                "last_lsn": info.last_lsn,
                "torn_bytes": info.torn_bytes,
            }
            for info in scan.segments
        ],
        "records": counts,
        "torn_bytes": scan.torn_bytes,
        "wal_files": len(segment_paths(data_dir / "wal")),
    }


def standing_values(alerts: AlertEngine) -> dict:
    """``{name: encoded current value}`` — the smoke tests' fingerprint."""
    return {
        name: encode_value(alerts.get(name).current_value())
        for name in alerts.names()
    }
