"""A blocking NDJSON client for the streaming query service.

:class:`ServeClient` wraps one socket connection with a synchronous
request/response API plus an event buffer: any ``{"event": ...}`` frame
that arrives while waiting for a response is buffered and later drained
through :meth:`next_event` / :meth:`events`. This is the client used by
the test suite, the benchmark, and the CI smoke script — none of which
run inside an event loop.

The client is single-threaded by design (one outstanding request at a
time); concurrent use needs one client per thread.
"""

from __future__ import annotations

import socket
from collections import deque

from repro.errors import ReproError
from repro.serve.protocol import ProtocolError, decode_frame, encode_frame


class ServeError(ReproError):
    """The server answered a request with ``ok: false``."""


class ServeClient:
    """One blocking connection speaking ``repro-serve/1``."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rb")
        self._events: deque[dict] = deque()
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def connect_unix(cls, path: str, timeout: float = 30.0) -> "ServeClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return cls(sock)

    @classmethod
    def connect_tcp(cls, host: str, port: int, timeout: float = 30.0) -> "ServeClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(timeout)
        return cls(sock)

    @classmethod
    def connect(cls, address: dict, timeout: float = 30.0) -> "ServeClient":
        """Connect from a server ``address`` dict (as returned by start)."""
        if address.get("family") == "unix":
            return cls.connect_unix(address["path"], timeout=timeout)
        return cls.connect_tcp(address["host"], address["port"], timeout=timeout)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def call(self, cmd: str, **params) -> dict:
        """Send one request and block for its response.

        Event frames arriving in between are buffered for
        :meth:`next_event`. Raises :class:`ServeError` on an error
        response.
        """
        self._next_id += 1
        request_id = self._next_id
        frame = {"id": request_id, "cmd": cmd}
        if params:
            frame["params"] = params
        self._sock.sendall(encode_frame(frame))
        while True:
            received = self._read_frame()
            if "event" in received:
                self._events.append(received)
                continue
            if received.get("id") != request_id:
                raise ProtocolError(
                    f"response id {received.get('id')!r} != request id {request_id!r}"
                )
            if not received.get("ok"):
                raise ServeError(received.get("error", "unknown server error"))
            return received.get("result", {})

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def next_event(self, timeout: float | None = None) -> dict | None:
        """The next buffered or incoming event frame, or None on timeout."""
        if self._events:
            return self._events.popleft()
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            received = self._read_frame()
        except (socket.timeout, TimeoutError):
            return None
        finally:
            self._sock.settimeout(previous)
        if "event" in received:
            return received
        raise ProtocolError(f"expected an event frame, got {received!r}")

    def events(self) -> list[dict]:
        """Drain the already-buffered events (does not read the socket)."""
        drained = list(self._events)
        self._events.clear()
        return drained

    def _read_frame(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_frame(line)
