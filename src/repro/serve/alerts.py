"""Standing queries and threshold-crossing alerts.

A *standing query* attaches a query to a stream once and is advanced on
every append instead of being re-planned and re-run:

* kind ``"answer"`` — watches the confidence of one output of a
  transducer/s-projector query, maintained by the stream's attached
  :class:`~repro.runtime.incremental.StreamingEvaluator` (the database
  advances it one DP layer per append);
* kind ``"monitor"`` — watches the Lahar "event fires at time i"
  occurrence probability of a regular pattern, maintained by a
  :class:`~repro.lahar.monitor.StreamingMonitor` (one product-DP layer
  per append).

Either way the watched value feeds a :class:`ThresholdWatch`, which
fires **exactly once per upward crossing** with hysteresis: after
firing, the watch is disarmed until the value falls below the re-arm
level (default: the threshold itself), so a value that jitters around
the threshold cannot ring the alert on every append.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.markov.sequence import Number


class ThresholdWatch:
    """Fire-once-per-upward-crossing threshold detection with hysteresis.

    Parameters
    ----------
    threshold:
        The watched value firing level (``value >= threshold`` fires
        while armed).
    rearm:
        The re-arm level: after firing, the watch stays disarmed until
        ``value < rearm``. Defaults to ``threshold``; a lower value adds
        a hysteresis band. Must not exceed ``threshold``.
    initial:
        The value at registration time. A watch born at or above the
        threshold starts disarmed — registration alone never fires; only
        crossings *observed after* registration do.
    """

    __slots__ = ("threshold", "rearm", "armed", "value")

    def __init__(
        self,
        threshold: Number,
        rearm: Number | None = None,
        initial: Number | None = None,
    ) -> None:
        if rearm is not None and rearm > threshold:
            raise ReproError("re-arm level cannot exceed the threshold")
        self.threshold = threshold
        self.rearm = rearm if rearm is not None else threshold
        self.value: Number | None = None
        self.armed = True
        if initial is not None:
            self.value = initial
            if initial >= threshold:
                self.armed = False

    def observe(self, value: Number) -> bool:
        """Feed one value; returns True when this observation fires."""
        self.value = value
        if self.armed:
            if value >= self.threshold:
                self.armed = False
                return True
        elif value < self.rearm:
            self.armed = True
        return False

    @classmethod
    def restore(
        cls,
        threshold: Number,
        rearm: Number | None,
        value: Number | None,
        armed: bool,
    ) -> "ThresholdWatch":
        """Rebuild a watch in an exact persisted state (store recovery).

        Unlike ``initial=``, this sets the armed flag verbatim — a watch
        inside its hysteresis band (fired, value back under the
        threshold but not yet under the re-arm level) is reproduced
        bit-identically, so a restart never re-fires or swallows a
        crossing.
        """
        watch = cls(threshold, rearm)
        watch.value = value
        watch.armed = armed
        return watch


@dataclass
class StandingQuery:
    """One registered standing query: source, watcher, and live state.

    ``evaluator``/``monitor`` is the incremental engine (exactly one is
    set, by ``kind``); ``alerts_fired`` counts upward crossings so far.
    ``query`` retains the query object itself so the store can journal
    and snapshot the standing query for crash recovery. ``approx`` is
    None for exact standing queries; an approximate one (FPRAS-backed
    evaluator) records its ``{"epsilon", "delta", "seed"}`` here so
    every report and alert can be marked as estimated.
    """

    name: str
    stream: str
    kind: str  # "answer" | "monitor"
    query_label: str
    watch: ThresholdWatch
    output: tuple = ()
    evaluator: object | None = None
    monitor: object | None = None
    alerts_fired: int = 0
    query: object | None = None
    approx: dict | None = None

    def current_value(self) -> Number:
        """The watched value for the stream absorbed so far."""
        if self.kind == "monitor":
            return self.monitor.value
        return self.evaluator.confidences().get(self.output, 0)

    def advance_monitor(self, transition) -> None:
        """Absorb one timestep into the monitor (evaluators are advanced
        by the database append itself)."""
        if self.monitor is not None:
            self.monitor.append(transition)

    def describe(self) -> dict:
        described = {
            "name": self.name,
            "stream": self.stream,
            "kind": self.kind,
            "query": self.query_label,
            "threshold": self.watch.threshold,
            "rearm": self.watch.rearm,
            "value": self.watch.value,
            "armed": self.watch.armed,
            "alerts_fired": self.alerts_fired,
            "approximate": self.approx is not None,
        }
        if self.approx is not None:
            described["epsilon"] = self.approx["epsilon"]
            described["delta"] = self.approx["delta"]
        return described


@dataclass(frozen=True)
class Alert:
    """One fired threshold crossing, ready to fan out to subscribers."""

    standing: str
    stream: str
    timestep: int
    value: Number
    threshold: Number


@dataclass
class AlertEngine:
    """The registry of standing queries, indexed by name and by stream."""

    _standing: dict[str, StandingQuery] = field(default_factory=dict)
    _by_stream: dict[str, set[str]] = field(default_factory=dict)

    def register(self, standing: StandingQuery) -> None:
        if not standing.name:
            raise ReproError("standing query name must be non-empty")
        if standing.name in self._standing:
            raise ReproError(f"standing query {standing.name!r} already exists")
        self._standing[standing.name] = standing
        self._by_stream.setdefault(standing.stream, set()).add(standing.name)

    def drop(self, name: str) -> StandingQuery:
        standing = self._standing.pop(name, None)
        if standing is None:
            raise ReproError(f"unknown standing query {name!r}")
        names = self._by_stream.get(standing.stream)
        if names is not None:
            names.discard(name)
            if not names:
                del self._by_stream[standing.stream]
        return standing

    def drop_stream(self, stream: str) -> list[StandingQuery]:
        """Tear down every standing query watching ``stream``.

        The service-level counterpart of the database's
        ``_drop_evaluators``: dropping a stream must not leave alert
        state (or subscriptions) dangling on it.
        """
        dropped = [
            self._standing.pop(name)
            for name in sorted(self._by_stream.pop(stream, ()))
        ]
        return dropped

    def get(self, name: str) -> StandingQuery:
        try:
            return self._standing[name]
        except KeyError:
            raise ReproError(f"unknown standing query {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._standing)

    def on_stream(self, stream: str) -> list[StandingQuery]:
        """Standing queries watching ``stream``, in name order."""
        return [
            self._standing[name] for name in sorted(self._by_stream.get(stream, ()))
        ]

    def __len__(self) -> int:
        return len(self._standing)

    def observe_append(self, stream: str, transition, timestep: int) -> list[Alert]:
        """Advance every standing query on ``stream`` one timestep.

        The database has already advanced the attached evaluators;
        monitors absorb the transition here. Returns the alerts fired by
        this append, in standing-query name order.
        """
        alerts: list[Alert] = []
        for standing in self.on_stream(stream):
            standing.advance_monitor(transition)
            value = standing.current_value()
            if standing.watch.observe(value):
                standing.alerts_fired += 1
                alerts.append(
                    Alert(
                        standing=standing.name,
                        stream=stream,
                        timestep=timestep,
                        value=value,
                        threshold=standing.watch.threshold,
                    )
                )
        return alerts
