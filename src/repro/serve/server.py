"""The asyncio streaming query service.

:class:`ReproServer` is a long-lived service over a
:class:`~repro.serve.sharding.ShardedDatabase`: clients connect over a
TCP or unix socket, speak the NDJSON protocol of
:mod:`repro.serve.protocol`, and the server maintains *standing
queries* — each ``append`` advances the stream's attached incremental
engines one DP layer (never a from-scratch re-plan) and pushes an alert
event to subscribers whenever a standing query's watched confidence
crosses its registered threshold (:mod:`repro.serve.alerts`).

Concurrency model
-----------------
One event loop; one :class:`~repro.serve.session.Session` (reader loop +
bounded outbound queue + writer task) per connection. Writes to a stream
serialize on its *shard lock*, so appends to streams on different shards
interleave freely while a stream's evaluator state stays
single-writer. Cross-stream batch reads snapshot the (immutable)
sequences and run in a worker thread — heavy reads never stall appends —
optionally fanning out across a :class:`~repro.parallel.WorkerPool` with
the corpus pre-chunked one chunk per shard.

Shutdown is graceful: the listener closes first, then every session's
outbound queue is drained (subscribers receive everything already
queued, ending with a ``shutdown`` event) before transports close.

Command vocabulary
------------------
``ping``, ``register_stream``, ``drop_stream``, ``append``,
``register_query``, ``register_standing_query``,
``drop_standing_query``, ``subscribe``, ``unsubscribe``, ``query``,
``confidence``, ``top_k_across``, ``stats``, ``shutdown`` — documented
with wire-level examples in ``docs/USAGE.md``.

The ``confidence`` command and ``register_standing_query`` both accept
an ``epsilon`` (with optional ``delta``/``seed``) to use the FPRAS
estimator of :mod:`repro.approx` instead of an exact algorithm — the
tractable route for the #P-hard query classes. Approximate results are
always marked ``"approximate": true`` on the wire, and alerts fired by
an approximate standing query carry the same marker.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time

from repro import telemetry
from repro.core.engine import approximate_confidence, compute_confidence
from repro.errors import ReproError
from repro.io.json_format import query_from_dict, sequence_from_dict
from repro.lahar.monitor import StreamingMonitor, query_pattern
from repro.serve.alerts import AlertEngine, StandingQuery, ThresholdWatch
from repro.serve.protocol import (
    PROTOCOL,
    ProtocolError,
    decode_frame,
    decode_transition,
    decode_value,
    encode_frame,
    encode_value,
    event_frame,
    parse_request,
    response_error,
    response_ok,
)
from repro.serve.session import DEFAULT_QUEUE_SIZE, Session
from repro.serve.sharding import ShardedDatabase

#: Seconds allowed for per-session queue drain during graceful shutdown.
DEFAULT_DRAIN_TIMEOUT = 5.0


#: The regular pattern watched by a ``monitor`` standing query (shared
#: with the store's recovery replay, which must build the same DFA).
_pattern_of = query_pattern


def _approx_stream_seed(base: int, stream: str, length: int) -> int:
    """Deterministic FPRAS seed per (client seed, stream, length).

    Folding the length in gives every append a fresh — but replayable —
    sample path, so a standing query's watched value is a function of
    the stream state, not of how many times it was read.
    """
    digest = hashlib.sha256(f"approx|{base}|{stream}|{length}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class _ApproxAnswerEvaluator:
    """Duck-types ``StreamingEvaluator.confidences()`` with FPRAS estimates.

    Backs an *approximate* standing query: instead of an exact
    incremental DP frontier, every read re-estimates the watched
    answer's confidence to (ε, δ) on the stream's current state. The
    last full :class:`~repro.approx.ApproxConfidence` is kept on
    ``last_estimate`` so describe/report paths can expose the interval;
    ``confidences()`` itself yields plain floats because the value feeds
    a :class:`~repro.serve.alerts.ThresholdWatch` comparison.
    """

    def __init__(self, db, stream, query, output, epsilon, delta, seed, max_samples):
        self._db = db
        self._stream = stream
        self._query = query
        self._output = tuple(output)
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.max_samples = max_samples
        self.last_estimate = None

    def confidences(self) -> dict:
        sequence = self._db.stream(self._stream)
        estimate = approximate_confidence(
            sequence,
            self._query,
            self._output,
            epsilon=self.epsilon,
            delta=self.delta,
            seed=_approx_stream_seed(self.seed, self._stream, sequence.length),
            max_samples=self.max_samples,
            cache=self._db.plan_cache,
        )
        self.last_estimate = estimate
        return {self._output: estimate.estimate}


class ReproServer:
    """The standing-query service over a sharded Markov-stream database.

    Parameters
    ----------
    shards:
        Worker shards; streams are routed by a stable hash of their id.
    queue_size:
        Outbound frame bound per connection (backpressure knob).
    pool_workers:
        When ``> 1``, cross-stream batch reads fan out across a
        :class:`~repro.parallel.WorkerPool` of this many processes.
    drain_timeout:
        Seconds granted to each session's queue drain during shutdown.
    data_dir:
        When set, the service is durable: a :class:`repro.store.Store`
        under this directory journals every accepted mutation (fsync'd
        before the client sees success), previous state is recovered on
        construction — streams, evaluator frontiers, standing queries
        with exact hysteresis state — and the log is compacted into
        frontier snapshots in the background.
    fsync:
        Sync each journal record to disk on commit (durable mode only).
    compact_records:
        Override the compaction policy's records-since-snapshot bound.
    """

    def __init__(
        self,
        shards: int = 1,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        pool_workers: int = 0,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        plan_cache=None,
        data_dir: str | None = None,
        fsync: bool = True,
        compact_records: int | None = None,
    ) -> None:
        self.db = ShardedDatabase(shards, plan_cache=plan_cache)
        self.alerts = AlertEngine()
        self.store = None
        self.recovered: dict | None = None
        if data_dir is not None:
            self._open_store(data_dir, fsync, compact_records)
        self.queue_size = queue_size
        self.pool_workers = pool_workers
        self.drain_timeout = drain_timeout
        self.sessions: set[Session] = set()
        self.appends = 0
        self.alerts_fired = 0
        self.connections = 0
        self._locks = [asyncio.Lock() for _ in range(shards)]
        self._servers: list[asyncio.base_events.Server] = []
        self._closed = asyncio.Event()
        self._shutting_down = False
        self._pool = None
        self.address: dict | None = None
        self._commands = {
            "ping": self._cmd_ping,
            "register_stream": self._cmd_register_stream,
            "drop_stream": self._cmd_drop_stream,
            "append": self._cmd_append,
            "register_query": self._cmd_register_query,
            "register_standing_query": self._cmd_register_standing_query,
            "drop_standing_query": self._cmd_drop_standing_query,
            "subscribe": self._cmd_subscribe,
            "unsubscribe": self._cmd_unsubscribe,
            "query": self._cmd_query,
            "confidence": self._cmd_confidence,
            "top_k_across": self._cmd_top_k_across,
            "stats": self._cmd_stats,
            "shutdown": self._cmd_shutdown,
        }

    # ------------------------------------------------------------------
    # Durability (repro.store)
    # ------------------------------------------------------------------

    def _open_store(
        self, data_dir: str, fsync: bool, compact_records: int | None
    ) -> None:
        """Open (and repair) the journal, then recover previous state.

        Recovery runs before the listener can bind: the first client to
        connect sees every stream, evaluator frontier, and standing
        query exactly as an uninterrupted server would hold them. The
        store attaches to the shards only *after* replay so recovered
        records are not re-journaled.
        """
        # Imported here: repro.store.recovery uses this package's alert
        # types, so a top-level import would be circular.
        from repro.store import CompactionPolicy, Store
        from repro.store import replay as store_replay

        policy = (
            CompactionPolicy(max_records=compact_records)
            if compact_records is not None
            else None
        )
        self.store = Store(data_dir, fsync=fsync, policy=policy)
        recovered = store_replay(data_dir, plan_cache=self.db.plan_cache)
        for name in recovered.database.streams():
            self.db.register_stream(name, recovered.database.stream(name))
        for name, query in recovered.queries.items():
            self.db.register_query(name, query)
        for stream, evaluator in recovered.database.attached_evaluators():
            self.db.install_evaluator(stream, evaluator)
        self.alerts = recovered.alerts
        self.db.attach_store(self.store)
        self.recovered = {
            "streams": len(recovered.database.streams()),
            "standing_queries": len(recovered.alerts),
            "last_lsn": recovered.last_lsn,
            "snapshot_lsn": recovered.snapshot_lsn,
            "records_replayed": recovered.records_replayed,
            "truncated_bytes": recovered.truncated_bytes,
        }

    def _capture_state(self):
        """A snapshot-ready image of everything the service holds.

        Callers must hold *every* shard lock: the image has to be
        consistent with the journal position it will be stamped with.
        """
        from repro.store import capture_state

        return capture_state(
            self.db.corpus(),
            self.db.query_objects(),
            self.db.attached_evaluators(),
            self.alerts,
        )

    async def _maybe_compact(self) -> None:
        """Fold the log into a fresh snapshot when the policy asks.

        Runs after an append has released its shard lock; all shard
        locks are taken (in index order) so the captured state is
        consistent across shards, then the atomic snapshot + segment
        cleanup happens inside :meth:`repro.store.Store.compact`.
        """
        if self.store is None or not self.store.should_compact():
            return
        for lock in self._locks:
            await lock.acquire()
        try:
            if self.store.should_compact():  # re-check under the locks
                self.store.compact(self._capture_state())
        finally:
            for lock in reversed(self._locks):
                lock.release()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int = 0,
    ) -> dict:
        """Bind the listener; returns the bound address description."""
        if socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=socket_path
            )
            self.address = {"family": "unix", "path": socket_path}
        else:
            server = await asyncio.start_server(
                self._handle_connection, host or "127.0.0.1", port
            )
            bound = server.sockets[0].getsockname()
            self.address = {"family": "tcp", "host": bound[0], "port": bound[1]}
        self._servers.append(server)
        return self.address

    async def wait_closed(self) -> None:
        """Block until a graceful shutdown completes."""
        await self._closed.wait()

    async def shutdown(self) -> None:
        """Stop accepting, drain every session, release the pool."""
        if self._shutting_down:
            await self._closed.wait()
            return
        self._shutting_down = True
        for server in self._servers:
            server.close()
            await server.wait_closed()
        farewell = encode_frame(event_frame("shutdown", {"draining": True}))
        for session in list(self.sessions):
            session.push_event(farewell)
        drain_start = time.perf_counter()
        for session in list(self.sessions):
            try:
                await asyncio.wait_for(session.close(), timeout=self.drain_timeout)
            except (asyncio.TimeoutError, ConnectionError, OSError):
                pass
        telemetry.observe("serve.drain.seconds", time.perf_counter() - drain_start)
        self.sessions.clear()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self.store is not None:
            # Tail-loss guard: every append path runs under a shard
            # lock, so holding all of them here means the last in-flight
            # append has committed (and journaled) before the final
            # segment is flushed and fsync'd.
            for lock in self._locks:
                await lock.acquire()
            try:
                self.store.close()
            finally:
                for lock in reversed(self._locks):
                    lock.release()
        self._closed.set()

    def _ensure_pool(self):
        if self.pool_workers > 1 and self._pool is None:
            from repro.parallel import WorkerPool

            self._pool = WorkerPool(self.pool_workers, cache=self.db.plan_cache)
        return self._pool

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = Session(reader, writer, queue_size=self.queue_size)
        session.start()
        self.sessions.add(session)
        self.connections += 1
        telemetry.count("serve.connections.opened")
        try:
            while not self._shutting_down:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(session, line)
                await session.send(encode_frame(response))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self.sessions.discard(session)
            telemetry.count("serve.connections.closed")
            try:
                await session.close()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, session: Session, line: bytes) -> dict:
        request_id = None
        try:
            request = parse_request(decode_frame(line))
            request_id = request.id
            handler = self._commands.get(request.cmd)
            if handler is None:
                raise ProtocolError(f"unknown command {request.cmd!r}")
            telemetry.count("serve.commands")
            result = await handler(session, request.params)
            return response_ok(request_id, result)
        except ReproError as error:  # includes ProtocolError
            telemetry.count("serve.errors")
            return response_error(request_id, str(error))
        except Exception as error:  # pragma: no cover - defensive
            telemetry.count("serve.errors")
            return response_error(request_id, f"internal error: {error!r}")

    def _fan_out(self, standing_names, frame: dict) -> int:
        """Push one event frame to every subscriber; returns deliveries."""
        payload = encode_frame(frame)
        delivered = 0
        for session in self.sessions:
            if any(session.wants(name) for name in standing_names):
                if session.push_event(payload):
                    delivered += 1
        return delivered

    @staticmethod
    def _str_param(params, key: str) -> str:
        value = params.get(key)
        if not isinstance(value, str) or not value:
            raise ProtocolError(f"param {key!r} must be a non-empty string")
        return value

    def _query_param(self, params, key: str = "query"):
        """Resolve a query param: a registered name or an inline document."""
        value = params.get(key)
        if isinstance(value, str):
            return self.db.resolve_query(value), value
        if isinstance(value, dict):
            query = query_from_dict(value)
            return query, value.get("type", "inline")
        raise ProtocolError(
            f"param {key!r} must be a registered query name or a query document"
        )

    # ------------------------------------------------------------------
    # Commands: catalog
    # ------------------------------------------------------------------

    async def _cmd_ping(self, session: Session, params) -> dict:
        return {
            "protocol": PROTOCOL,
            "shards": self.db.shards,
            "streams": len(self.db.streams()),
            "standing_queries": len(self.alerts),
            "durable": self.store is not None,
        }

    async def _cmd_register_stream(self, session: Session, params) -> dict:
        name = self._str_param(params, "name")
        sequence = sequence_from_dict(params.get("sequence"))
        index = self.db.shard_index(name)
        async with self._locks[index]:
            replaced = self.db.has_stream(name)
            dropped = self._teardown_standing(name) if replaced else []
            self.db.register_stream(name, sequence)
        telemetry.gauge("serve.streams", float(len(self.db.streams())))
        result = {
            "stream": name,
            "shard": index,
            "length": sequence.length,
            "replaced": replaced,
        }
        if dropped:
            result["standing_dropped"] = dropped
        return result

    async def _cmd_drop_stream(self, session: Session, params) -> dict:
        name = self._str_param(params, "name")
        index = self.db.shard_index(name)
        async with self._locks[index]:
            self.db.drop_stream(name)
            dropped = self._teardown_standing(name)
        telemetry.gauge("serve.streams", float(len(self.db.streams())))
        return {"stream": name, "standing_dropped": dropped}

    def _teardown_standing(self, stream: str) -> list[str]:
        """Drop every standing query on ``stream``; notify + unsubscribe.

        The service-level counterpart of the database's
        ``_drop_evaluators``: no alert state, subscription, or pending
        threshold watch may outlive its stream.
        """
        dropped = self.alerts.drop_stream(stream)
        names = [standing.name for standing in dropped]
        if names:
            self._fan_out(
                names,
                event_frame("stream_dropped", {"stream": stream, "standing": names}),
            )
            for session in self.sessions:
                session.subscriptions.difference_update(names)
            telemetry.gauge("serve.standing_queries", float(len(self.alerts)))
        return names

    async def _cmd_register_query(self, session: Session, params) -> dict:
        name = self._str_param(params, "name")
        document = params.get("query")
        if not isinstance(document, dict):
            raise ProtocolError("param 'query' must be a query document")
        query = query_from_dict(document)
        if self.store is not None:
            self.store.log_query_registered(name, query)
        self.db.register_query(name, query)
        return {"query": name}

    # ------------------------------------------------------------------
    # Commands: streaming writes
    # ------------------------------------------------------------------

    async def _cmd_append(self, session: Session, params) -> dict:
        stream = self._str_param(params, "stream")
        transition = decode_transition(params.get("transition"))
        index = self.db.shard_index(stream)
        async with self._locks[index]:
            start = time.perf_counter()
            grown = self.db.append(stream, transition)
            fired = self.alerts.observe_append(stream, transition, grown.length)
            elapsed = time.perf_counter() - start
        self.appends += 1
        self.alerts_fired += len(fired)
        telemetry.count("serve.appends")
        telemetry.observe("serve.append.seconds", elapsed)
        await self._maybe_compact()
        for alert in fired:
            telemetry.count("serve.alerts.fired")
            payload = {
                "standing": alert.standing,
                "stream": alert.stream,
                "timestep": alert.timestep,
                "value": encode_value(alert.value),
                "threshold": encode_value(alert.threshold),
            }
            try:
                standing = self.alerts.get(alert.standing)
            except ReproError:  # pragma: no cover - dropped concurrently
                standing = None
            if standing is not None and standing.approx is not None:
                # An estimated value crossed the threshold — subscribers
                # must be able to tell it apart from an exact crossing.
                payload["approximate"] = True
                payload["epsilon"] = standing.approx["epsilon"]
            self._fan_out((alert.standing,), event_frame("alert", payload))
        return {
            "stream": stream,
            "shard": index,
            "length": grown.length,
            "alerts": [alert.standing for alert in fired],
        }

    # ------------------------------------------------------------------
    # Commands: standing queries and subscriptions
    # ------------------------------------------------------------------

    async def _cmd_register_standing_query(self, session: Session, params) -> dict:
        name = self._str_param(params, "name")
        stream = self._str_param(params, "stream")
        query, label = self._query_param(params)
        threshold = decode_value(params.get("threshold"))
        rearm = params.get("rearm")
        rearm = decode_value(rearm) if rearm is not None else None
        output = params.get("output")
        kind = params.get("kind", "monitor" if output is None else "answer")
        if kind not in ("answer", "monitor"):
            raise ProtocolError("standing query kind must be 'answer' or 'monitor'")
        epsilon = params.get("epsilon")
        approx: dict | None = None
        if epsilon is not None:
            if kind != "answer":
                raise ProtocolError(
                    "approximate standing queries need kind 'answer' "
                    "(monitors are already polynomial)"
                )
            if self.store is not None:
                raise ReproError(
                    "approximate standing queries are not supported in "
                    "durable mode: sampled values cannot be journaled for "
                    "bit-identical recovery"
                )
            approx = {
                "epsilon": float(epsilon),
                "delta": float(params.get("delta", 0.05)),
                "seed": int(params.get("seed", 0)),
            }
        index = self.db.shard_index(stream)
        async with self._locks[index]:
            if name in self.alerts.names():
                raise ReproError(f"standing query {name!r} already exists")
            evaluator = monitor = None
            if kind == "answer":
                watched = tuple(output) if output is not None else ()
                if approx is not None:
                    evaluator = _ApproxAnswerEvaluator(
                        self.db,
                        stream,
                        query,
                        watched,
                        approx["epsilon"],
                        approx["delta"],
                        approx["seed"],
                        params.get("max_samples"),
                    )
                else:
                    evaluator = self.db.streaming_evaluator(stream, query)
                initial = evaluator.confidences().get(watched, 0)
            else:
                watched = ()
                monitor = StreamingMonitor.occurrence(
                    self.db.stream(stream), _pattern_of(query)
                )
                initial = monitor.value
            watch = ThresholdWatch(threshold, rearm, initial=initial)
            # Write-ahead: journal after everything that can fail has
            # succeeded, before the registration becomes visible.
            if self.store is not None:
                self.store.log_standing_registered(
                    name, stream, kind, str(label), query, watched, threshold, rearm
                )
            self.alerts.register(
                StandingQuery(
                    name=name,
                    stream=stream,
                    kind=kind,
                    query_label=str(label),
                    watch=watch,
                    output=watched,
                    evaluator=evaluator,
                    monitor=monitor,
                    query=query,
                    approx=approx,
                )
            )
        telemetry.gauge("serve.standing_queries", float(len(self.alerts)))
        if approx is not None:
            telemetry.count("serve.approx.standing")
        result = {
            "standing": name,
            "stream": stream,
            "kind": kind,
            "value": encode_value(initial),
            "armed": watch.armed,
            "approximate": approx is not None,
        }
        if approx is not None:
            result["epsilon"] = approx["epsilon"]
            result["delta"] = approx["delta"]
        return result

    async def _cmd_drop_standing_query(self, session: Session, params) -> dict:
        name = self._str_param(params, "name")
        self.alerts.get(name)  # must exist before the drop is journaled
        if self.store is not None:
            self.store.log_standing_dropped(name)
        self.alerts.drop(name)
        for other in self.sessions:
            other.subscriptions.discard(name)
        telemetry.gauge("serve.standing_queries", float(len(self.alerts)))
        return {"standing": name}

    async def _cmd_subscribe(self, session: Session, params) -> dict:
        if params.get("all"):
            session.subscribe_all = True
        else:
            name = self._str_param(params, "standing")
            self.alerts.get(name)  # must exist
            session.subscriptions.add(name)
        return {
            "subscriptions": sorted(session.subscriptions),
            "all": session.subscribe_all,
        }

    async def _cmd_unsubscribe(self, session: Session, params) -> dict:
        if params.get("all"):
            session.subscribe_all = False
            session.subscriptions.clear()
        else:
            session.subscriptions.discard(self._str_param(params, "standing"))
        return {
            "subscriptions": sorted(session.subscriptions),
            "all": session.subscribe_all,
        }

    # ------------------------------------------------------------------
    # Commands: reads
    # ------------------------------------------------------------------

    async def _cmd_query(self, session: Session, params) -> dict:
        stream = self._str_param(params, "stream")
        query, _label = self._query_param(params)
        order = params.get("order", "unranked")
        limit = params.get("limit")
        index = self.db.shard_index(stream)
        async with self._locks[index]:
            answers = list(
                self.db.query(
                    stream,
                    query,
                    order=order,
                    limit=limit,
                    with_confidence=params.get("with_confidence", True),
                    allow_exponential=params.get("allow_exponential", False),
                )
            )
        return {
            "stream": stream,
            "answers": [
                {
                    "output": answer.rendered(),
                    "confidence": (
                        encode_value(answer.confidence)
                        if answer.confidence is not None
                        else None
                    ),
                }
                for answer in answers
            ],
        }

    async def _cmd_confidence(self, session: Session, params) -> dict:
        """Confidence of one answer — exact, or FPRAS when ``epsilon`` is set.

        The sequence snapshot is taken under the shard lock; the
        computation itself (exact DP, brute force, or sampling) runs off
        the event loop so a hard instance never stalls appends.
        """
        stream = self._str_param(params, "stream")
        query, _label = self._query_param(params)
        output = params.get("output")
        if not isinstance(output, list):
            raise ProtocolError("param 'output' must be a list of answer symbols")
        answer = tuple(output)
        index = self.db.shard_index(stream)
        async with self._locks[index]:
            sequence = self.db.stream(stream)
        epsilon = params.get("epsilon")
        if epsilon is None:
            value = await asyncio.to_thread(
                compute_confidence,
                sequence,
                query,
                answer,
                bool(params.get("allow_exponential", False)),
                self.db.plan_cache,
            )
            return {
                "stream": stream,
                "confidence": encode_value(value),
                "approximate": False,
            }
        telemetry.count("serve.approx.queries")
        estimate = await asyncio.to_thread(
            lambda: approximate_confidence(
                sequence,
                query,
                answer,
                epsilon=float(epsilon),
                delta=float(params.get("delta", 0.05)),
                seed=int(params.get("seed", 0)),
                max_samples=params.get("max_samples"),
                cache=self.db.plan_cache,
            )
        )
        result = estimate.describe()
        result["stream"] = stream
        result["approximate"] = True
        result["confidence"] = estimate.estimate
        return result

    async def _cmd_top_k_across(self, session: Session, params) -> dict:
        query, _label = self._query_param(params)
        k = params.get("k", 5)
        if not isinstance(k, int) or k < 1:
            raise ProtocolError("param 'k' must be a positive integer")
        streams = params.get("streams")
        order = params.get("order")
        allow_exponential = bool(params.get("allow_exponential", False))
        pool = self._ensure_pool()
        # The corpus snapshot is immutable, so the merge can run off the
        # event loop: heavy cross-stream reads never stall appends.
        merged = await asyncio.to_thread(
            self.db.top_k_across,
            query,
            k,
            streams=streams,
            order=order,
            allow_exponential=allow_exponential,
            pool=pool,
        )
        return {
            "answers": [
                {
                    "stream": stream_answer.stream,
                    "output": stream_answer.answer.rendered(),
                    "score": (
                        encode_value(stream_answer.answer.score)
                        if stream_answer.answer.score is not None
                        else None
                    ),
                    "confidence": (
                        encode_value(stream_answer.answer.confidence)
                        if stream_answer.answer.confidence is not None
                        else None
                    ),
                }
                for stream_answer in merged
            ]
        }

    async def _cmd_stats(self, session: Session, params) -> dict:
        return {
            "database": self.db.stats(),
            "store": self.store.stats() if self.store is not None else None,
            "recovered": self.recovered,
            "standing_queries": len(self.alerts),
            "standing": [
                {
                    key: (
                        encode_value(value)
                        if key in ("threshold", "rearm", "value") and value is not None
                        else value
                    )
                    for key, value in self.alerts.get(name).describe().items()
                }
                for name in self.alerts.names()
            ],
            "sessions": len(self.sessions),
            "appends": self.appends,
            "alerts_fired": self.alerts_fired,
            "events_dropped": sum(s.dropped_events for s in self.sessions),
            "connections": self.connections,
        }

    async def _cmd_shutdown(self, session: Session, params) -> dict:
        asyncio.get_running_loop().call_soon(
            lambda: asyncio.ensure_future(self.shutdown())
        )
        return {"shutting_down": True}


class ServerThread:
    """A :class:`ReproServer` running on its own event loop in a thread.

    The synchronous harness used by tests, benchmarks, and anything else
    that wants to drive the service with a blocking
    :class:`~repro.serve.client.ServeClient` from ordinary code::

        with ServerThread(socket_path=path, shards=4) as harness:
            client = ServeClient.connect_unix(path)
            ...

    ``address`` is available once :meth:`start` returns. :meth:`stop`
    performs the server's graceful drain.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int = 0,
        **server_kwargs,
    ) -> None:
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._server_kwargs = server_kwargs
        self.server: ReproServer | None = None
        self.address: dict | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("service thread did not start within 30s")
        if self._startup_error is not None:
            raise ReproError(f"service failed to start: {self._startup_error}")
        return self

    async def _main(self) -> None:
        self.server = ReproServer(**self._server_kwargs)
        self._loop = asyncio.get_running_loop()
        try:
            self.address = await self.server.start(
                socket_path=self._socket_path, host=self._host, port=self._port
            )
        except Exception as error:
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self.server.wait_closed()

    def stop(self) -> None:
        """Trigger a graceful shutdown and join the thread."""
        if (
            self._loop is not None
            and self.server is not None
            and self._thread is not None
            and self._thread.is_alive()
        ):
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
            try:
                future.result(timeout=30)
            except (TimeoutError, RuntimeError):  # pragma: no cover - defensive
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
